//! Dense statevector simulator.

use mbqc_circuit::{Circuit, Gate};
use mbqc_util::Rng;

use crate::C64;

const EPS: f64 = 1e-9;

/// A dense `2^n` statevector over `n` qubits (qubit 0 is the least
/// significant bit of the amplitude index).
///
/// Supports the full benchmark gate set, computational and XY-plane
/// measurements, and — for the MBQC pattern executor — dynamic qubit
/// allocation and removal.
///
/// # Examples
///
/// ```
/// use mbqc_sim::StateVector;
/// use mbqc_circuit::Circuit;
///
/// let mut c = Circuit::new(2);
/// c.h(0).cnot(0, 1); // Bell state
/// let mut sv = StateVector::zero_state(2);
/// sv.apply_circuit(&c);
/// assert!((sv.prob_one(0) - 0.5).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StateVector {
    num_qubits: usize,
    amps: Vec<C64>,
}

/// Maximum register size of the dense simulator: a 26-qubit state is
/// 1 GiB of amplitudes, the largest that reliably fits benchmark hosts.
pub const MAX_QUBITS: usize = 26;

/// One amplitude pair through a 2×2 matrix, written as explicit f64
/// lane arithmetic: the four complex products are unrolled into their
/// eight real multiplies with the exact association of `C64`'s `Mul`
/// and `Add` (`(re·re − im·im) + …`), so the result is bit-identical
/// to the operator-overloaded form while every lane stays visible to
/// the compiler as straight-line FP code.
#[inline(always)]
fn butterfly(m: &[[C64; 2]; 2], a0: C64, a1: C64) -> (C64, C64) {
    let lo = C64::new(
        (m[0][0].re * a0.re - m[0][0].im * a0.im) + (m[0][1].re * a1.re - m[0][1].im * a1.im),
        (m[0][0].re * a0.im + m[0][0].im * a0.re) + (m[0][1].re * a1.im + m[0][1].im * a1.re),
    );
    let hi = C64::new(
        (m[1][0].re * a0.re - m[1][0].im * a0.im) + (m[1][1].re * a1.re - m[1][1].im * a1.im),
        (m[1][0].re * a0.im + m[1][0].im * a0.re) + (m[1][1].re * a1.im + m[1][1].im * a1.re),
    );
    (lo, hi)
}

/// Row-major 2×2 complex matrix product `a · b`.
#[inline]
fn mat_mul2(a: &[[C64; 2]; 2], b: &[[C64; 2]; 2]) -> [[C64; 2]; 2] {
    [
        [
            a[0][0] * b[0][0] + a[0][1] * b[1][0],
            a[0][0] * b[0][1] + a[0][1] * b[1][1],
        ],
        [
            a[1][0] * b[0][0] + a[1][1] * b[1][0],
            a[1][0] * b[0][1] + a[1][1] * b[1][1],
        ],
    ]
}

/// The 2×2 matrix of a single-qubit gate, or `None` for multi-qubit
/// gates. The matrices match the ones [`StateVector::apply_gate`] uses
/// (phase-convention included), so fusing them is a pure reassociation
/// of the same linear maps.
fn single_qubit_matrix(gate: &Gate) -> Option<(usize, [[C64; 2]; 2])> {
    use std::f64::consts::FRAC_PI_4;
    let inv_sqrt2 = C64::new(std::f64::consts::FRAC_1_SQRT_2, 0.0);
    let diag = |d0: C64, d1: C64| [[d0, C64::ZERO], [C64::ZERO, d1]];
    Some(match *gate {
        Gate::H(q) => (q, [[inv_sqrt2, inv_sqrt2], [inv_sqrt2, -inv_sqrt2]]),
        Gate::X(q) => (q, [[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]]),
        Gate::Y(q) => (q, [[C64::ZERO, -C64::I], [C64::I, C64::ZERO]]),
        Gate::Z(q) => (q, diag(C64::ONE, C64::new(-1.0, 0.0))),
        Gate::S(q) => (q, diag(C64::ONE, C64::I)),
        Gate::Sdg(q) => (q, diag(C64::ONE, -C64::I)),
        Gate::T(q) => (q, diag(C64::ONE, C64::from_polar_unit(FRAC_PI_4))),
        Gate::Tdg(q) => (q, diag(C64::ONE, C64::from_polar_unit(-FRAC_PI_4))),
        Gate::Phase(q, a) => (q, diag(C64::ONE, C64::from_polar_unit(a))),
        Gate::Rz(q, a) => (
            q,
            diag(
                C64::from_polar_unit(-a / 2.0),
                C64::from_polar_unit(a / 2.0),
            ),
        ),
        Gate::Rx(q, a) => {
            let c = C64::new((a / 2.0).cos(), 0.0);
            let s = C64::new(0.0, -(a / 2.0).sin());
            (q, [[c, s], [s, c]])
        }
        Gate::Ry(q, a) => {
            let c = C64::new((a / 2.0).cos(), 0.0);
            let s = C64::new((a / 2.0).sin(), 0.0);
            (q, [[c, -s], [s, c]])
        }
        _ => return None,
    })
}

/// Reusable scratch for gate-fused circuit application
/// ([`StateVector::apply_circuit_with`]): one pending 2×2 matrix slot
/// per qubit. Like the partition/mapper workspaces, the buffer survives
/// across circuits so the fused fast path allocates nothing per gate —
/// the allocation-audit test pins that with a counting allocator.
#[derive(Debug, Default)]
pub struct FusionWorkspace {
    pending: Vec<Option<[[C64; 2]; 2]>>,
}

impl FusionWorkspace {
    /// An empty workspace; the per-qubit slots grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl StateVector {
    /// Allocates the zeroed amplitude vector for `n` qubits, enforcing the
    /// [`MAX_QUBITS`] cap. Single checkpoint for every state constructor.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_QUBITS`.
    fn checked_alloc(n: usize) -> Vec<C64> {
        assert!(
            n <= MAX_QUBITS,
            "statevector limited to {MAX_QUBITS} qubits (requested {n})"
        );
        vec![C64::ZERO; 1 << n]
    }

    /// `|0…0⟩` over `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_QUBITS` (the amplitude vector would not fit in
    /// memory).
    #[must_use]
    pub fn zero_state(n: usize) -> Self {
        let mut amps = Self::checked_alloc(n);
        amps[0] = C64::ONE;
        Self {
            num_qubits: n,
            amps,
        }
    }

    /// `|+⟩^{⊗n}`.
    ///
    /// # Panics
    ///
    /// Panics if `n > MAX_QUBITS`.
    #[must_use]
    pub fn plus_state(n: usize) -> Self {
        let mut amps = Self::checked_alloc(n);
        let a = C64::new(1.0 / (amps.len() as f64).sqrt(), 0.0);
        amps.fill(a);
        Self {
            num_qubits: n,
            amps,
        }
    }

    /// Builds a state from raw amplitudes (must have power-of-two length
    /// and unit norm).
    ///
    /// # Panics
    ///
    /// Panics if the length is not a power of two, exceeds the
    /// [`MAX_QUBITS`] cap, or the norm differs from 1 by more than
    /// `1e-6`.
    #[must_use]
    pub fn from_amplitudes(amps: Vec<C64>) -> Self {
        assert!(
            amps.len().is_power_of_two(),
            "length must be a power of two"
        );
        let n = amps.len().trailing_zeros() as usize;
        assert!(
            n <= MAX_QUBITS,
            "statevector limited to {MAX_QUBITS} qubits (requested {n})"
        );
        let norm: f64 = amps.iter().map(|a| a.norm_sqr()).sum();
        assert!(
            (norm - 1.0).abs() < 1e-6,
            "state not normalized (norm² = {norm})"
        );
        Self {
            num_qubits: n,
            amps,
        }
    }

    /// Number of qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Raw amplitudes (index bit `q` = qubit `q`).
    #[must_use]
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    fn check(&self, q: usize) {
        assert!(q < self.num_qubits, "qubit {q} out of range");
    }

    /// Applies a 2×2 matrix (row-major) to qubit `q`.
    ///
    /// The general case walks the amplitude vector in strides of
    /// `2^(q+1)`, splitting each stride block into its low and high
    /// halves and streaming both through [`butterfly`] — a hand-unrolled
    /// f64-lane formulation of the complex 2×2 product. The halves are
    /// consumed through paired `chunks_exact` iterators (two butterflies
    /// per step), so the compiler sees bounds-check-free, unrolled lane
    /// arithmetic it can keep in vector registers. Bit `q = 0` (adjacent
    /// partners) takes its own aligned-pairs walk. Structured matrices
    /// take dedicated fast paths that cut the flop count: diagonal and
    /// anti-diagonal (Z/S/T/phase, X/Y) touch each amplitude once with
    /// the per-index bit test replaced by half-block sub-loops, and
    /// all-real matrices (H, Ry) drop the butterfly's lane-crossing
    /// terms entirely, leaving lane-uniform multiply–adds the compiler
    /// vectorizes at full register width.
    ///
    /// Every path performs the reference kernel's f64 operations on the
    /// reference's association — each resulting amplitude compares
    /// exactly equal (`==`) to [`StateVector::apply_single_reference`]'s
    /// (the real-matrix path may flip the sign of a zero where the
    /// reference multiplies one by `±0.0`, never a value), which the
    /// equivalence tests assert with exact equality.
    pub fn apply_single(&mut self, q: usize, m: [[C64; 2]; 2]) {
        self.check(q);
        let bit = 1usize << q;
        let stride = bit << 1;
        if m[0][1] == C64::ZERO && m[1][0] == C64::ZERO {
            // Diagonal gate: amps[i] *= m[b][b] where b = bit q of i.
            // Walking half-blocks makes the lane choice loop-invariant.
            let (d0, d1) = (m[0][0], m[1][1]);
            for block in self.amps.chunks_exact_mut(stride) {
                let (lo, hi) = block.split_at_mut(bit);
                for a in lo {
                    *a *= d0;
                }
                for a in hi {
                    *a *= d1;
                }
            }
            return;
        }
        if m[0][0] == C64::ZERO && m[1][1] == C64::ZERO {
            // Anti-diagonal gate (X-like): swap halves with scaling.
            let (u, l) = (m[0][1], m[1][0]);
            for block in self.amps.chunks_exact_mut(stride) {
                let (lo, hi) = block.split_at_mut(bit);
                for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                    let (a0, a1) = (*a, *b);
                    *a = u * a1;
                    *b = l * a0;
                }
            }
            return;
        }
        if m[0][0].im == 0.0 && m[0][1].im == 0.0 && m[1][0].im == 0.0 && m[1][1].im == 0.0 {
            // All-real matrix (H, Ry): the butterfly's lane-crossing
            // `re·im` terms vanish, leaving two independent f64 lanes
            // per amplitude — 12 flops per pair instead of 28, and
            // elementwise code the compiler vectorizes at full width.
            // The dropped terms are the reference's `± 0.0·im` products,
            // which can flip a zero's sign but never change a value, so
            // every amplitude still compares equal (`==`).
            let (m00, m01, m10, m11) = (m[0][0].re, m[0][1].re, m[1][0].re, m[1][1].re);
            if bit == 1 {
                for pair in self.amps.chunks_exact_mut(2) {
                    let (a0, a1) = (pair[0], pair[1]);
                    pair[0] = C64::new(m00 * a0.re + m01 * a1.re, m00 * a0.im + m01 * a1.im);
                    pair[1] = C64::new(m10 * a0.re + m11 * a1.re, m10 * a0.im + m11 * a1.im);
                }
                return;
            }
            for block in self.amps.chunks_exact_mut(stride) {
                let (lo, hi) = block.split_at_mut(bit);
                for (a, b) in lo.iter_mut().zip(hi.iter_mut()) {
                    let (a0, a1) = (*a, *b);
                    *a = C64::new(m00 * a0.re + m01 * a1.re, m00 * a0.im + m01 * a1.im);
                    *b = C64::new(m10 * a0.re + m11 * a1.re, m10 * a0.im + m11 * a1.im);
                }
            }
            return;
        }
        if bit == 1 {
            // Qubit 0: partners are adjacent, one aligned pair per step.
            for pair in self.amps.chunks_exact_mut(2) {
                let (lo, hi) = butterfly(&m, pair[0], pair[1]);
                pair[0] = lo;
                pair[1] = hi;
            }
            return;
        }
        for block in self.amps.chunks_exact_mut(stride) {
            let (lo_half, hi_half) = block.split_at_mut(bit);
            // `bit` ≥ 2 and a power of two: the chunk pairing is exact.
            for (lo2, hi2) in lo_half.chunks_exact_mut(2).zip(hi_half.chunks_exact_mut(2)) {
                let (l0, h0) = butterfly(&m, lo2[0], hi2[0]);
                let (l1, h1) = butterfly(&m, lo2[1], hi2[1]);
                lo2[0] = l0;
                hi2[0] = h0;
                lo2[1] = l1;
                hi2[1] = h1;
            }
        }
    }

    /// The pre-optimization [`StateVector::apply_single`]: a full-`2^n`
    /// scan testing bit `q` of every index. Kept as the benchmark
    /// baseline; behavior is identical.
    #[doc(hidden)]
    pub fn apply_single_reference(&mut self, q: usize, m: [[C64; 2]; 2]) {
        self.check(q);
        let bit = 1usize << q;
        for i in 0..self.amps.len() {
            if i & bit == 0 {
                let a0 = self.amps[i];
                let a1 = self.amps[i | bit];
                self.amps[i] = m[0][0] * a0 + m[0][1] * a1;
                self.amps[i | bit] = m[1][0] * a0 + m[1][1] * a1;
            }
        }
    }

    /// Applies a gate.
    ///
    /// # Panics
    ///
    /// Panics if the gate references out-of-range qubits.
    pub fn apply_gate(&mut self, gate: &Gate) {
        use std::f64::consts::FRAC_PI_4;
        let inv_sqrt2 = C64::new(std::f64::consts::FRAC_1_SQRT_2, 0.0);
        match *gate {
            Gate::H(q) => self.apply_single(q, [[inv_sqrt2, inv_sqrt2], [inv_sqrt2, -inv_sqrt2]]),
            Gate::X(q) => self.apply_single(q, [[C64::ZERO, C64::ONE], [C64::ONE, C64::ZERO]]),
            Gate::Y(q) => self.apply_single(q, [[C64::ZERO, -C64::I], [C64::I, C64::ZERO]]),
            Gate::Z(q) => self.phase_if(|i| i >> q & 1 == 1, C64::new(-1.0, 0.0)),
            Gate::S(q) => self.phase_if(|i| i >> q & 1 == 1, C64::I),
            Gate::Sdg(q) => self.phase_if(|i| i >> q & 1 == 1, -C64::I),
            Gate::T(q) => self.phase_if(|i| i >> q & 1 == 1, C64::from_polar_unit(FRAC_PI_4)),
            Gate::Tdg(q) => self.phase_if(|i| i >> q & 1 == 1, C64::from_polar_unit(-FRAC_PI_4)),
            Gate::Phase(q, a) => self.phase_if(|i| i >> q & 1 == 1, C64::from_polar_unit(a)),
            Gate::Rz(q, a) => {
                let neg = C64::from_polar_unit(-a / 2.0);
                let pos = C64::from_polar_unit(a / 2.0);
                self.phase_map(|i| if i >> q & 1 == 0 { neg } else { pos });
            }
            Gate::Rx(q, a) => {
                let c = C64::new((a / 2.0).cos(), 0.0);
                let s = C64::new(0.0, -(a / 2.0).sin());
                self.apply_single(q, [[c, s], [s, c]]);
            }
            Gate::Ry(q, a) => {
                let c = C64::new((a / 2.0).cos(), 0.0);
                let s = C64::new((a / 2.0).sin(), 0.0);
                self.apply_single(q, [[c, -s], [s, c]]);
            }
            Gate::Cz(a, b) => {
                self.check(a);
                self.check(b);
                self.phase_if(|i| i >> a & 1 == 1 && i >> b & 1 == 1, C64::new(-1.0, 0.0));
            }
            Gate::CPhase(a, b, t) => {
                self.check(a);
                self.check(b);
                self.phase_if(
                    |i| i >> a & 1 == 1 && i >> b & 1 == 1,
                    C64::from_polar_unit(t),
                );
            }
            Gate::Rzz(a, b, t) => {
                self.check(a);
                self.check(b);
                let same = C64::from_polar_unit(-t / 2.0);
                let diff = C64::from_polar_unit(t / 2.0);
                self.phase_map(|i| {
                    if (i >> a & 1) == (i >> b & 1) {
                        same
                    } else {
                        diff
                    }
                });
            }
            Gate::Cnot { control, target } => {
                self.check(control);
                self.check(target);
                let (c, t) = (1usize << control, 1usize << target);
                for i in 0..self.amps.len() {
                    if i & c != 0 && i & t == 0 {
                        self.amps.swap(i, i | t);
                    }
                }
            }
            Gate::Swap(a, b) => {
                self.check(a);
                self.check(b);
                let (ab, bb) = (1usize << a, 1usize << b);
                for i in 0..self.amps.len() {
                    if i & ab != 0 && i & bb == 0 {
                        self.amps.swap(i, (i & !ab) | bb);
                    }
                }
            }
            Gate::Toffoli { c0, c1, target } => {
                self.check(c0);
                self.check(c1);
                self.check(target);
                let (b0, b1, t) = (1usize << c0, 1usize << c1, 1usize << target);
                for i in 0..self.amps.len() {
                    if i & b0 != 0 && i & b1 != 0 && i & t == 0 {
                        self.amps.swap(i, i | t);
                    }
                }
            }
        }
    }

    fn phase_if<F: Fn(usize) -> bool>(&mut self, pred: F, phase: C64) {
        for (i, a) in self.amps.iter_mut().enumerate() {
            if pred(i) {
                *a *= phase;
            }
        }
    }

    fn phase_map<F: Fn(usize) -> C64>(&mut self, f: F) {
        for (i, a) in self.amps.iter_mut().enumerate() {
            *a *= f(i);
        }
    }

    /// Applies every gate of `circuit`, fusing runs of single-qubit
    /// gates on the same qubit into one 2×2 matrix before touching the
    /// amplitude vector (an internal [`FusionWorkspace`] is allocated
    /// per call; use [`StateVector::apply_circuit_with`] to reuse one).
    ///
    /// The state equals gate-by-gate application
    /// ([`StateVector::apply_circuit_reference`]) up to fp
    /// reassociation — within `1e-12` per amplitude, which the fusion
    /// equivalence proptest pins.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has more qubits than the state.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        self.apply_circuit_with(circuit, &mut FusionWorkspace::new());
    }

    /// [`StateVector::apply_circuit`] with a caller-owned
    /// [`FusionWorkspace`] — the fused fast path then allocates nothing
    /// per gate (and nothing at all once the workspace is warm).
    ///
    /// Fusion defers each single-qubit gate as a pending 2×2 matrix on
    /// its qubit, composing consecutive ones by matrix product. A
    /// multi-qubit gate flushes the pending matrices of the qubits it
    /// touches (single-qubit gates on *other* qubits commute past it,
    /// so deferring them is exact up to fp reassociation); remaining
    /// matrices flush in qubit order at the end. A fused run costs one
    /// amplitude sweep instead of one per gate, and composed diagonal
    /// runs stay diagonal, so they keep the diagonal fast path.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has more qubits than the state.
    pub fn apply_circuit_with(&mut self, circuit: &Circuit, ws: &mut FusionWorkspace) {
        assert!(
            circuit.num_qubits() <= self.num_qubits,
            "circuit register larger than state"
        );
        ws.pending.clear();
        ws.pending.resize(self.num_qubits, None);
        for g in circuit.gates() {
            if let Some((q, m)) = single_qubit_matrix(g) {
                self.check(q);
                ws.pending[q] = Some(match ws.pending[q] {
                    None => m,
                    Some(p) => mat_mul2(&m, &p),
                });
            } else {
                match *g {
                    Gate::Cz(a, b)
                    | Gate::CPhase(a, b, _)
                    | Gate::Rzz(a, b, _)
                    | Gate::Swap(a, b) => {
                        self.flush_pending(ws, a);
                        self.flush_pending(ws, b);
                    }
                    Gate::Cnot { control, target } => {
                        self.flush_pending(ws, control);
                        self.flush_pending(ws, target);
                    }
                    Gate::Toffoli { c0, c1, target } => {
                        self.flush_pending(ws, c0);
                        self.flush_pending(ws, c1);
                        self.flush_pending(ws, target);
                    }
                    _ => unreachable!("single-qubit gates are fused"),
                }
                self.apply_gate(g);
            }
        }
        for q in 0..ws.pending.len() {
            self.flush_pending(ws, q);
        }
    }

    /// Applies qubit `q`'s pending fused matrix, if any.
    fn flush_pending(&mut self, ws: &mut FusionWorkspace, q: usize) {
        if let Some(m) = ws.pending.get_mut(q).and_then(Option::take) {
            self.apply_single(q, m);
        }
    }

    /// The pre-fusion [`StateVector::apply_circuit`]: every gate of
    /// `circuit` applied in order, one amplitude sweep each. Kept as
    /// the fusion equivalence baseline.
    ///
    /// # Panics
    ///
    /// Panics if the circuit has more qubits than the state.
    #[doc(hidden)]
    pub fn apply_circuit_reference(&mut self, circuit: &Circuit) {
        assert!(
            circuit.num_qubits() <= self.num_qubits,
            "circuit register larger than state"
        );
        for g in circuit.gates() {
            self.apply_gate(g);
        }
    }

    /// Probability of measuring `1` on qubit `q`.
    #[must_use]
    pub fn prob_one(&self, q: usize) -> f64 {
        self.check(q);
        self.amps
            .iter()
            .enumerate()
            .filter(|(i, _)| i >> q & 1 == 1)
            .map(|(_, a)| a.norm_sqr())
            .sum()
    }

    /// Measures qubit `q` in the computational basis, collapsing the
    /// state. Returns the outcome.
    pub fn measure_z(&mut self, q: usize, rng: &mut Rng) -> bool {
        let p1 = self.prob_one(q);
        let outcome = rng.next_f64() < p1;
        self.collapse(q, outcome, if outcome { p1 } else { 1.0 - p1 });
        outcome
    }

    /// Measures qubit `q` in the XY-plane basis
    /// `{|±_θ⟩ = (|0⟩ ± e^{iθ}|1⟩)/√2}` (the MBQC `M^θ` measurement),
    /// collapsing the state. Outcome `false` ↔ `|+_θ⟩`.
    pub fn measure_xy(&mut self, q: usize, theta: f64, rng: &mut Rng) -> bool {
        // H · diag(1, e^{−iθ}) maps |±_θ⟩ → |0/1⟩.
        self.apply_gate(&Gate::Phase(q, -theta));
        self.apply_gate(&Gate::H(q));
        self.measure_z(q, rng)
    }

    fn collapse(&mut self, q: usize, outcome: bool, p: f64) {
        assert!(p > 1e-12, "collapsing onto zero-probability branch");
        let bit = 1usize << q;
        let scale = 1.0 / p.sqrt();
        for (i, a) in self.amps.iter_mut().enumerate() {
            if (i & bit != 0) == outcome {
                *a = a.scale(scale);
            } else {
                *a = C64::ZERO;
            }
        }
    }

    /// Appends a fresh qubit in `|+⟩` as the new most significant qubit;
    /// returns its index.
    ///
    /// # Panics
    ///
    /// Panics if the register is already at [`MAX_QUBITS`].
    pub fn add_qubit_plus(&mut self) -> usize {
        assert!(
            self.num_qubits < MAX_QUBITS,
            "statevector limited to {MAX_QUBITS} qubits (requested {})",
            self.num_qubits + 1
        );
        let old = self.amps.len();
        let mut amps = vec![C64::ZERO; old * 2];
        let k = std::f64::consts::FRAC_1_SQRT_2;
        for (i, &a) in self.amps.iter().enumerate() {
            amps[i] = a.scale(k);
            amps[i + old] = a.scale(k);
        }
        self.amps = amps;
        self.num_qubits += 1;
        self.num_qubits - 1
    }

    /// Removes qubit `q`, which must be deterministically in a
    /// computational basis state (as after [`StateVector::measure_z`]).
    ///
    /// # Panics
    ///
    /// Panics if the qubit is still in superposition.
    pub fn remove_qubit(&mut self, q: usize) {
        self.check(q);
        let p1 = self.prob_one(q);
        let value = if p1 > 0.5 { 1usize } else { 0 };
        assert!(
            (p1 - value as f64).abs() < EPS,
            "qubit {q} is in superposition (p1 = {p1})"
        );
        let bit = 1usize << q;
        let mut amps = Vec::with_capacity(self.amps.len() / 2);
        for i in 0..self.amps.len() {
            if (i & bit != 0) == (value == 1) {
                // Drop bit q from the index.
                let _low = i & (bit - 1);
                amps.push(self.amps[i]);
            }
        }
        // Note: indices were visited in increasing order; removing bit q
        // maps them to increasing compact indices, preserving order.
        self.amps = amps;
        self.num_qubits -= 1;
    }

    /// Reorders qubits: `map[new] = old` (a permutation).
    ///
    /// # Panics
    ///
    /// Panics if `map` is not a permutation of `0..n`.
    pub fn reorder_qubits(&mut self, map: &[usize]) {
        assert_eq!(map.len(), self.num_qubits, "permutation size mismatch");
        let mut seen = vec![false; self.num_qubits];
        for &o in map {
            assert!(o < self.num_qubits && !seen[o], "map is not a permutation");
            seen[o] = true;
        }
        let mut amps = vec![C64::ZERO; self.amps.len()];
        for (old_idx, &a) in self.amps.iter().enumerate() {
            let mut new_idx = 0usize;
            for (new_q, &old_q) in map.iter().enumerate() {
                if old_idx >> old_q & 1 == 1 {
                    new_idx |= 1 << new_q;
                }
            }
            amps[new_idx] = a;
        }
        self.amps = amps;
    }

    /// Inner product `⟨self|other⟩`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    #[must_use]
    pub fn inner(&self, other: &StateVector) -> C64 {
        assert_eq!(self.num_qubits, other.num_qubits, "dimension mismatch");
        let mut acc = C64::ZERO;
        for (a, b) in self.amps.iter().zip(&other.amps) {
            acc += a.conj() * *b;
        }
        acc
    }

    /// Fidelity `|⟨self|other⟩|²` — global-phase invariant.
    #[must_use]
    pub fn fidelity(&self, other: &StateVector) -> f64 {
        self.inner(other).norm_sqr()
    }

    /// Total probability (should be 1 for valid states).
    #[must_use]
    pub fn norm_sqr(&self) -> f64 {
        self.amps.iter().map(|a| a.norm_sqr()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::f64::consts::PI;

    fn bell() -> StateVector {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let mut sv = StateVector::zero_state(2);
        sv.apply_circuit(&c);
        sv
    }

    #[test]
    fn zero_and_plus_states() {
        let z = StateVector::zero_state(2);
        assert_eq!(z.amplitudes()[0], C64::ONE);
        assert!((z.norm_sqr() - 1.0).abs() < 1e-12);
        let p = StateVector::plus_state(2);
        assert!((p.prob_one(0) - 0.5).abs() < 1e-12);
        assert!((p.prob_one(1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bell_state_correlations() {
        let sv = bell();
        assert!((sv.prob_one(0) - 0.5).abs() < 1e-12);
        // Amplitudes |00⟩ and |11⟩ only.
        assert!(sv.amplitudes()[0b01].is_near_zero(1e-12));
        assert!(sv.amplitudes()[0b10].is_near_zero(1e-12));
    }

    #[test]
    fn measure_collapses_bell() {
        let mut rng = Rng::seed_from_u64(11);
        for _ in 0..20 {
            let mut sv = bell();
            let a = sv.measure_z(0, &mut rng);
            let b = sv.measure_z(1, &mut rng);
            assert_eq!(a, b, "Bell outcomes must correlate");
            assert!((sv.norm_sqr() - 1.0).abs() < 1e-9);
        }
    }

    #[test]
    fn hh_is_identity() {
        let mut sv = StateVector::zero_state(1);
        sv.apply_gate(&Gate::H(0));
        sv.apply_gate(&Gate::H(0));
        assert!(sv.fidelity(&StateVector::zero_state(1)) > 1.0 - 1e-12);
    }

    #[test]
    fn pauli_algebra_on_states() {
        // X|0⟩ = |1⟩, Z|+⟩ = |−⟩, S² = Z, T² = S.
        let mut sv = StateVector::zero_state(1);
        sv.apply_gate(&Gate::X(0));
        assert!((sv.prob_one(0) - 1.0).abs() < 1e-12);

        let mut a = StateVector::plus_state(1);
        a.apply_gate(&Gate::T(0));
        a.apply_gate(&Gate::T(0));
        let mut b = StateVector::plus_state(1);
        b.apply_gate(&Gate::S(0));
        assert!(a.fidelity(&b) > 1.0 - 1e-12);
        // And the inner product phase matches exactly (same global phase).
        assert!((a.inner(&b).re - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rz_phase_convention() {
        // Rz(π) = diag(e^{-iπ/2}, e^{iπ/2}) = -iZ.
        let mut sv = StateVector::zero_state(1);
        sv.apply_gate(&Gate::Rz(0, PI));
        let amp = sv.amplitudes()[0];
        assert!((amp - C64::new(0.0, -1.0)).is_near_zero(1e-12));
    }

    #[test]
    fn cnot_vs_h_cz_h() {
        let mut rng = Rng::seed_from_u64(3);
        // Random product state.
        let mut a = StateVector::zero_state(2);
        for q in 0..2 {
            a.apply_gate(&Gate::Ry(q, rng.next_f64() * PI));
            a.apply_gate(&Gate::Rz(q, rng.next_f64() * PI));
        }
        let mut b = a.clone();
        a.apply_gate(&Gate::Cnot {
            control: 0,
            target: 1,
        });
        b.apply_gate(&Gate::H(1));
        b.apply_gate(&Gate::Cz(0, 1));
        b.apply_gate(&Gate::H(1));
        assert!(a.fidelity(&b) > 1.0 - 1e-10);
    }

    #[test]
    fn swap_exchanges_amplitudes() {
        let mut sv = StateVector::zero_state(2);
        sv.apply_gate(&Gate::X(0));
        sv.apply_gate(&Gate::Swap(0, 1));
        assert!((sv.prob_one(1) - 1.0).abs() < 1e-12);
        assert!(sv.prob_one(0) < 1e-12);
    }

    #[test]
    fn toffoli_truth_table() {
        for (c0, c1) in [(false, false), (true, false), (false, true), (true, true)] {
            let mut sv = StateVector::zero_state(3);
            if c0 {
                sv.apply_gate(&Gate::X(0));
            }
            if c1 {
                sv.apply_gate(&Gate::X(1));
            }
            sv.apply_gate(&Gate::Toffoli {
                c0: 0,
                c1: 1,
                target: 2,
            });
            let expect = if c0 && c1 { 1.0 } else { 0.0 };
            assert!((sv.prob_one(2) - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn rzz_equals_cnot_rz_cnot() {
        let mut rng = Rng::seed_from_u64(5);
        let theta = 1.234;
        let mut a = StateVector::zero_state(2);
        for q in 0..2 {
            a.apply_gate(&Gate::Ry(q, rng.next_f64() * PI));
        }
        let mut b = a.clone();
        a.apply_gate(&Gate::Rzz(0, 1, theta));
        b.apply_gate(&Gate::Cnot {
            control: 0,
            target: 1,
        });
        b.apply_gate(&Gate::Rz(1, theta));
        b.apply_gate(&Gate::Cnot {
            control: 0,
            target: 1,
        });
        // Exact equality including global phase.
        let ip = a.inner(&b);
        assert!((ip.re - 1.0).abs() < 1e-10, "inner product {ip}");
    }

    #[test]
    fn cphase_decomposition_equivalence() {
        use mbqc_circuit::decompose;
        let theta = 0.77;
        let mut c = Circuit::new(2);
        c.cphase(0, 1, theta);
        let d = decompose::decompose_to_cnot(&c);
        let mut rng = Rng::seed_from_u64(6);
        let mut prep = Circuit::new(2);
        for q in 0..2 {
            prep.ry(q, rng.next_f64() * PI).rz(q, rng.next_f64() * PI);
        }
        let mut a = StateVector::zero_state(2);
        a.apply_circuit(&prep);
        let mut b = a.clone();
        a.apply_circuit(&c);
        b.apply_circuit(&d);
        assert!(a.fidelity(&b) > 1.0 - 1e-10);
    }

    #[test]
    fn toffoli_decomposition_equivalence() {
        use mbqc_circuit::decompose;
        let mut c = Circuit::new(3);
        c.toffoli(0, 1, 2);
        let d = decompose::decompose_three_qubit(&c);
        let mut rng = Rng::seed_from_u64(7);
        let mut prep = Circuit::new(3);
        for q in 0..3 {
            prep.ry(q, rng.next_f64() * PI).rz(q, rng.next_f64() * PI);
        }
        let mut a = StateVector::zero_state(3);
        a.apply_circuit(&prep);
        let mut b = a.clone();
        a.apply_circuit(&c);
        b.apply_circuit(&d);
        assert!(a.fidelity(&b) > 1.0 - 1e-10, "fidelity {}", a.fidelity(&b));
    }

    #[test]
    fn measure_xy_plus_state_deterministic() {
        // |+⟩ measured at θ=0 gives outcome 0 with certainty.
        let mut rng = Rng::seed_from_u64(8);
        for _ in 0..10 {
            let mut sv = StateVector::plus_state(1);
            assert!(!sv.measure_xy(0, 0.0, &mut rng));
        }
        // |−⟩ measured at θ=0 gives outcome 1.
        for _ in 0..10 {
            let mut sv = StateVector::plus_state(1);
            sv.apply_gate(&Gate::Z(0));
            assert!(sv.measure_xy(0, 0.0, &mut rng));
        }
    }

    #[test]
    fn add_and_remove_qubit_roundtrip() {
        let mut sv = bell();
        let q = sv.add_qubit_plus();
        assert_eq!(q, 2);
        assert_eq!(sv.num_qubits(), 3);
        assert!((sv.prob_one(q) - 0.5).abs() < 1e-12);
        // Collapse the fresh qubit and remove it: Bell state survives.
        let mut rng = Rng::seed_from_u64(9);
        sv.apply_gate(&Gate::H(q)); // |+⟩ → |0⟩ deterministically
        let _ = sv.measure_z(q, &mut rng);
        sv.remove_qubit(q);
        assert!(sv.fidelity(&bell()) > 1.0 - 1e-10);
    }

    #[test]
    fn remove_middle_qubit_preserves_order() {
        // |q2 q1 q0⟩ = |1 0 1⟩; remove q1 → |1 1⟩ on (q0, new q1=old q2).
        let mut sv = StateVector::zero_state(3);
        sv.apply_gate(&Gate::X(0));
        sv.apply_gate(&Gate::X(2));
        sv.remove_qubit(1);
        assert_eq!(sv.num_qubits(), 2);
        assert!((sv.prob_one(0) - 1.0).abs() < 1e-12);
        assert!((sv.prob_one(1) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "superposition")]
    fn remove_superposed_qubit_panics() {
        let mut sv = StateVector::plus_state(1);
        sv.remove_qubit(0);
    }

    #[test]
    fn reorder_qubits_swaps() {
        let mut sv = StateVector::zero_state(2);
        sv.apply_gate(&Gate::X(0));
        sv.reorder_qubits(&[1, 0]);
        assert!((sv.prob_one(1) - 1.0).abs() < 1e-12);
        assert!(sv.prob_one(0) < 1e-12);
    }

    #[test]
    fn strided_apply_single_matches_reference() {
        let mut rng = Rng::seed_from_u64(21);
        for n in 1..=6 {
            // Random state via rotations, then compare a random 2×2 gate
            // applied by both kernels on every qubit.
            let mut a = StateVector::zero_state(n);
            for q in 0..n {
                a.apply_gate(&Gate::Ry(q, rng.next_f64() * PI));
                a.apply_gate(&Gate::Rz(q, rng.next_f64() * PI));
                if q > 0 {
                    a.apply_gate(&Gate::Cnot {
                        control: q - 1,
                        target: q,
                    });
                }
            }
            for q in 0..n {
                let theta = rng.next_f64() * PI;
                let phi = rng.next_f64() * PI;
                let complex = [
                    [
                        C64::new(theta.cos(), 0.0),
                        C64::from_polar_unit(phi).scale(theta.sin()),
                    ],
                    [
                        C64::from_polar_unit(-phi).scale(theta.sin()),
                        C64::new(-theta.cos(), 0.0),
                    ],
                ];
                // All-real rotation: exercises the lane-uniform path.
                let real = [
                    [C64::new(theta.cos(), 0.0), C64::new(theta.sin(), 0.0)],
                    [C64::new(theta.sin(), 0.0), C64::new(-theta.cos(), 0.0)],
                ];
                for m in [complex, real] {
                    let mut fast = a.clone();
                    let mut slow = a.clone();
                    fast.apply_single(q, m);
                    slow.apply_single_reference(q, m);
                    assert_eq!(fast, slow, "n={n} q={q}");
                }
            }
        }
    }

    #[test]
    fn diagonal_fast_path_matches_reference() {
        let mut sv = StateVector::plus_state(4);
        sv.apply_gate(&Gate::Cnot {
            control: 0,
            target: 2,
        });
        let diag = [
            [C64::from_polar_unit(0.3), C64::ZERO],
            [C64::ZERO, C64::from_polar_unit(-0.9)],
        ];
        let anti = [[C64::ZERO, C64::I], [-C64::I, C64::ZERO]]; // Pauli Y
        for m in [diag, anti] {
            for q in 0..4 {
                let mut fast = sv.clone();
                let mut slow = sv.clone();
                fast.apply_single(q, m);
                slow.apply_single_reference(q, m);
                assert_eq!(fast, slow, "q={q}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "statevector limited to 26 qubits (requested 27)")]
    fn constructor_enforces_qubit_cap() {
        let _ = StateVector::zero_state(MAX_QUBITS + 1);
    }

    #[test]
    fn fidelity_is_phase_invariant() {
        let a = StateVector::plus_state(1);
        let mut b = StateVector::plus_state(1);
        // Global phase e^{iπ/3} on every amplitude.
        b.apply_gate(&Gate::Phase(0, std::f64::consts::FRAC_PI_3));
        b.apply_gate(&Gate::X(0));
        b.apply_gate(&Gate::Phase(0, std::f64::consts::FRAC_PI_3));
        b.apply_gate(&Gate::X(0));
        assert!(a.fidelity(&b) > 1.0 - 1e-12);
    }
}
