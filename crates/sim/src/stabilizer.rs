//! Aaronson–Gottesman CHP stabilizer tableau simulator.
//!
//! Graph states are stabilizer states: the paper defines them as the
//! joint +1 eigenstate of `K_i = X_i ∏_{j∈N(i)} Z_j`. The statevector
//! simulator can only verify this up to ~20 qubits; the tableau scales to
//! thousands, so graph-state structure (and Clifford fragments of
//! patterns) can be checked at benchmark size.
//!
//! Pauli X/Z components are bit-packed into `u64` words: row products
//! (`rowsum`, the measurement hot path) are word-wise XORs with a
//! branch-free phase update, 64 qubits per instruction instead of the
//! seed's one-`bool`-at-a-time loops. The original `Vec<bool>`
//! implementation is preserved in [`crate::reference`] and property-tested
//! to agree with this one on random Clifford sequences.

use mbqc_graph::Graph;
use mbqc_util::Rng;

/// Bits per packed word.
const WORD_BITS: usize = 64;

/// Number of `u64` words needed for `n` qubits.
#[inline]
#[must_use]
fn words_for(n: usize) -> usize {
    n.div_ceil(WORD_BITS)
}

/// Word index and bit mask of qubit `q`.
#[inline]
fn bit(q: usize) -> (usize, u64) {
    (q / WORD_BITS, 1u64 << (q % WORD_BITS))
}

/// Word-wise phase masks of the single-qubit Pauli product
/// `(x1,z1)·(x2,z2)`: bit `q` of `pos` is set where the product picks up
/// `+i` (a forward step in the X→Y→Z cycle), bit `q` of `neg` where it
/// picks up `−i`. Equivalent to the Aaronson–Gottesman `g` function,
/// evaluated for 64 qubits at once.
#[inline]
fn phase_masks(x1: u64, z1: u64, x2: u64, z2: u64) -> (u64, u64) {
    let y1 = x1 & z1;
    let pos = (x1 & !z1 & x2 & z2) | (y1 & !x2 & z2) | (!x1 & z1 & x2 & !z2);
    let neg = (x1 & !z1 & !x2 & z2) | (y1 & x2 & !z2) | (!x1 & z1 & x2 & z2);
    (pos, neg)
}

/// A Pauli string over `n` qubits with a phase `i^phase`, bit-packed 64
/// qubits per word.
///
/// # Examples
///
/// ```
/// use mbqc_sim::stabilizer::PauliString;
///
/// let x = PauliString::single_x(3, 0);
/// let z = PauliString::single_z(3, 0);
/// let y = x.mul(&z); // X·Z = −iY
/// assert_eq!(y.phase(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PauliString {
    n: usize,
    x: Vec<u64>,
    z: Vec<u64>,
    /// Phase exponent: the operator is `i^phase · (Pauli product)`.
    phase: u8,
}

impl PauliString {
    /// The identity on `n` qubits.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        Self {
            n,
            x: vec![0; words_for(n)],
            z: vec![0; words_for(n)],
            phase: 0,
        }
    }

    /// `X_q` on `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `q >= n`.
    #[must_use]
    pub fn single_x(n: usize, q: usize) -> Self {
        let mut p = Self::identity(n);
        assert!(q < n, "qubit out of range");
        let (w, m) = bit(q);
        p.x[w] |= m;
        p
    }

    /// `Z_q` on `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `q >= n`.
    #[must_use]
    pub fn single_z(n: usize, q: usize) -> Self {
        let mut p = Self::identity(n);
        assert!(q < n, "qubit out of range");
        let (w, m) = bit(q);
        p.z[w] |= m;
        p
    }

    /// The graph-state stabilizer `K_i = X_i ∏_{j∈N(i)} Z_j`.
    #[must_use]
    pub fn graph_stabilizer(graph: &Graph, i: mbqc_graph::NodeId) -> Self {
        let mut p = Self::single_x(graph.node_count(), i.index());
        for j in graph.neighbors(i) {
            let (w, m) = bit(j.index());
            p.z[w] |= m;
        }
        p
    }

    /// Number of qubits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.n
    }

    /// `true` if the string is the identity Pauli (any phase).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.x.iter().all(|&w| w == 0) && self.z.iter().all(|&w| w == 0)
    }

    /// Phase exponent (operator = `i^phase · Paulis`).
    #[must_use]
    pub fn phase(&self) -> u8 {
        self.phase
    }

    /// X bit of qubit `q`.
    #[must_use]
    pub fn x_bit(&self, q: usize) -> bool {
        let (w, m) = bit(q);
        self.x[w] & m != 0
    }

    /// Z bit of qubit `q`.
    #[must_use]
    pub fn z_bit(&self, q: usize) -> bool {
        let (w, m) = bit(q);
        self.z[w] & m != 0
    }

    /// Product `self · other` with exact phase tracking. Word-wise: 64
    /// qubits of XOR and phase accumulation per loop step.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    #[must_use]
    pub fn mul(&self, other: &PauliString) -> PauliString {
        assert_eq!(self.len(), other.len(), "length mismatch");
        let words = self.x.len();
        let mut phase = i32::from(self.phase) + i32::from(other.phase);
        let mut x = vec![0u64; words];
        let mut z = vec![0u64; words];
        for w in 0..words {
            let (pos, neg) = phase_masks(self.x[w], self.z[w], other.x[w], other.z[w]);
            phase += pos.count_ones() as i32 - neg.count_ones() as i32;
            x[w] = self.x[w] ^ other.x[w];
            z[w] = self.z[w] ^ other.z[w];
        }
        PauliString {
            n: self.n,
            x,
            z,
            phase: phase.rem_euclid(4) as u8,
        }
    }

    /// In-place product `self ← self · other` with exact phase tracking —
    /// the allocation-free form of [`PauliString::mul`] used by hot loops
    /// (Gaussian elimination, bulk row products).
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    pub fn mul_inplace(&mut self, other: &PauliString) {
        assert_eq!(self.len(), other.len(), "length mismatch");
        let mut phase = i32::from(self.phase) + i32::from(other.phase);
        for w in 0..self.x.len() {
            let (pos, neg) = phase_masks(self.x[w], self.z[w], other.x[w], other.z[w]);
            phase += pos.count_ones() as i32 - neg.count_ones() as i32;
            self.x[w] ^= other.x[w];
            self.z[w] ^= other.z[w];
        }
        self.phase = phase.rem_euclid(4) as u8;
    }

    /// `true` if the two strings commute.
    #[must_use]
    pub fn commutes_with(&self, other: &PauliString) -> bool {
        let mut anti = 0u32;
        for w in 0..self.x.len() {
            anti ^= ((self.x[w] & other.z[w]) ^ (self.z[w] & other.x[w])).count_ones() & 1;
        }
        anti == 0
    }
}

/// CHP stabilizer tableau over `n` qubits, bit-packed.
///
/// Rows `0..n` are destabilizers, rows `n..2n` stabilizers, following
/// Aaronson & Gottesman (2004). Supports H, S, CNOT, CZ, X, Z,
/// single-qubit Z measurement, and Pauli-group membership queries.
///
/// Storage is *column-word-major*: `x[w · 2n + row]` holds qubit chunk
/// `w` (64 qubits) of `row`. The dominant access patterns — single-qubit
/// gate updates and the per-qubit pivot/anticommuting-row scans inside
/// measurement — touch one qubit column of every row, which in this
/// layout is one contiguous `u64` run. Row products (`rowsum`) remain
/// word-wise XORs, just strided across the column blocks.
///
/// # Examples
///
/// ```
/// use mbqc_graph::generate;
/// use mbqc_sim::stabilizer::{PauliString, Tableau};
///
/// let g = generate::cycle_graph(5);
/// let t = Tableau::graph_state(&g);
/// for i in g.nodes() {
///     assert!(t.is_stabilized_by(&PauliString::graph_stabilizer(&g, i)));
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Tableau {
    n: usize,
    /// Words per row (qubit chunks).
    w: usize,
    /// Column-word-major packed bit matrices: `x[w * 2n + row]`.
    x: Vec<u64>,
    z: Vec<u64>,
    r: Vec<bool>,
    /// Per-qubit *sound lower bound* on the first stabilizer row with an
    /// X on that qubit: no row in `n..first_x[q]` has one; `2n` means
    /// none at all. Gates that rewrite a qubit's X column (`h`, `cnot`
    /// target) set it exactly inside their existing sweeps; `s`, `x`,
    /// `z`, and `cz` leave X columns untouched; the measurement rowsum
    /// clamps every qubit's bound to the lowest XORed stabilizer row
    /// (X bits can only *appear* there — clears never break the bound).
    /// Measurement pivot scans start at the bound, so re-measurements
    /// and deterministic outcomes — the bulk of a graph-state
    /// measurement sweep — skip the row sweep entirely (the ROADMAP's
    /// "first stabilizer with X" index).
    first_x: Vec<usize>,
    /// Measurement scratch: rowsum target rows of the current
    /// measurement, reused across calls (no per-measurement
    /// allocation).
    targets: Vec<usize>,
    /// Measurement scratch: per-target phase accumulators, parallel to
    /// `targets`.
    accs: Vec<i32>,
    /// Measurement scratch: destabilizer rows carrying an X on the
    /// measured qubit, collected once per measurement by the column
    /// pass in [`Tableau::measure_z`] and consumed by *both* outcome
    /// paths (rowsum targets on the random path, scratch-row factors
    /// on the deterministic path).
    dtargets: Vec<usize>,
    /// Deterministic-outcome scratch row (X/Z words), tableau-resident
    /// so the scratch-row path allocates nothing per measurement.
    scratch_x: Vec<u64>,
    scratch_z: Vec<u64>,
}

impl Tableau {
    /// The `|0…0⟩` tableau: destabilizers `X_i`, stabilizers `Z_i`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        let w = words_for(n);
        let rows = 2 * n;
        let mut t = Self {
            n,
            w,
            x: vec![0; rows * w],
            z: vec![0; rows * w],
            r: vec![false; rows],
            // Stabilizers start as Z_i: no stabilizer carries an X.
            first_x: vec![rows; n],
            targets: Vec::new(),
            accs: Vec::new(),
            dtargets: Vec::new(),
            scratch_x: vec![0; w],
            scratch_z: vec![0; w],
        };
        for i in 0..n {
            let (wq, m) = bit(i);
            t.x[wq * rows + i] |= m; // destabilizer X_i
            t.z[wq * rows + (n + i)] |= m; // stabilizer Z_i
        }
        t
    }

    /// Builds the graph state of `graph`: `H` on every qubit, then CZ per
    /// edge.
    #[must_use]
    pub fn graph_state(graph: &Graph) -> Self {
        let mut t = Self::new(graph.node_count());
        for q in 0..graph.node_count() {
            t.h(q);
        }
        for (a, b, _) in graph.edges() {
            t.cz(a.index(), b.index());
        }
        t
    }

    /// Number of qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    fn check(&self, q: usize) {
        assert!(q < self.n, "qubit {q} out of range");
    }

    /// Hadamard on `q`. One contiguous column sweep; the sweep also
    /// recomputes the qubit's first-stabilizer-X bound exactly (X and Z
    /// swap, so the old bound is void).
    pub fn h(&mut self, q: usize) {
        self.check(q);
        let n = self.n;
        let rows = 2 * n;
        let (wq, m) = bit(q);
        let xs = &mut self.x[wq * rows..(wq + 1) * rows];
        let zs = &mut self.z[wq * rows..(wq + 1) * rows];
        let mut first = rows;
        for i in 0..rows {
            let xv = xs[i];
            let zv = zs[i];
            self.r[i] ^= xv & zv & m != 0;
            xs[i] = (xv & !m) | (zv & m);
            zs[i] = (zv & !m) | (xv & m);
            if i >= n && first == rows && xs[i] & m != 0 {
                first = i;
            }
        }
        self.first_x[q] = first;
    }

    /// Phase gate S on `q`. One contiguous column sweep.
    pub fn s(&mut self, q: usize) {
        self.check(q);
        let rows = 2 * self.n;
        let (wq, m) = bit(q);
        let xs = &self.x[wq * rows..(wq + 1) * rows];
        let zs = &mut self.z[wq * rows..(wq + 1) * rows];
        for i in 0..rows {
            let xv = xs[i];
            self.r[i] ^= xv & zs[i] & m != 0;
            zs[i] ^= xv & m;
        }
    }

    /// Pauli Z on `q`. Single sweep: algebraically S², whose combined
    /// update reduces to `r ^= x_q` with X/Z parts unchanged.
    pub fn z_gate(&mut self, q: usize) {
        self.check(q);
        let rows = 2 * self.n;
        let (wq, m) = bit(q);
        let xs = &self.x[wq * rows..(wq + 1) * rows];
        for (r, &xv) in self.r.iter_mut().zip(xs) {
            *r ^= xv & m != 0;
        }
    }

    /// Pauli X on `q`. Single sweep: algebraically H·Z·H, whose combined
    /// update reduces to `r ^= z_q` with X/Z parts unchanged.
    pub fn x_gate(&mut self, q: usize) {
        self.check(q);
        let rows = 2 * self.n;
        let (wq, m) = bit(q);
        let zs = &self.z[wq * rows..(wq + 1) * rows];
        for (r, &zv) in self.r.iter_mut().zip(zs) {
            *r ^= zv & m != 0;
        }
    }

    /// CNOT with the given control and target.
    ///
    /// # Panics
    ///
    /// Panics if `control == target` or either is out of range.
    pub fn cnot(&mut self, control: usize, target: usize) {
        self.check(control);
        self.check(target);
        assert_ne!(control, target, "control and target must differ");
        let n = self.n;
        let rows = 2 * n;
        let (wc, mc) = bit(control);
        let (wt, mt) = bit(target);
        let (co, to) = (wc * rows, wt * rows);
        // The target's X column is rewritten; recompute its bound
        // exactly in the same sweep. The control's X column is
        // untouched.
        let mut first = rows;
        for i in 0..rows {
            let xc = self.x[co + i] & mc != 0;
            let zc = self.z[co + i] & mc != 0;
            let xt = self.x[to + i] & mt != 0;
            let zt = self.z[to + i] & mt != 0;
            self.r[i] ^= xc && zt && (xt ^ zc ^ true);
            if xc {
                self.x[to + i] ^= mt;
            }
            if zt {
                self.z[co + i] ^= mc;
            }
            if i >= n && first == rows && self.x[to + i] & mt != 0 {
                first = i;
            }
        }
        self.first_x[target] = first;
    }

    /// CZ between `a` and `b`. Single sweep: algebraically
    /// `H_b · CNOT_{a,b} · H_b`, whose combined update reduces to
    /// `z_a ^= x_b`, `z_b ^= x_a`, `r ^= x_a x_b (z_a ⊕ z_b)` — one pass
    /// over two qubit columns instead of three full gate sweeps.
    ///
    /// # Panics
    ///
    /// Panics if `a == b` or either is out of range.
    pub fn cz(&mut self, a: usize, b: usize) {
        self.check(a);
        self.check(b);
        assert_ne!(a, b, "qubits must differ");
        let rows = 2 * self.n;
        let (wa, ma) = bit(a);
        let (wb, mb) = bit(b);
        let (ao, bo) = (wa * rows, wb * rows);
        for i in 0..rows {
            let xa = self.x[ao + i] & ma != 0;
            let xb = self.x[bo + i] & mb != 0;
            let za = self.z[ao + i] & ma != 0;
            let zb = self.z[bo + i] & mb != 0;
            self.r[i] ^= xa && xb && (za ^ zb);
            if xb {
                self.z[ao + i] ^= ma;
            }
            if xa {
                self.z[bo + i] ^= mb;
            }
        }
    }

    /// Measurement rowsum: `row[t] ← row[t] · row[p]` for every row
    /// `t` carrying an X on the measured qubit (the pivot `p` and its
    /// partner destabilizer excluded), with exact per-row phase
    /// bookkeeping.
    ///
    /// The destabilizer/stabilizer target collection feeds the rowsum
    /// directly: the target list and phase accumulators live on the
    /// tableau (no per-measurement allocation), and the accumulator
    /// initialization (`2·r[t] + 2·r[p]`, formerly a separate
    /// collect-pass) is folded into the rowsum's first column-block
    /// loop. The collection scans themselves stay as tight
    /// compare-only loops over the measured qubit's contiguous column
    /// — fully fusing them into the rowsum body was measured *slower*
    /// (it defeats the vectorized column scan; see
    /// `tableau/rowops_measure_grid24`).
    fn rowsum_measure(&mut self, p: usize, wq: usize, m: u64) {
        let n = self.n;
        let rows = 2 * n;
        let col = wq * rows;
        self.targets.clear();
        self.accs.clear();
        // The destabilizer targets were already collected by the
        // measurement's column pass (`dtargets`). Row p−n (the pivot's
        // partner destabilizer) is skipped: it anticommutes with row
        // p, so the rowsum phase would be imaginary — and the row is
        // overwritten with a copy of row p afterwards anyway, making
        // the rowsum dead work. Stabilizer rows before p carry no X on
        // the qubit (that is what made p the pivot), so only `p+1..`
        // needs scanning there.
        for &i in &self.dtargets {
            if i != p - n {
                self.targets.push(i);
            }
        }
        for i in p + 1..rows {
            if self.x[col + i] & m != 0 {
                self.targets.push(i);
            }
        }
        let rp = 2 * i32::from(self.r[p]);
        for w in 0..self.w {
            let o = w * rows;
            let (xp, zp) = (self.x[o + p], self.z[o + p]);
            if w == 0 {
                // The first block's pass doubles as accumulator
                // construction.
                for &t in &self.targets {
                    let (xt, zt) = (self.x[o + t], self.z[o + t]);
                    let (pos, neg) = phase_masks(xp, zp, xt, zt);
                    self.accs.push(
                        2 * i32::from(self.r[t]) + rp + pos.count_ones() as i32
                            - neg.count_ones() as i32,
                    );
                    self.x[o + t] = xt ^ xp;
                    self.z[o + t] = zt ^ zp;
                }
            } else {
                for (k, &t) in self.targets.iter().enumerate() {
                    let (xt, zt) = (self.x[o + t], self.z[o + t]);
                    let (pos, neg) = phase_masks(xp, zp, xt, zt);
                    self.accs[k] += pos.count_ones() as i32 - neg.count_ones() as i32;
                    self.x[o + t] = xt ^ xp;
                    self.z[o + t] = zt ^ zp;
                }
            }
        }
        for (k, &t) in self.targets.iter().enumerate() {
            let phase = self.accs[k].rem_euclid(4);
            debug_assert!(phase == 0 || phase == 2, "non-Hermitian rowsum");
            self.r[t] = phase == 2;
        }
    }

    /// Measures qubit `q` in the computational basis.
    ///
    /// Random outcomes (when some stabilizer anticommutes with `Z_q`)
    /// draw from `rng`; deterministic outcomes ignore it.
    pub fn measure_z(&mut self, q: usize, rng: &mut Rng) -> bool {
        self.check(q);
        let n = self.n;
        let rows = 2 * n;
        let (wq, m) = bit(q);
        let col = wq * rows;
        // One pass over the destabilizer half of the measured qubit's
        // column collects the X-carrying rows *both* outcome paths
        // need: the random path rowsums exactly these destabilizer
        // targets, and the deterministic path multiplies exactly their
        // partner stabilizers into the scratch row. Formerly each path
        // re-scanned this column half on its own (`scratch_row` was
        // the last separate scan left on the measurement path).
        self.dtargets.clear();
        for i in 0..n {
            if self.x[col + i] & m != 0 {
                self.dtargets.push(i);
            }
        }
        // Find a stabilizer with an X on q (anticommutes with Z_q).
        // Rows below `first_x[q]` are known X-free, so the scan starts
        // there — O(1) when the index already says "none" (the common
        // case deep into a measurement sweep, and every re-measurement).
        if let Some(p) = (self.first_x[q]..rows).find(|&i| self.x[col + i] & m != 0) {
            // Random outcome: the rowsum consumes the collected
            // destabilizer targets and sweeps only the stabilizer half
            // itself (no repeated column scan, no per-measurement
            // allocation).
            self.rowsum_measure(p, wq, m);
            // The rowsum XORs the pivot row into every target
            // (`x_t ^= x_p`), so an X bit can *appear* only on qubits in
            // the pivot row's X support, and only in XORed stabilizer
            // rows: clamp exactly those qubits' bounds to the lowest
            // one. Everything else keeps its exact bound — which is
            // what keeps re-measurements and deterministic sweeps O(1).
            // (Targets are ascending, so the first `>= n` is lowest.)
            if let Some(&floor) = self.targets.iter().find(|&&t| t >= n) {
                for w in 0..self.w {
                    let mut bits = self.x[w * rows + p];
                    while bits != 0 {
                        let q2 = w * WORD_BITS + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        if self.first_x[q2] > floor {
                            self.first_x[q2] = floor;
                        }
                    }
                }
            }
            // Destabilizer row p−n becomes the old stabilizer row p, and
            // stabilizer row p becomes ±Z_q with the measured sign.
            let outcome = rng.bernoulli(0.5);
            for w in 0..self.w {
                let o = w * rows;
                self.x[o + p - n] = self.x[o + p];
                self.z[o + p - n] = self.z[o + p];
                self.x[o + p] = 0;
                self.z[o + p] = 0;
            }
            self.z[col + p] = m;
            self.r[p - n] = self.r[p];
            self.r[p] = outcome;
            // The rowsum cleared every other stabilizer X on q and the
            // pivot became ±Z_q: the index is exact again.
            self.first_x[q] = rows;
            outcome
        } else {
            // Deterministic outcome: no stabilizer X on q at all —
            // remember that, then accumulate into the scratch row.
            self.first_x[q] = rows;
            self.scratch_row()
        }
    }

    /// Computes the deterministic measurement outcome using the
    /// tableau-resident scratch row (case where no stabilizer has an X
    /// on the measured qubit). The factor rows are the partner
    /// stabilizers of the destabilizer targets the measurement's
    /// column pass collected (`dtargets`) — no second scan of the
    /// column, no per-measurement allocation.
    fn scratch_row(&mut self) -> bool {
        let n = self.n;
        let rows = 2 * n;
        self.scratch_x.iter_mut().for_each(|w| *w = 0);
        self.scratch_z.iter_mut().for_each(|w| *w = 0);
        let mut sr: i32 = 0;
        for &i in &self.dtargets {
            // rowsum(scratch, i + n)
            let stab = i + n;
            let mut acc = 2 * i32::from(self.r[stab]) + sr;
            for w in 0..self.w {
                let o = w * rows;
                let (pos, neg) = phase_masks(
                    self.x[o + stab],
                    self.z[o + stab],
                    self.scratch_x[w],
                    self.scratch_z[w],
                );
                acc += pos.count_ones() as i32 - neg.count_ones() as i32;
            }
            sr = acc.rem_euclid(4);
            for w in 0..self.w {
                let o = w * rows;
                self.scratch_x[w] ^= self.x[o + stab];
                self.scratch_z[w] ^= self.z[o + stab];
            }
        }
        debug_assert!(sr == 0 || sr == 2);
        sr == 2
    }

    /// The current stabilizer generators as [`PauliString`]s (phase 0 for
    /// `+`, 2 for `−`).
    #[must_use]
    pub fn stabilizer_generators(&self) -> Vec<PauliString> {
        let rows = 2 * self.n;
        (self.n..rows)
            .map(|i| PauliString {
                n: self.n,
                x: (0..self.w).map(|w| self.x[w * rows + i]).collect(),
                z: (0..self.w).map(|w| self.z[w * rows + i]).collect(),
                phase: if self.r[i] { 2 } else { 0 },
            })
            .collect()
    }

    /// Returns `true` if `+p` is in the stabilizer group of the current
    /// state (i.e. `p` stabilizes the state).
    ///
    /// No elimination at all: the tableau's destabilizer half is the
    /// symplectic dual of its stabilizer half (`⟨dᵢ, gⱼ⟩ = δᵢⱼ` and
    /// `⟨dᵢ, dⱼ⟩ = 0`, an invariant every CHP update preserves), so the
    /// coefficient of generator `gᵢ` in any candidate decomposition of
    /// `p` is forced: it is the symplectic product `⟨p, dᵢ⟩`, one
    /// word-parallel AND+popcount sweep per destabilizer row. The named
    /// subset's product is then multiplied into `p` with exact phase
    /// tracking (the `phase_masks` sweep); `p` is in the span iff the Pauli
    /// part cancels to the identity, and in the *group* iff the
    /// accumulated phase is `+1` on top. Total cost is `O(n²/64)` word
    /// operations — the projection replaces the `O(n³/64)` Gaussian
    /// elimination both [`Tableau::is_stabilized_by_reference`] and the
    /// word-blocked [`Tableau::is_stabilized_by_elimination`] run.
    /// Equal to both on every input — pinned by a three-way proptest.
    ///
    /// # Panics
    ///
    /// Panics if `p` has the wrong qubit count.
    #[must_use]
    pub fn is_stabilized_by(&self, p: &PauliString) -> bool {
        assert_eq!(p.len(), self.n, "qubit count mismatch");
        let n = self.n;
        let w = self.w;
        let rows = 2 * n;
        // Projection pass: comb bit i ⇔ p anticommutes with
        // destabilizer i ⇔ generator i is a factor of p (if p is in the
        // span at all).
        let mut comb = vec![0u64; words_for(n)];
        for i in 0..n {
            let mut s = 0u32;
            for wi in 0..w {
                let o = wi * rows + i;
                s += (p.x[wi] & self.z[o]).count_ones() + (p.z[wi] & self.x[o]).count_ones();
            }
            comb[i / 64] |= u64::from(s & 1) << (i % 64);
        }
        // Sign pass: multiply the named generator subset into the
        // target with exact phase tracking (one phase_masks sweep per
        // used generator; generators commute, so any order works).
        let mut phase = i32::from(p.phase);
        let mut accx = p.x.clone();
        let mut accz = p.z.clone();
        for i in 0..n {
            if comb[i / 64] & (1u64 << (i % 64)) != 0 {
                if self.r[n + i] {
                    phase += 2;
                }
                for wi in 0..w {
                    let gx = self.x[wi * rows + n + i];
                    let gz = self.z[wi * rows + n + i];
                    let (pos, neg) = phase_masks(accx[wi], accz[wi], gx, gz);
                    phase += pos.count_ones() as i32 - neg.count_ones() as i32;
                    accx[wi] ^= gx;
                    accz[wi] ^= gz;
                }
            }
        }
        // A leftover Pauli part means p had a component along the
        // destabilizer directions — not in the span.
        if accx.iter().any(|&x| x != 0) || accz.iter().any(|&z| z != 0) {
            return false;
        }
        phase.rem_euclid(4) == 0
    }

    /// Membership by word-blocked (M4RI-style) Gaussian elimination —
    /// the intermediate kernel between the probe-based
    /// [`Tableau::is_stabilized_by_reference`] and the projection-based
    /// [`Tableau::is_stabilized_by`], kept because its elimination
    /// machinery does not lean on the destabilizer invariant and it
    /// anchors the three-way equivalence pin.
    ///
    /// The generators are copied once into a
    /// flat row-major matrix of `[x words | z words | combination
    /// words]` — the combination bitset records which original
    /// generators each row is a product of. Elimination is then pure
    /// GF(2): whole rows cancel by word XOR with **no** per-row phase
    /// bookkeeping, and the 64 columns of each word are processed
    /// against a gathered contiguous column cache, so pivot probes scan
    /// a hot linear array instead of striding across rows. Signs are
    /// settled once at the end: if the target's Pauli part reduces to
    /// the identity, its combination bitset names the generator subset
    /// whose product must equal it, and one phase-exact word-parallel
    /// product over that subset (generators commute, so any order
    /// works) decides the `+`/`−` verdict.
    ///
    /// # Panics
    ///
    /// Panics if `p` has the wrong qubit count.
    #[doc(hidden)]
    #[must_use]
    pub fn is_stabilized_by_elimination(&self, p: &PauliString) -> bool {
        assert_eq!(p.len(), self.n, "qubit count mismatch");
        let n = self.n;
        let w = self.w;
        let rows = 2 * n;
        // Row layout: x words, z words, then the combination bitset
        // (bit i ⇔ original generator i is a factor of this row).
        let stride = 2 * w + words_for(n);
        let mut mat = vec![0u64; n * stride];
        for i in 0..n {
            let row = &mut mat[i * stride..(i + 1) * stride];
            for wi in 0..w {
                row[wi] = self.x[wi * rows + n + i];
                row[w + wi] = self.z[wi * rows + n + i];
            }
            row[2 * w + i / 64] = 1u64 << (i % 64);
        }
        let mut tgt = vec![0u64; stride];
        tgt[..w].copy_from_slice(&p.x);
        tgt[w..2 * w].copy_from_slice(&p.z);
        let mut col_cache = vec![0u64; n];
        let mut pivot = 0usize;
        // Columns in 64-wide blocks: all x words, then all z words (the
        // tail bits past qubit n-1 are zero in every row — no pivots).
        for wc in 0..2 * w {
            if pivot >= n {
                break;
            }
            for j in pivot..n {
                col_cache[j] = mat[j * stride + wc];
            }
            for b in 0..64 {
                let mask = 1u64 << b;
                let Some(r) = (pivot..n).find(|&j| col_cache[j] & mask != 0) else {
                    continue;
                };
                if r != pivot {
                    let (head, rest) = mat.split_at_mut(r * stride);
                    head[pivot * stride..(pivot + 1) * stride].swap_with_slice(&mut rest[..stride]);
                    col_cache.swap(pivot, r);
                }
                let (head, tail) = mat.split_at_mut((pivot + 1) * stride);
                let prow = &head[pivot * stride..];
                let pword = col_cache[pivot];
                for (jj, cj) in col_cache[pivot + 1..n].iter_mut().enumerate() {
                    if *cj & mask != 0 {
                        let off = jj * stride;
                        for (a, b) in tail[off..off + stride].iter_mut().zip(prow) {
                            *a ^= *b;
                        }
                        *cj ^= pword;
                    }
                }
                if tgt[wc] & mask != 0 {
                    for (a, b) in tgt.iter_mut().zip(prow) {
                        *a ^= *b;
                    }
                }
                pivot += 1;
                if pivot >= n {
                    break;
                }
            }
        }
        // The Pauli part must cancel exactly for membership.
        if tgt[..2 * w].iter().any(|&word| word != 0) {
            return false;
        }
        // Sign pass: multiply the named generator subset into the
        // target with exact phase tracking (one phase_masks sweep per
        // used generator). The result is the identity Pauli; the state
        // is stabilized iff its accumulated phase is +1.
        let mut phase = i32::from(p.phase);
        let mut accx = p.x.clone();
        let mut accz = p.z.clone();
        for i in 0..n {
            if tgt[2 * w + i / 64] & (1u64 << (i % 64)) != 0 {
                if self.r[n + i] {
                    phase += 2;
                }
                for wi in 0..w {
                    let gx = self.x[wi * rows + n + i];
                    let gz = self.z[wi * rows + n + i];
                    let (pos, neg) = phase_masks(accx[wi], accz[wi], gx, gz);
                    phase += pos.count_ones() as i32 - neg.count_ones() as i32;
                    accx[wi] ^= gx;
                    accz[wi] ^= gz;
                }
            }
        }
        debug_assert!(
            accx.iter().all(|&x| x == 0) && accz.iter().all(|&z| z == 0),
            "combination subset must reproduce the target's Pauli part"
        );
        phase.rem_euclid(4) == 0
    }

    /// The pre-optimization [`Tableau::is_stabilized_by`]: Gaussian
    /// elimination probing one symplectic column bit per row, with
    /// per-row exact phase tracking through `mul_inplace`. Kept as the
    /// benchmark baseline and equivalence oracle; behavior is
    /// identical.
    #[doc(hidden)]
    #[must_use]
    pub fn is_stabilized_by_reference(&self, p: &PauliString) -> bool {
        assert_eq!(p.len(), self.n, "qubit count mismatch");
        let mut gens = self.stabilizer_generators();
        let mut target = p.clone();
        let mut pivot_row = 0usize;
        // Columns: first all x-bits, then all z-bits.
        for col in 0..2 * self.n {
            let bit_of = |g: &PauliString| {
                if col < self.n {
                    g.x_bit(col)
                } else {
                    g.z_bit(col - self.n)
                }
            };
            let Some(r) = (pivot_row..gens.len()).find(|&r| bit_of(&gens[r])) else {
                continue;
            };
            gens.swap(pivot_row, r);
            let (head, tail) = gens.split_at_mut(pivot_row + 1);
            let pivot = &head[pivot_row];
            for g in tail {
                if bit_of(g) {
                    g.mul_inplace(pivot);
                }
            }
            if bit_of(&target) {
                target.mul_inplace(pivot);
            }
            pivot_row += 1;
        }
        target.is_empty() && target.phase.is_multiple_of(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbqc_graph::generate;

    #[test]
    fn pauli_products() {
        let n = 1;
        let x = PauliString::single_x(n, 0);
        let z = PauliString::single_z(n, 0);
        // X·Z = −iY → phase exponent 3.
        let xz = x.mul(&z);
        assert!(xz.x_bit(0) && xz.z_bit(0));
        assert_eq!(xz.phase(), 3);
        // Z·X = iY → phase 1.
        assert_eq!(z.mul(&x).phase(), 1);
        // X·X = I.
        let xx = x.mul(&x);
        assert!(xx.is_empty());
        assert_eq!(xx.phase(), 0);
    }

    #[test]
    fn pauli_products_across_word_boundary() {
        // Qubit 70 lives in the second packed word.
        let n = 80;
        for q in [0usize, 63, 64, 70, 79] {
            let x = PauliString::single_x(n, q);
            let z = PauliString::single_z(n, q);
            assert_eq!(x.mul(&z).phase(), 3, "q={q}");
            assert_eq!(z.mul(&x).phase(), 1, "q={q}");
            assert!(!x.commutes_with(&z), "q={q}");
        }
        // Disjoint supports in different words commute.
        let a = PauliString::single_x(n, 3);
        let b = PauliString::single_z(n, 77);
        assert!(a.commutes_with(&b));
    }

    #[test]
    fn mul_inplace_matches_mul() {
        let g = generate::grid_graph(9, 9);
        let a0 = PauliString::graph_stabilizer(&g, mbqc_graph::NodeId::new(5));
        let b = PauliString::graph_stabilizer(&g, mbqc_graph::NodeId::new(40));
        let by_value = a0.mul(&b);
        let mut in_place = a0.clone();
        in_place.mul_inplace(&b);
        assert_eq!(by_value, in_place);
    }

    #[test]
    fn commutation_relations() {
        let x = PauliString::single_x(2, 0);
        let z0 = PauliString::single_z(2, 0);
        let z1 = PauliString::single_z(2, 1);
        assert!(!x.commutes_with(&z0));
        assert!(x.commutes_with(&z1));
        assert!(z0.commutes_with(&z1));
    }

    #[test]
    fn zero_state_stabilized_by_z() {
        let t = Tableau::new(3);
        for q in 0..3 {
            assert!(t.is_stabilized_by(&PauliString::single_z(3, q)));
            assert!(!t.is_stabilized_by(&PauliString::single_x(3, q)));
        }
    }

    #[test]
    fn plus_state_after_h() {
        let mut t = Tableau::new(1);
        t.h(0);
        assert!(t.is_stabilized_by(&PauliString::single_x(1, 0)));
        assert!(!t.is_stabilized_by(&PauliString::single_z(1, 0)));
    }

    #[test]
    fn minus_state_sign() {
        let mut t = Tableau::new(1);
        t.h(0);
        t.z_gate(0);
        // State |−⟩: stabilized by −X, not +X.
        assert!(!t.is_stabilized_by(&PauliString::single_x(1, 0)));
        let mut minus_x = PauliString::single_x(1, 0);
        minus_x.phase = 2;
        // is_stabilized_by checks +p; −X is in the group ⇔ target reduces
        // to identity with phase 2 → not "+" stabilized.
        assert!(t.is_stabilized_by(&minus_x.mul(&minus_x)), "identity check");
    }

    #[test]
    fn bell_state_stabilizers() {
        let mut t = Tableau::new(2);
        t.h(0);
        t.cnot(0, 1);
        // Bell pair stabilized by XX and ZZ.
        let xx = PauliString::single_x(2, 0).mul(&PauliString::single_x(2, 1));
        let zz = PauliString::single_z(2, 0).mul(&PauliString::single_z(2, 1));
        assert!(t.is_stabilized_by(&xx));
        assert!(t.is_stabilized_by(&zz));
        assert!(!t.is_stabilized_by(&PauliString::single_z(2, 0)));
    }

    #[test]
    fn bell_measurement_correlates() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..50 {
            let mut t = Tableau::new(2);
            t.h(0);
            t.cnot(0, 1);
            let a = t.measure_z(0, &mut rng);
            let b = t.measure_z(1, &mut rng);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn deterministic_measurement_after_x() {
        let mut rng = Rng::seed_from_u64(2);
        let mut t = Tableau::new(1);
        t.x_gate(0);
        assert!(t.measure_z(0, &mut rng));
        // Re-measurement is stable.
        assert!(t.measure_z(0, &mut rng));
    }

    #[test]
    fn graph_state_stabilizers_small() {
        for g in [
            generate::path_graph(4),
            generate::cycle_graph(5),
            generate::star_graph(6),
            generate::complete_graph(4),
        ] {
            let t = Tableau::graph_state(&g);
            for i in g.nodes() {
                let k = PauliString::graph_stabilizer(&g, i);
                assert!(t.is_stabilized_by(&k), "K_{i} fails");
            }
        }
    }

    #[test]
    fn graph_state_stabilizers_large() {
        // Table-II-scale check: 289 nodes (17×17 grid graph).
        let g = generate::grid_graph(17, 17);
        let t = Tableau::graph_state(&g);
        for i in g.nodes().step_by(13) {
            assert!(t.is_stabilized_by(&PauliString::graph_stabilizer(&g, i)));
        }
        // Products of stabilizers are stabilizers too.
        let a = PauliString::graph_stabilizer(&g, mbqc_graph::NodeId::new(0));
        let b = PauliString::graph_stabilizer(&g, mbqc_graph::NodeId::new(18));
        assert!(t.is_stabilized_by(&a.mul(&b)));
        // A lone X is not.
        assert!(!t.is_stabilized_by(&PauliString::single_x(g.node_count(), 0)));
    }

    #[test]
    fn measurements_on_multi_word_graph_state() {
        // 100 qubits spans two packed words; measuring the whole cycle
        // graph state must keep the tableau consistent (re-measurement of
        // any qubit is deterministic and stable).
        let g = generate::cycle_graph(100);
        let mut t = Tableau::graph_state(&g);
        let mut rng = Rng::seed_from_u64(7);
        let first: Vec<bool> = (0..100).map(|q| t.measure_z(q, &mut rng)).collect();
        let second: Vec<bool> = (0..100).map(|q| t.measure_z(q, &mut rng)).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn tableau_matches_statevector_on_random_cliffords() {
        use crate::StateVector;
        use mbqc_circuit::{Circuit, Gate};
        let mut rng = Rng::seed_from_u64(3);
        for trial in 0..20 {
            let n = 3;
            let mut t = Tableau::new(n);
            let mut c = Circuit::new(n);
            for _ in 0..12 {
                match rng.range(4) {
                    0 => {
                        let q = rng.range(n);
                        t.h(q);
                        c.h(q);
                    }
                    1 => {
                        let q = rng.range(n);
                        t.s(q);
                        c.s(q);
                    }
                    2 => {
                        let a = rng.range(n);
                        let b = (a + 1 + rng.range(n - 1)) % n;
                        t.cnot(a, b);
                        c.push(Gate::Cnot {
                            control: a,
                            target: b,
                        })
                        .unwrap();
                    }
                    _ => {
                        let a = rng.range(n);
                        let b = (a + 1 + rng.range(n - 1)) % n;
                        t.cz(a, b);
                        c.cz(a, b);
                    }
                }
            }
            let mut sv = StateVector::zero_state(n);
            sv.apply_circuit(&c);
            // Compare single-qubit Z expectation determinism.
            for q in 0..n {
                let p1 = sv.prob_one(q);
                let deterministic = !(1e-9..=1.0 - 1e-9).contains(&p1);
                let stab_plus = t.is_stabilized_by(&PauliString::single_z(n, q));
                let mut minus_z = PauliString::single_z(n, q);
                minus_z.phase = 2;
                // −Z stabilizes ⇔ q is deterministically 1. Check via
                // group membership of Z with sign −: reduce +Z…
                let stab_minus = {
                    // is_stabilized_by checks +p only; emulate −Z check by
                    // testing +Z on the X-flipped tableau.
                    let mut t2 = t.clone();
                    t2.x_gate(q);
                    t2.is_stabilized_by(&PauliString::single_z(n, q))
                };
                assert_eq!(
                    deterministic,
                    stab_plus || stab_minus,
                    "trial {trial} qubit {q}: p1={p1}"
                );
                if stab_plus {
                    assert!(p1 < 1e-9);
                }
                if stab_minus {
                    assert!(p1 > 1.0 - 1e-9);
                }
            }
        }
    }
}
