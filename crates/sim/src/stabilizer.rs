//! Aaronson–Gottesman CHP stabilizer tableau simulator.
//!
//! Graph states are stabilizer states: the paper defines them as the
//! joint +1 eigenstate of `K_i = X_i ∏_{j∈N(i)} Z_j`. The statevector
//! simulator can only verify this up to ~20 qubits; the tableau scales to
//! thousands, so graph-state structure (and Clifford fragments of
//! patterns) can be checked at benchmark size.

use mbqc_graph::Graph;
use mbqc_util::Rng;

/// A Pauli string over `n` qubits with a phase `i^phase`.
///
/// # Examples
///
/// ```
/// use mbqc_sim::stabilizer::PauliString;
///
/// let x = PauliString::single_x(3, 0);
/// let z = PauliString::single_z(3, 0);
/// let y = x.mul(&z); // X·Z = −iY
/// assert_eq!(y.phase(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PauliString {
    x: Vec<bool>,
    z: Vec<bool>,
    /// Phase exponent: the operator is `i^phase · (Pauli product)`.
    phase: u8,
}

impl PauliString {
    /// The identity on `n` qubits.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        Self {
            x: vec![false; n],
            z: vec![false; n],
            phase: 0,
        }
    }

    /// `X_q` on `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `q >= n`.
    #[must_use]
    pub fn single_x(n: usize, q: usize) -> Self {
        let mut p = Self::identity(n);
        assert!(q < n, "qubit out of range");
        p.x[q] = true;
        p
    }

    /// `Z_q` on `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `q >= n`.
    #[must_use]
    pub fn single_z(n: usize, q: usize) -> Self {
        let mut p = Self::identity(n);
        assert!(q < n, "qubit out of range");
        p.z[q] = true;
        p
    }

    /// The graph-state stabilizer `K_i = X_i ∏_{j∈N(i)} Z_j`.
    #[must_use]
    pub fn graph_stabilizer(graph: &Graph, i: mbqc_graph::NodeId) -> Self {
        let mut p = Self::single_x(graph.node_count(), i.index());
        for j in graph.neighbors(i) {
            p.z[j.index()] = true;
        }
        p
    }

    /// Number of qubits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// `true` if the string is the identity Pauli (any phase).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        !self.x.iter().any(|&b| b) && !self.z.iter().any(|&b| b)
    }

    /// Phase exponent (operator = `i^phase · Paulis`).
    #[must_use]
    pub fn phase(&self) -> u8 {
        self.phase
    }

    /// X bit of qubit `q`.
    #[must_use]
    pub fn x_bit(&self, q: usize) -> bool {
        self.x[q]
    }

    /// Z bit of qubit `q`.
    #[must_use]
    pub fn z_bit(&self, q: usize) -> bool {
        self.z[q]
    }

    /// Phase exponent of `i` produced when multiplying single-qubit
    /// Paulis `(x1,z1) · (x2,z2)` (Aaronson–Gottesman `g` function, mod 4).
    fn g(x1: bool, z1: bool, x2: bool, z2: bool) -> i8 {
        match (x1, z1) {
            (false, false) => 0,
            (true, true) => i8::from(z2) - i8::from(x2),
            (true, false) => i8::from(z2) * (2 * i8::from(x2) - 1),
            (false, true) => i8::from(x2) * (1 - 2 * i8::from(z2)),
        }
    }

    /// Product `self · other` with exact phase tracking.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    #[must_use]
    pub fn mul(&self, other: &PauliString) -> PauliString {
        assert_eq!(self.len(), other.len(), "length mismatch");
        let n = self.len();
        let mut phase = i16::from(self.phase) + i16::from(other.phase);
        let mut x = vec![false; n];
        let mut z = vec![false; n];
        for q in 0..n {
            phase += i16::from(Self::g(self.x[q], self.z[q], other.x[q], other.z[q]));
            x[q] = self.x[q] ^ other.x[q];
            z[q] = self.z[q] ^ other.z[q];
        }
        PauliString {
            x,
            z,
            phase: (phase.rem_euclid(4)) as u8,
        }
    }

    /// `true` if the two strings commute.
    #[must_use]
    pub fn commutes_with(&self, other: &PauliString) -> bool {
        let mut anti = 0usize;
        for q in 0..self.len() {
            if (self.x[q] && other.z[q]) ^ (self.z[q] && other.x[q]) {
                anti += 1;
            }
        }
        anti % 2 == 0
    }
}

/// CHP stabilizer tableau over `n` qubits.
///
/// Rows `0..n` are destabilizers, rows `n..2n` stabilizers, following
/// Aaronson & Gottesman (2004). Supports H, S, CNOT, CZ, X, Z,
/// single-qubit Z measurement, and Pauli-group membership queries.
///
/// # Examples
///
/// ```
/// use mbqc_graph::generate;
/// use mbqc_sim::stabilizer::{PauliString, Tableau};
///
/// let g = generate::cycle_graph(5);
/// let t = Tableau::graph_state(&g);
/// for i in g.nodes() {
///     assert!(t.is_stabilized_by(&PauliString::graph_stabilizer(&g, i)));
/// }
/// ```
#[derive(Debug, Clone)]
pub struct Tableau {
    n: usize,
    // Row-major bit matrices of size 2n × n.
    x: Vec<Vec<bool>>,
    z: Vec<Vec<bool>>,
    r: Vec<bool>,
}

impl Tableau {
    /// The `|0…0⟩` tableau: destabilizers `X_i`, stabilizers `Z_i`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        let rows = 2 * n;
        let mut t = Self {
            n,
            x: vec![vec![false; n]; rows],
            z: vec![vec![false; n]; rows],
            r: vec![false; rows],
        };
        for i in 0..n {
            t.x[i][i] = true; // destabilizer X_i
            t.z[n + i][i] = true; // stabilizer Z_i
        }
        t
    }

    /// Builds the graph state of `graph`: `H` on every qubit, then CZ per
    /// edge.
    #[must_use]
    pub fn graph_state(graph: &Graph) -> Self {
        let mut t = Self::new(graph.node_count());
        for q in 0..graph.node_count() {
            t.h(q);
        }
        for (a, b, _) in graph.edges() {
            t.cz(a.index(), b.index());
        }
        t
    }

    /// Number of qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    fn check(&self, q: usize) {
        assert!(q < self.n, "qubit {q} out of range");
    }

    /// Hadamard on `q`.
    pub fn h(&mut self, q: usize) {
        self.check(q);
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][q] && self.z[i][q];
            let tmp = self.x[i][q];
            self.x[i][q] = self.z[i][q];
            self.z[i][q] = tmp;
        }
    }

    /// Phase gate S on `q`.
    pub fn s(&mut self, q: usize) {
        self.check(q);
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][q] && self.z[i][q];
            self.z[i][q] ^= self.x[i][q];
        }
    }

    /// Pauli Z on `q` (= S²).
    pub fn z_gate(&mut self, q: usize) {
        self.s(q);
        self.s(q);
    }

    /// Pauli X on `q` (= H·Z·H).
    pub fn x_gate(&mut self, q: usize) {
        self.h(q);
        self.z_gate(q);
        self.h(q);
    }

    /// CNOT with the given control and target.
    ///
    /// # Panics
    ///
    /// Panics if `control == target` or either is out of range.
    pub fn cnot(&mut self, control: usize, target: usize) {
        self.check(control);
        self.check(target);
        assert_ne!(control, target, "control and target must differ");
        for i in 0..2 * self.n {
            self.r[i] ^=
                self.x[i][control] && self.z[i][target] && (self.x[i][target] ^ self.z[i][control] ^ true);
            self.x[i][target] ^= self.x[i][control];
            self.z[i][control] ^= self.z[i][target];
        }
    }

    /// CZ between `a` and `b` (via `H_b · CNOT_{a,b} · H_b`).
    pub fn cz(&mut self, a: usize, b: usize) {
        self.h(b);
        self.cnot(a, b);
        self.h(b);
    }

    /// Phase exponent sum used by `rowsum` (Aaronson–Gottesman).
    fn rowsum_phase(&self, h: usize, i: usize) -> i16 {
        let mut acc = 2 * i16::from(self.r[h]) + 2 * i16::from(self.r[i]);
        for q in 0..self.n {
            acc += i16::from(PauliString::g(
                self.x[i][q],
                self.z[i][q],
                self.x[h][q],
                self.z[h][q],
            ));
        }
        acc.rem_euclid(4)
    }

    /// `row[h] ← row[h] · row[i]` with phase bookkeeping.
    fn rowsum(&mut self, h: usize, i: usize) {
        let phase = self.rowsum_phase(h, i);
        debug_assert!(phase == 0 || phase == 2, "non-Hermitian rowsum");
        self.r[h] = phase == 2;
        for q in 0..self.n {
            self.x[h][q] ^= self.x[i][q];
            self.z[h][q] ^= self.z[i][q];
        }
    }

    /// Measures qubit `q` in the computational basis.
    ///
    /// Random outcomes (when some stabilizer anticommutes with `Z_q`)
    /// draw from `rng`; deterministic outcomes ignore it.
    pub fn measure_z(&mut self, q: usize, rng: &mut Rng) -> bool {
        self.check(q);
        let n = self.n;
        // Find a stabilizer with an X on q (anticommutes with Z_q).
        if let Some(p) = (n..2 * n).find(|&i| self.x[i][q]) {
            // Random outcome.
            for i in 0..2 * n {
                if i != p && self.x[i][q] {
                    self.rowsum(i, p);
                }
            }
            // Destabilizer row p−n becomes the old stabilizer row p.
            self.x[p - n] = self.x[p].clone();
            self.z[p - n] = self.z[p].clone();
            self.r[p - n] = self.r[p];
            // Stabilizer row p becomes ±Z_q with the measured sign.
            let outcome = rng.bernoulli(0.5);
            for c in 0..n {
                self.x[p][c] = false;
                self.z[p][c] = false;
            }
            self.z[p][q] = true;
            self.r[p] = outcome;
            outcome
        } else {
            // Deterministic outcome: accumulate into a scratch row.
            let scratch = self.scratch_row(q);
            scratch
        }
    }

    /// Computes the deterministic measurement outcome for `Z_q` using a
    /// scratch row (case where no stabilizer has an X on `q`).
    fn scratch_row(&self, q: usize) -> bool {
        let n = self.n;
        let mut sx = vec![false; n];
        let mut sz = vec![false; n];
        let mut sr: i16 = 0;
        for i in 0..n {
            if self.x[i][q] {
                // rowsum(scratch, i + n)
                let stab = i + n;
                let mut acc = 2 * i16::from(self.r[stab]) + sr;
                for c in 0..n {
                    acc += i16::from(PauliString::g(self.x[stab][c], self.z[stab][c], sx[c], sz[c]));
                }
                sr = acc.rem_euclid(4);
                for c in 0..n {
                    sx[c] ^= self.x[stab][c];
                    sz[c] ^= self.z[stab][c];
                }
            }
        }
        debug_assert!(sr == 0 || sr == 2);
        sr == 2
    }

    /// The current stabilizer generators as [`PauliString`]s (phase 0 for
    /// `+`, 2 for `−`).
    #[must_use]
    pub fn stabilizer_generators(&self) -> Vec<PauliString> {
        (self.n..2 * self.n)
            .map(|i| PauliString {
                x: self.x[i].clone(),
                z: self.z[i].clone(),
                phase: if self.r[i] { 2 } else { 0 },
            })
            .collect()
    }

    /// Returns `true` if `+p` is in the stabilizer group of the current
    /// state (i.e. `p` stabilizes the state).
    ///
    /// Runs Gaussian elimination over the symplectic representation with
    /// exact sign tracking.
    ///
    /// # Panics
    ///
    /// Panics if `p` has the wrong qubit count.
    #[must_use]
    pub fn is_stabilized_by(&self, p: &PauliString) -> bool {
        assert_eq!(p.len(), self.n, "qubit count mismatch");
        let mut gens = self.stabilizer_generators();
        let mut target = p.clone();
        let mut pivot_row = 0usize;
        // Columns: first all x-bits, then all z-bits.
        for col in 0..2 * self.n {
            let bit = |g: &PauliString| {
                if col < self.n {
                    g.x[col]
                } else {
                    g.z[col - self.n]
                }
            };
            let Some(r) = (pivot_row..gens.len()).find(|&r| bit(&gens[r])) else {
                continue;
            };
            gens.swap(pivot_row, r);
            let pivot = gens[pivot_row].clone();
            for g in gens.iter_mut().skip(pivot_row + 1) {
                if bit(g) {
                    *g = g.mul(&pivot);
                }
            }
            if bit(&target) {
                target = target.mul(&pivot);
            }
            pivot_row += 1;
        }
        target.is_empty() && target.phase % 4 == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbqc_graph::generate;

    #[test]
    fn pauli_products() {
        let n = 1;
        let x = PauliString::single_x(n, 0);
        let z = PauliString::single_z(n, 0);
        // X·Z = −iY → phase exponent 3.
        let xz = x.mul(&z);
        assert!(xz.x_bit(0) && xz.z_bit(0));
        assert_eq!(xz.phase(), 3);
        // Z·X = iY → phase 1.
        assert_eq!(z.mul(&x).phase(), 1);
        // X·X = I.
        let xx = x.mul(&x);
        assert!(xx.is_empty());
        assert_eq!(xx.phase(), 0);
    }

    #[test]
    fn commutation_relations() {
        let x = PauliString::single_x(2, 0);
        let z0 = PauliString::single_z(2, 0);
        let z1 = PauliString::single_z(2, 1);
        assert!(!x.commutes_with(&z0));
        assert!(x.commutes_with(&z1));
        assert!(z0.commutes_with(&z1));
    }

    #[test]
    fn zero_state_stabilized_by_z() {
        let t = Tableau::new(3);
        for q in 0..3 {
            assert!(t.is_stabilized_by(&PauliString::single_z(3, q)));
            assert!(!t.is_stabilized_by(&PauliString::single_x(3, q)));
        }
    }

    #[test]
    fn plus_state_after_h() {
        let mut t = Tableau::new(1);
        t.h(0);
        assert!(t.is_stabilized_by(&PauliString::single_x(1, 0)));
        assert!(!t.is_stabilized_by(&PauliString::single_z(1, 0)));
    }

    #[test]
    fn minus_state_sign() {
        let mut t = Tableau::new(1);
        t.h(0);
        t.z_gate(0);
        // State |−⟩: stabilized by −X, not +X.
        assert!(!t.is_stabilized_by(&PauliString::single_x(1, 0)));
        let mut minus_x = PauliString::single_x(1, 0);
        minus_x.phase = 2;
        // is_stabilized_by checks +p; −X is in the group ⇔ target reduces
        // to identity with phase 2 → not "+" stabilized.
        assert!(t.is_stabilized_by(&minus_x.mul(&minus_x)), "identity check");
    }

    #[test]
    fn bell_state_stabilizers() {
        let mut t = Tableau::new(2);
        t.h(0);
        t.cnot(0, 1);
        // Bell pair stabilized by XX and ZZ.
        let xx = PauliString::single_x(2, 0).mul(&PauliString::single_x(2, 1));
        let zz = PauliString::single_z(2, 0).mul(&PauliString::single_z(2, 1));
        assert!(t.is_stabilized_by(&xx));
        assert!(t.is_stabilized_by(&zz));
        assert!(!t.is_stabilized_by(&PauliString::single_z(2, 0)));
    }

    #[test]
    fn bell_measurement_correlates() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..50 {
            let mut t = Tableau::new(2);
            t.h(0);
            t.cnot(0, 1);
            let a = t.measure_z(0, &mut rng);
            let b = t.measure_z(1, &mut rng);
            assert_eq!(a, b);
        }
    }

    #[test]
    fn deterministic_measurement_after_x() {
        let mut rng = Rng::seed_from_u64(2);
        let mut t = Tableau::new(1);
        t.x_gate(0);
        assert!(t.measure_z(0, &mut rng));
        // Re-measurement is stable.
        assert!(t.measure_z(0, &mut rng));
    }

    #[test]
    fn graph_state_stabilizers_small() {
        for g in [
            generate::path_graph(4),
            generate::cycle_graph(5),
            generate::star_graph(6),
            generate::complete_graph(4),
        ] {
            let t = Tableau::graph_state(&g);
            for i in g.nodes() {
                let k = PauliString::graph_stabilizer(&g, i);
                assert!(t.is_stabilized_by(&k), "K_{i} fails");
            }
        }
    }

    #[test]
    fn graph_state_stabilizers_large() {
        // Table-II-scale check: 289 nodes (17×17 grid graph).
        let g = generate::grid_graph(17, 17);
        let t = Tableau::graph_state(&g);
        for i in g.nodes().step_by(13) {
            assert!(t.is_stabilized_by(&PauliString::graph_stabilizer(&g, i)));
        }
        // Products of stabilizers are stabilizers too.
        let a = PauliString::graph_stabilizer(&g, mbqc_graph::NodeId::new(0));
        let b = PauliString::graph_stabilizer(&g, mbqc_graph::NodeId::new(18));
        assert!(t.is_stabilized_by(&a.mul(&b)));
        // A lone X is not.
        assert!(!t.is_stabilized_by(&PauliString::single_x(g.node_count(), 0)));
    }

    #[test]
    fn tableau_matches_statevector_on_random_cliffords() {
        use crate::StateVector;
        use mbqc_circuit::{Circuit, Gate};
        let mut rng = Rng::seed_from_u64(3);
        for trial in 0..20 {
            let n = 3;
            let mut t = Tableau::new(n);
            let mut c = Circuit::new(n);
            for _ in 0..12 {
                match rng.range(4) {
                    0 => {
                        let q = rng.range(n);
                        t.h(q);
                        c.h(q);
                    }
                    1 => {
                        let q = rng.range(n);
                        t.s(q);
                        c.s(q);
                    }
                    2 => {
                        let a = rng.range(n);
                        let b = (a + 1 + rng.range(n - 1)) % n;
                        t.cnot(a, b);
                        c.push(Gate::Cnot { control: a, target: b }).unwrap();
                    }
                    _ => {
                        let a = rng.range(n);
                        let b = (a + 1 + rng.range(n - 1)) % n;
                        t.cz(a, b);
                        c.cz(a, b);
                    }
                }
            }
            let mut sv = StateVector::zero_state(n);
            sv.apply_circuit(&c);
            // Compare single-qubit Z expectation determinism.
            for q in 0..n {
                let p1 = sv.prob_one(q);
                let deterministic = p1 < 1e-9 || p1 > 1.0 - 1e-9;
                let stab_plus = t.is_stabilized_by(&PauliString::single_z(n, q));
                let mut minus_z = PauliString::single_z(n, q);
                minus_z.phase = 2;
                // −Z stabilizes ⇔ q is deterministically 1. Check via
                // group membership of Z with sign −: reduce +Z…
                let stab_minus = {
                    // is_stabilized_by checks +p only; emulate −Z check by
                    // testing +Z on the X-flipped tableau.
                    let mut t2 = t.clone();
                    t2.x_gate(q);
                    t2.is_stabilized_by(&PauliString::single_z(n, q))
                };
                assert_eq!(
                    deterministic,
                    stab_plus || stab_minus,
                    "trial {trial} qubit {q}: p1={p1}"
                );
                if stab_plus {
                    assert!(p1 < 1e-9);
                }
                if stab_minus {
                    assert!(p1 > 1.0 - 1e-9);
                }
            }
        }
    }
}
