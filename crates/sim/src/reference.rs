//! Pre-optimization reference implementations of the simulator kernels.
//!
//! Preserves the original `Vec<bool>` Pauli/tableau representation (one
//! branchy loop iteration per qubit) exactly as it was before the
//! bit-packing overhaul. Used as the oracle for the packed-vs-bool
//! equivalence proptests (`tests/proptest_sim.rs`) and as the baseline
//! the kernel benchmarks measure speedups against.
//!
//! Do not "optimize" this module; its slowness is the point.

use mbqc_graph::Graph;
use mbqc_util::Rng;

/// Reference Pauli string: one `bool` per qubit per component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PauliString {
    x: Vec<bool>,
    z: Vec<bool>,
    /// Phase exponent: the operator is `i^phase · (Pauli product)`.
    phase: u8,
}

impl PauliString {
    /// The identity on `n` qubits.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        Self {
            x: vec![false; n],
            z: vec![false; n],
            phase: 0,
        }
    }

    /// `X_q` on `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `q >= n`.
    #[must_use]
    pub fn single_x(n: usize, q: usize) -> Self {
        let mut p = Self::identity(n);
        assert!(q < n, "qubit out of range");
        p.x[q] = true;
        p
    }

    /// `Z_q` on `n` qubits.
    ///
    /// # Panics
    ///
    /// Panics if `q >= n`.
    #[must_use]
    pub fn single_z(n: usize, q: usize) -> Self {
        let mut p = Self::identity(n);
        assert!(q < n, "qubit out of range");
        p.z[q] = true;
        p
    }

    /// The graph-state stabilizer `K_i = X_i ∏_{j∈N(i)} Z_j`.
    #[must_use]
    pub fn graph_stabilizer(graph: &Graph, i: mbqc_graph::NodeId) -> Self {
        let mut p = Self::single_x(graph.node_count(), i.index());
        for j in graph.neighbors(i) {
            p.z[j.index()] = true;
        }
        p
    }

    /// Number of qubits.
    #[must_use]
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// `true` if the string is the identity Pauli (any phase).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        !self.x.iter().any(|&b| b) && !self.z.iter().any(|&b| b)
    }

    /// Phase exponent (operator = `i^phase · Paulis`).
    #[must_use]
    pub fn phase(&self) -> u8 {
        self.phase
    }

    /// X bit of qubit `q`.
    #[must_use]
    pub fn x_bit(&self, q: usize) -> bool {
        self.x[q]
    }

    /// Z bit of qubit `q`.
    #[must_use]
    pub fn z_bit(&self, q: usize) -> bool {
        self.z[q]
    }

    /// Phase exponent of `i` produced when multiplying single-qubit
    /// Paulis `(x1,z1) · (x2,z2)` (Aaronson–Gottesman `g` function, mod 4).
    fn g(x1: bool, z1: bool, x2: bool, z2: bool) -> i8 {
        match (x1, z1) {
            (false, false) => 0,
            (true, true) => i8::from(z2) - i8::from(x2),
            (true, false) => i8::from(z2) * (2 * i8::from(x2) - 1),
            (false, true) => i8::from(x2) * (1 - 2 * i8::from(z2)),
        }
    }

    /// Product `self · other` with exact phase tracking.
    ///
    /// # Panics
    ///
    /// Panics on length mismatch.
    #[must_use]
    pub fn mul(&self, other: &PauliString) -> PauliString {
        assert_eq!(self.len(), other.len(), "length mismatch");
        let n = self.len();
        let mut phase = i16::from(self.phase) + i16::from(other.phase);
        let mut x = vec![false; n];
        let mut z = vec![false; n];
        for q in 0..n {
            phase += i16::from(Self::g(self.x[q], self.z[q], other.x[q], other.z[q]));
            x[q] = self.x[q] ^ other.x[q];
            z[q] = self.z[q] ^ other.z[q];
        }
        PauliString {
            x,
            z,
            phase: (phase.rem_euclid(4)) as u8,
        }
    }

    /// `true` if the two strings commute.
    #[must_use]
    pub fn commutes_with(&self, other: &PauliString) -> bool {
        let mut anti = 0usize;
        for q in 0..self.len() {
            if (self.x[q] && other.z[q]) ^ (self.z[q] && other.x[q]) {
                anti += 1;
            }
        }
        anti.is_multiple_of(2)
    }
}

/// Reference CHP tableau: row-major `Vec<Vec<bool>>` bit matrices.
#[derive(Debug, Clone)]
pub struct Tableau {
    n: usize,
    // Row-major bit matrices of size 2n × n.
    x: Vec<Vec<bool>>,
    z: Vec<Vec<bool>>,
    r: Vec<bool>,
}

impl Tableau {
    /// The `|0…0⟩` tableau: destabilizers `X_i`, stabilizers `Z_i`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        let rows = 2 * n;
        let mut t = Self {
            n,
            x: vec![vec![false; n]; rows],
            z: vec![vec![false; n]; rows],
            r: vec![false; rows],
        };
        for i in 0..n {
            t.x[i][i] = true; // destabilizer X_i
            t.z[n + i][i] = true; // stabilizer Z_i
        }
        t
    }

    /// Builds the graph state of `graph`: `H` on every qubit, then CZ per
    /// edge.
    #[must_use]
    pub fn graph_state(graph: &Graph) -> Self {
        let mut t = Self::new(graph.node_count());
        for q in 0..graph.node_count() {
            t.h(q);
        }
        for (a, b, _) in graph.edges() {
            t.cz(a.index(), b.index());
        }
        t
    }

    /// Number of qubits.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.n
    }

    fn check(&self, q: usize) {
        assert!(q < self.n, "qubit {q} out of range");
    }

    /// Hadamard on `q`.
    pub fn h(&mut self, q: usize) {
        self.check(q);
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][q] && self.z[i][q];
            let tmp = self.x[i][q];
            self.x[i][q] = self.z[i][q];
            self.z[i][q] = tmp;
        }
    }

    /// Phase gate S on `q`.
    pub fn s(&mut self, q: usize) {
        self.check(q);
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][q] && self.z[i][q];
            self.z[i][q] ^= self.x[i][q];
        }
    }

    /// Pauli Z on `q` (= S²).
    pub fn z_gate(&mut self, q: usize) {
        self.s(q);
        self.s(q);
    }

    /// Pauli X on `q` (= H·Z·H).
    pub fn x_gate(&mut self, q: usize) {
        self.h(q);
        self.z_gate(q);
        self.h(q);
    }

    /// CNOT with the given control and target.
    ///
    /// # Panics
    ///
    /// Panics if `control == target` or either is out of range.
    pub fn cnot(&mut self, control: usize, target: usize) {
        self.check(control);
        self.check(target);
        assert_ne!(control, target, "control and target must differ");
        for i in 0..2 * self.n {
            self.r[i] ^= self.x[i][control]
                && self.z[i][target]
                && (self.x[i][target] ^ self.z[i][control] ^ true);
            self.x[i][target] ^= self.x[i][control];
            self.z[i][control] ^= self.z[i][target];
        }
    }

    /// CZ between `a` and `b` (via `H_b · CNOT_{a,b} · H_b`).
    pub fn cz(&mut self, a: usize, b: usize) {
        self.h(b);
        self.cnot(a, b);
        self.h(b);
    }

    /// Phase exponent sum used by `rowsum` (Aaronson–Gottesman).
    fn rowsum_phase(&self, h: usize, i: usize) -> i16 {
        let mut acc = 2 * i16::from(self.r[h]) + 2 * i16::from(self.r[i]);
        for q in 0..self.n {
            acc += i16::from(PauliString::g(
                self.x[i][q],
                self.z[i][q],
                self.x[h][q],
                self.z[h][q],
            ));
        }
        acc.rem_euclid(4)
    }

    /// `row[h] ← row[h] · row[i]` with phase bookkeeping.
    fn rowsum(&mut self, h: usize, i: usize) {
        let phase = self.rowsum_phase(h, i);
        debug_assert!(phase == 0 || phase == 2, "non-Hermitian rowsum");
        self.r[h] = phase == 2;
        for q in 0..self.n {
            self.x[h][q] ^= self.x[i][q];
            self.z[h][q] ^= self.z[i][q];
        }
    }

    /// Measures qubit `q` in the computational basis.
    ///
    /// Random outcomes (when some stabilizer anticommutes with `Z_q`)
    /// draw from `rng`; deterministic outcomes ignore it.
    pub fn measure_z(&mut self, q: usize, rng: &mut Rng) -> bool {
        self.check(q);
        let n = self.n;
        // Find a stabilizer with an X on q (anticommutes with Z_q).
        if let Some(p) = (n..2 * n).find(|&i| self.x[i][q]) {
            // Random outcome. Row p−n (the pivot's partner destabilizer)
            // is skipped: it anticommutes with row p, so the rowsum phase
            // would be imaginary — and the row is overwritten with a copy
            // of row p below anyway, making the rowsum dead work. (The
            // seed rowsummed it, which could trip the Hermiticity
            // debug-assertion; fixed identically in both paths.)
            for i in 0..2 * n {
                if i != p && i != p - n && self.x[i][q] {
                    self.rowsum(i, p);
                }
            }
            // Destabilizer row p−n becomes the old stabilizer row p.
            self.x[p - n] = self.x[p].clone();
            self.z[p - n] = self.z[p].clone();
            self.r[p - n] = self.r[p];
            // Stabilizer row p becomes ±Z_q with the measured sign.
            let outcome = rng.bernoulli(0.5);
            for c in 0..n {
                self.x[p][c] = false;
                self.z[p][c] = false;
            }
            self.z[p][q] = true;
            self.r[p] = outcome;
            outcome
        } else {
            // Deterministic outcome: accumulate into a scratch row.
            self.scratch_row(q)
        }
    }

    /// Computes the deterministic measurement outcome for `Z_q` using a
    /// scratch row (case where no stabilizer has an X on `q`).
    fn scratch_row(&self, q: usize) -> bool {
        let n = self.n;
        let mut sx = vec![false; n];
        let mut sz = vec![false; n];
        let mut sr: i16 = 0;
        for i in 0..n {
            if self.x[i][q] {
                // rowsum(scratch, i + n)
                let stab = i + n;
                let mut acc = 2 * i16::from(self.r[stab]) + sr;
                for c in 0..n {
                    acc += i16::from(PauliString::g(
                        self.x[stab][c],
                        self.z[stab][c],
                        sx[c],
                        sz[c],
                    ));
                }
                sr = acc.rem_euclid(4);
                for c in 0..n {
                    sx[c] ^= self.x[stab][c];
                    sz[c] ^= self.z[stab][c];
                }
            }
        }
        debug_assert!(sr == 0 || sr == 2);
        sr == 2
    }

    /// The current stabilizer generators as [`PauliString`]s (phase 0 for
    /// `+`, 2 for `−`).
    #[must_use]
    pub fn stabilizer_generators(&self) -> Vec<PauliString> {
        (self.n..2 * self.n)
            .map(|i| PauliString {
                x: self.x[i].clone(),
                z: self.z[i].clone(),
                phase: if self.r[i] { 2 } else { 0 },
            })
            .collect()
    }

    /// Returns `true` if `+p` is in the stabilizer group of the current
    /// state (i.e. `p` stabilizes the state).
    ///
    /// # Panics
    ///
    /// Panics if `p` has the wrong qubit count.
    #[must_use]
    pub fn is_stabilized_by(&self, p: &PauliString) -> bool {
        assert_eq!(p.len(), self.n, "qubit count mismatch");
        let mut gens = self.stabilizer_generators();
        let mut target = p.clone();
        let mut pivot_row = 0usize;
        // Columns: first all x-bits, then all z-bits.
        for col in 0..2 * self.n {
            let bit = |g: &PauliString| {
                if col < self.n {
                    g.x[col]
                } else {
                    g.z[col - self.n]
                }
            };
            let Some(r) = (pivot_row..gens.len()).find(|&r| bit(&gens[r])) else {
                continue;
            };
            gens.swap(pivot_row, r);
            let pivot = gens[pivot_row].clone();
            for g in gens.iter_mut().skip(pivot_row + 1) {
                if bit(g) {
                    *g = g.mul(&pivot);
                }
            }
            if bit(&target) {
                target = target.mul(&pivot);
            }
            pivot_row += 1;
        }
        target.is_empty() && target.phase.is_multiple_of(4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbqc_graph::generate;

    #[test]
    fn reference_graph_state_stabilizers() {
        let g = generate::cycle_graph(6);
        let t = Tableau::graph_state(&g);
        for i in g.nodes() {
            assert!(t.is_stabilized_by(&PauliString::graph_stabilizer(&g, i)));
        }
    }

    #[test]
    fn reference_bell_measurement_correlates() {
        let mut rng = Rng::seed_from_u64(1);
        for _ in 0..20 {
            let mut t = Tableau::new(2);
            t.h(0);
            t.cnot(0, 1);
            assert_eq!(t.measure_z(0, &mut rng), t.measure_z(1, &mut rng));
        }
    }
}
