//! Quantum simulation substrate for semantic validation.
//!
//! The DC-MBQC pipeline is a *compiler*: its correctness rests on the
//! circuit → pattern translation being unitarily faithful and on graph
//! states having the stabilizer structure the paper assumes
//! (`K_i = X_i ∏_{j∈N(i)} Z_j`). This crate proves both on concrete
//! instances:
//!
//! * [`complex`] / [`statevector`] — a dense statevector simulator with
//!   the full benchmark gate set, XY-plane measurements, and dynamic
//!   qubit allocation/removal.
//! * [`stabilizer`] — an Aaronson–Gottesman CHP tableau simulator with
//!   Pauli-group membership checking, used to verify graph-state
//!   stabilizers on instances far beyond statevector reach. Bit-packed:
//!   row operations are word-wise XORs over `u64` words.
//! * [`reference`] — the pre-optimization `Vec<bool>` tableau, kept as
//!   the equivalence-test oracle and benchmark baseline. Gated behind
//!   the `reference-impls` feature (on by default) so release consumers
//!   can compile without it (`default-features = false`).
//! * [`pattern_sim`] — a lazy MBQC pattern executor: it walks a
//!   [`Pattern`](mbqc_pattern::Pattern) in measurement order, allocates
//!   photons on demand, applies byproduct corrections, and returns the
//!   output state — so circuit ↔ pattern equivalence is checked end to
//!   end, random measurement outcomes included.
//!
//! # Examples
//!
//! ```
//! use mbqc_circuit::Circuit;
//! use mbqc_pattern::transpile;
//! use mbqc_sim::pattern_sim::verify_pattern_equivalence;
//! use mbqc_util::Rng;
//!
//! let mut c = Circuit::new(2);
//! c.h(0).cnot(0, 1).t(1);
//! let p = transpile::transpile(&c);
//! let mut rng = Rng::seed_from_u64(1);
//! assert!(verify_pattern_equivalence(&c, &p, 5, &mut rng));
//! ```

pub mod complex;
pub mod pattern_sim;
#[cfg(feature = "reference-impls")]
pub mod reference;
pub mod stabilizer;
pub mod statevector;

pub use complex::C64;
pub use statevector::{StateVector, MAX_QUBITS};
