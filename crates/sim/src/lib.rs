//! Quantum simulation substrate for semantic validation.
//!
//! The DC-MBQC pipeline is a *compiler*: its correctness rests on the
//! circuit → pattern translation being unitarily faithful and on graph
//! states having the stabilizer structure the paper assumes
//! (`K_i = X_i ∏_{j∈N(i)} Z_j`). This crate proves both on concrete
//! instances:
//!
//! * [`complex`] / [`statevector`] — a dense statevector simulator with
//!   the full benchmark gate set, XY-plane measurements, and dynamic
//!   qubit allocation/removal.
//! * [`stabilizer`] — an Aaronson–Gottesman CHP tableau simulator with
//!   Pauli-group membership checking, used to verify graph-state
//!   stabilizers on instances far beyond statevector reach. Bit-packed:
//!   row operations are word-wise XORs over `u64` words.
//! * [`reference`] — the pre-optimization `Vec<bool>` tableau, kept as
//!   the equivalence-test oracle and benchmark baseline. Gated behind
//!   the `reference-impls` feature (on by default) so release consumers
//!   can compile without it (`default-features = false`).
//! * [`pattern_sim`] — a lazy MBQC pattern executor: it walks a
//!   [`Pattern`](mbqc_pattern::Pattern) in measurement order, allocates
//!   photons on demand, applies byproduct corrections, and returns the
//!   output state — so circuit ↔ pattern equivalence is checked end to
//!   end, random measurement outcomes included.
//!
//! # Kernel design
//!
//! ## Statevector gate application and fusion
//!
//! [`StateVector::apply_single`] dispatches on the 2×2 matrix's shape
//! before touching amplitudes. Diagonal gates (Z/S/T/phase) and
//! anti-diagonal gates (X/Y) touch each amplitude once. Dense gates
//! with all-real entries (H, RY, √X compositions) take a real-matrix
//! path that does the butterfly in 12 real flops per amplitude pair
//! instead of the 28 a complex 2×2 costs, which is what moves the
//! tracked `statevector/apply_single_h14` kernel. All paths iterate
//! the amplitude array in stride-aware contiguous blocks so the
//! compiler autovectorizes the inner loops — no explicit SIMD
//! intrinsics, no `unsafe`.
//!
//! [`StateVector::apply_circuit_with`] adds gate *fusion* on top: each
//! single-qubit gate is composed into a pending per-qubit 2×2 matrix
//! (scratch held in the reusable [`FusionWorkspace`]), flushed only
//! when a two-qubit gate or measurement touches the qubit. A run of k
//! single-qubit gates then costs one amplitude sweep instead of k, and
//! a composed run of diagonal gates stays diagonal, keeping the
//! cheapest path. The `apply_single_reference` /
//! `apply_circuit_reference` entry points keep the unfused dense sweep
//! as the proptest-pinned oracle.
//!
//! ## Stabilizer membership via destabilizer duality
//!
//! [`stabilizer::Tableau::is_stabilized_by`] decides group membership
//! with no elimination at all: in a CHP tableau the destabilizer rows
//! are a dual basis for the stabilizer rows, so a Pauli string `p` is
//! in the stabilizer group iff it commutes with every destabilizer
//! *and* every stabilizer, and its factor decomposition is read off
//! from which destabilizers it anticommutes with. That is one
//! word-parallel AND+popcount sweep per row — `O(n²/64)` — replacing
//! the `O(n³/64)` Gaussian elimination this kernel used before. Both
//! eliminating checkers survive as hidden methods — the word-blocked
//! `is_stabilized_by_elimination` and the probe-based
//! `is_stabilized_by_reference` — so the three-way equivalence
//! proptest pins projection, blocked elimination, and the
//! pre-optimization probe against each other.
//!
//! # Examples
//!
//! ```
//! use mbqc_circuit::Circuit;
//! use mbqc_pattern::transpile;
//! use mbqc_sim::pattern_sim::verify_pattern_equivalence;
//! use mbqc_util::Rng;
//!
//! let mut c = Circuit::new(2);
//! c.h(0).cnot(0, 1).t(1);
//! let p = transpile::transpile(&c);
//! let mut rng = Rng::seed_from_u64(1);
//! assert!(verify_pattern_equivalence(&c, &p, 5, &mut rng));
//! ```

pub mod complex;
pub mod pattern_sim;
#[cfg(feature = "reference-impls")]
pub mod reference;
pub mod stabilizer;
pub mod statevector;

pub use complex::C64;
pub use statevector::{FusionWorkspace, StateVector, MAX_QUBITS};
