//! Property-based equivalence tests: the bit-packed stabilizer tableau
//! against the pre-optimization `Vec<bool>` reference, on random Clifford
//! sequences with interleaved measurements.
#![cfg(feature = "reference-impls")]

use mbqc_graph::{generate, NodeId};
use mbqc_sim::{reference, stabilizer};
use mbqc_util::Rng;
use proptest::prelude::*;

/// One random Clifford operation, chosen identically for both tableaus.
fn apply_random_op(
    packed: &mut stabilizer::Tableau,
    boolean: &mut reference::Tableau,
    n: usize,
    rng: &mut Rng,
) {
    match rng.range(6) {
        0 => {
            let q = rng.range(n);
            packed.h(q);
            boolean.h(q);
        }
        1 => {
            let q = rng.range(n);
            packed.s(q);
            boolean.s(q);
        }
        2 => {
            let q = rng.range(n);
            packed.x_gate(q);
            boolean.x_gate(q);
        }
        3 => {
            let q = rng.range(n);
            packed.z_gate(q);
            boolean.z_gate(q);
        }
        4 => {
            let a = rng.range(n);
            let b = (a + 1 + rng.range(n - 1)) % n;
            packed.cnot(a, b);
            boolean.cnot(a, b);
        }
        _ => {
            let a = rng.range(n);
            let b = (a + 1 + rng.range(n - 1)) % n;
            packed.cz(a, b);
            boolean.cz(a, b);
        }
    }
}

/// Asserts the two tableaus describe identical stabilizer rows.
fn assert_rows_equal(
    packed: &stabilizer::Tableau,
    boolean: &reference::Tableau,
) -> Result<(), TestCaseError> {
    let n = packed.num_qubits();
    prop_assert_eq!(n, boolean.num_qubits());
    let pg = packed.stabilizer_generators();
    let bg = boolean.stabilizer_generators();
    for (row, (p, b)) in pg.iter().zip(&bg).enumerate() {
        prop_assert_eq!(p.phase(), b.phase(), "row {} phase", row);
        for q in 0..n {
            prop_assert_eq!(p.x_bit(q), b.x_bit(q), "row {} x bit {}", row, q);
            prop_assert_eq!(p.z_bit(q), b.z_bit(q), "row {} z bit {}", row, q);
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn packed_tableau_matches_bool_tableau_on_random_cliffords(
        n in 2usize..70,
        ops in 10usize..120,
        seed in 0u64..1000,
    ) {
        // Sizes beyond 64 qubits exercise multi-word rows.
        let mut rng = Rng::seed_from_u64(seed);
        let mut packed = stabilizer::Tableau::new(n);
        let mut boolean = reference::Tableau::new(n);
        for _ in 0..ops {
            apply_random_op(&mut packed, &mut boolean, n, &mut rng);
        }
        assert_rows_equal(&packed, &boolean)?;
    }

    #[test]
    fn packed_measurements_match_bool_measurements(
        n in 2usize..40,
        ops in 5usize..60,
        measures in 1usize..20,
        seed in 0u64..1000,
    ) {
        // Both implementations must consume randomness identically: the
        // pivot search and rowsum pattern are the same algorithm, so the
        // same RNG must yield the same outcomes AND the same post-
        // measurement tableau.
        let mut rng = Rng::seed_from_u64(seed);
        let mut packed = stabilizer::Tableau::new(n);
        let mut boolean = reference::Tableau::new(n);
        for _ in 0..ops {
            apply_random_op(&mut packed, &mut boolean, n, &mut rng);
        }
        let mut rng_p = Rng::seed_from_u64(seed ^ 0x5eed);
        let mut rng_b = Rng::seed_from_u64(seed ^ 0x5eed);
        for m in 0..measures {
            let q = (m * 7 + 3) % n;
            let a = packed.measure_z(q, &mut rng_p);
            let b = boolean.measure_z(q, &mut rng_b);
            prop_assert_eq!(a, b, "measurement {} on qubit {}", m, q);
            assert_rows_equal(&packed, &boolean)?;
        }
    }

    #[test]
    fn interleaved_gates_and_measurements_match_bool(
        n in 2usize..40,
        steps in 10usize..80,
        seed in 0u64..1000,
    ) {
        // Gates *between* measurements exercise every maintenance path
        // of the packed tableau's first-stabilizer-with-X index: exact
        // rebuilds in `h`/`cnot` sweeps, the rowsum clamp, and the
        // post-measurement reset. Outcomes and rows must stay identical
        // to the reference at every step.
        let mut rng = Rng::seed_from_u64(seed);
        let mut packed = stabilizer::Tableau::new(n);
        let mut boolean = reference::Tableau::new(n);
        let mut rng_p = Rng::seed_from_u64(seed ^ 0xfeed);
        let mut rng_b = Rng::seed_from_u64(seed ^ 0xfeed);
        for step in 0..steps {
            if rng.bernoulli(0.35) {
                let q = rng.range(n);
                let a = packed.measure_z(q, &mut rng_p);
                let b = boolean.measure_z(q, &mut rng_b);
                prop_assert_eq!(a, b, "step {} qubit {}", step, q);
            } else {
                apply_random_op(&mut packed, &mut boolean, n, &mut rng);
            }
        }
        assert_rows_equal(&packed, &boolean)?;
    }

    #[test]
    fn measure_sweep_and_remeasure_match_bool(
        side in 2usize..7,
        seed in 0u64..1000,
    ) {
        // The scratch-row deterministic path, exercised hard: a
        // graph-state measure-all sweep turns mostly deterministic as
        // it progresses, and the second sweep (plus interleaved
        // re-measurements) is deterministic end to end — every outcome
        // flows through the shared destabilizer-target collection and
        // the tableau-resident scratch row. Outcomes and rows must
        // match the reference at every step.
        let g = generate::grid_graph(side, side);
        let n = g.node_count();
        let mut packed = stabilizer::Tableau::graph_state(&g);
        let mut boolean = reference::Tableau::graph_state(&g);
        let mut rng_p = Rng::seed_from_u64(seed ^ 0xdead);
        let mut rng_b = Rng::seed_from_u64(seed ^ 0xdead);
        let mut rng = Rng::seed_from_u64(seed);
        for sweep in 0..2 {
            for q in 0..n {
                let a = packed.measure_z(q, &mut rng_p);
                let b = boolean.measure_z(q, &mut rng_b);
                prop_assert_eq!(a, b, "sweep {} qubit {}", sweep, q);
                if rng.bernoulli(0.2) {
                    // Immediate re-measurement: deterministic, O(1)
                    // pivot scan, scratch-row outcome.
                    let a2 = packed.measure_z(q, &mut rng_p);
                    let b2 = boolean.measure_z(q, &mut rng_b);
                    prop_assert_eq!(a2, b2, "re-measure sweep {} qubit {}", sweep, q);
                    prop_assert_eq!(a2, a, "re-measurement must repeat the outcome");
                }
            }
            assert_rows_equal(&packed, &boolean)?;
        }
    }

    #[test]
    fn packed_pauli_algebra_matches_bool(
        n in 1usize..130,
        seed in 0u64..2000,
    ) {
        // Random Pauli pair: compare product phase/support and
        // commutation between the packed and boolean representations.
        let mut rng = Rng::seed_from_u64(seed);
        let mut p1 = stabilizer::PauliString::identity(n);
        let mut p2 = stabilizer::PauliString::identity(n);
        let mut b1 = reference::PauliString::identity(n);
        let mut b2 = reference::PauliString::identity(n);
        for q in 0..n {
            if rng.bernoulli(0.4) {
                p1 = p1.mul(&stabilizer::PauliString::single_x(n, q));
                b1 = b1.mul(&reference::PauliString::single_x(n, q));
            }
            if rng.bernoulli(0.4) {
                p1 = p1.mul(&stabilizer::PauliString::single_z(n, q));
                b1 = b1.mul(&reference::PauliString::single_z(n, q));
            }
            if rng.bernoulli(0.4) {
                p2 = p2.mul(&stabilizer::PauliString::single_x(n, q));
                b2 = b2.mul(&reference::PauliString::single_x(n, q));
            }
            if rng.bernoulli(0.4) {
                p2 = p2.mul(&stabilizer::PauliString::single_z(n, q));
                b2 = b2.mul(&reference::PauliString::single_z(n, q));
            }
        }
        prop_assert_eq!(p1.phase(), b1.phase());
        let (pp, bp) = (p1.mul(&p2), b1.mul(&b2));
        prop_assert_eq!(pp.phase(), bp.phase(), "product phase");
        for q in 0..n {
            prop_assert_eq!(pp.x_bit(q), bp.x_bit(q));
            prop_assert_eq!(pp.z_bit(q), bp.z_bit(q));
        }
        prop_assert_eq!(p1.commutes_with(&p2), b1.commutes_with(&b2));
        prop_assert_eq!(pp.is_empty(), bp.is_empty());
    }

    #[test]
    fn graph_state_verification_agrees(side in 2usize..10, seed in 0u64..100) {
        // End-to-end: both tableaus verify (and refute) the same
        // graph-state stabilizers.
        let g = generate::grid_graph(side, side);
        let packed = stabilizer::Tableau::graph_state(&g);
        let boolean = reference::Tableau::graph_state(&g);
        let mut rng = Rng::seed_from_u64(seed);
        let i = NodeId::new(rng.range(g.node_count()));
        let k_packed = stabilizer::PauliString::graph_stabilizer(&g, i);
        let k_bool = reference::PauliString::graph_stabilizer(&g, i);
        prop_assert!(packed.is_stabilized_by(&k_packed));
        prop_assert!(boolean.is_stabilized_by(&k_bool));
        let x_packed = stabilizer::PauliString::single_x(g.node_count(), i.index());
        let x_bool = reference::PauliString::single_x(g.node_count(), i.index());
        prop_assert_eq!(
            packed.is_stabilized_by(&x_packed),
            boolean.is_stabilized_by(&x_bool)
        );
    }

    #[test]
    fn blocked_stabilizer_check_matches_probe_reference(
        n in 2usize..70,
        ops in 10usize..120,
        trials in 1usize..6,
        seed in 0u64..2000,
    ) {
        // The membership pin, three ways: the destabilizer-projection
        // `is_stabilized_by`, the word-blocked elimination, and the
        // probe-based reference must agree on random stabilizer states
        // × (true members, sign-flipped members, random Paulis). Sizes
        // beyond 64 qubits exercise multi-word rows.
        let mut rng = Rng::seed_from_u64(seed);
        let mut t = stabilizer::Tableau::new(n);
        for _ in 0..ops {
            match rng.range(6) {
                0 => t.h(rng.range(n)),
                1 => t.s(rng.range(n)),
                2 => t.x_gate(rng.range(n)),
                3 => t.z_gate(rng.range(n)),
                4 => {
                    let a = rng.range(n);
                    t.cnot(a, (a + 1 + rng.range(n - 1)) % n);
                }
                _ => {
                    let a = rng.range(n);
                    t.cz(a, (a + 1 + rng.range(n - 1)) % n);
                }
            }
        }
        // −I as a PauliString: (X·Z)² = (−iY)² = −I.
        let minus_i_y = stabilizer::PauliString::single_x(n, 0)
            .mul(&stabilizer::PauliString::single_z(n, 0));
        let minus_one = minus_i_y.mul(&minus_i_y);
        let gens = t.stabilizer_generators();
        for _ in 0..trials {
            // A true group member: random subset product of generators.
            let mut member = stabilizer::PauliString::identity(n);
            for g in &gens {
                if rng.bernoulli(0.4) {
                    member = member.mul(g);
                }
            }
            prop_assert!(t.is_stabilized_by(&member));
            prop_assert!(t.is_stabilized_by_elimination(&member));
            prop_assert!(t.is_stabilized_by_reference(&member));
            // Its sign flip: never a member (−P and +P can't both be).
            let flipped = member.mul(&minus_one);
            prop_assert_eq!(
                t.is_stabilized_by(&flipped),
                t.is_stabilized_by_reference(&flipped)
            );
            prop_assert_eq!(
                t.is_stabilized_by_elimination(&flipped),
                t.is_stabilized_by_reference(&flipped)
            );
            prop_assert!(!t.is_stabilized_by(&flipped), "−I is never a stabilizer");
            // A random Pauli string: usually not a member.
            let mut random = stabilizer::PauliString::identity(n);
            for q in 0..n {
                if rng.bernoulli(0.2) {
                    random = random.mul(&stabilizer::PauliString::single_x(n, q));
                }
                if rng.bernoulli(0.2) {
                    random = random.mul(&stabilizer::PauliString::single_z(n, q));
                }
            }
            prop_assert_eq!(
                t.is_stabilized_by(&random),
                t.is_stabilized_by_reference(&random)
            );
            prop_assert_eq!(
                t.is_stabilized_by_elimination(&random),
                t.is_stabilized_by_reference(&random)
            );
        }
    }

    #[test]
    fn fused_circuit_matches_sequential_application(
        n in 1usize..7,
        gates in 0usize..80,
        seed in 0u64..2000,
    ) {
        // The gate-fusion pin: applying a random circuit through the
        // fusing path must match gate-by-gate application within 1e-12
        // per amplitude (fusion only reassociates the same f64
        // products). Heavy on single-qubit runs so fusion actually
        // composes matrices, with enough multi-qubit gates to exercise
        // the flush boundaries.
        use mbqc_circuit::Circuit;
        use mbqc_sim::{FusionWorkspace, StateVector};
        let mut rng = Rng::seed_from_u64(seed);
        let mut c = Circuit::new(n);
        for _ in 0..gates {
            let q = rng.range(n);
            match rng.range(16) {
                0 => c.h(q),
                1 => c.x(q),
                2 => c.y(q),
                3 => c.z(q),
                4 => c.s(q),
                5 => c.sdg(q),
                6 => c.t(q),
                7 => c.tdg(q),
                8 => c.rx(q, rng.next_f64() * 3.0),
                9 => c.ry(q, rng.next_f64() * 3.0),
                10 => c.rz(q, rng.next_f64() * 3.0),
                11 => c.phase(q, rng.next_f64() * 3.0),
                _ if n >= 2 => {
                    let b = (q + 1 + rng.range(n - 1)) % n;
                    match rng.range(4) {
                        0 => c.cz(q, b),
                        1 => c.cnot(q, b),
                        2 => c.swap(q, b),
                        _ => c.cphase(q, b, rng.next_f64() * 3.0),
                    }
                }
                _ => c.h(q),
            };
        }
        let mut fused = StateVector::plus_state(n);
        let mut ws = FusionWorkspace::new();
        fused.apply_circuit_with(&c, &mut ws);
        let mut sequential = StateVector::plus_state(n);
        sequential.apply_circuit_reference(&c);
        for (i, (a, b)) in fused
            .amplitudes()
            .iter()
            .zip(sequential.amplitudes())
            .enumerate()
        {
            prop_assert!(
                (*a - *b).is_near_zero(1e-12),
                "amplitude {} diverged: {} vs {}", i, a, b
            );
        }
    }
}
