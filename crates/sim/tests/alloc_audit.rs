//! Allocation audit for the fused statevector fast path: once a
//! [`FusionWorkspace`] is warm, applying a circuit must not allocate —
//! not per gate, not per sweep. A counting global allocator pins it.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

use mbqc_circuit::Circuit;
use mbqc_sim::{FusionWorkspace, StateVector};

struct CountingAlloc;

static ARMED: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.alloc(layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
        }
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn warm_fused_circuit_application_allocates_nothing() {
    let n = 10;
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q).t(q).s(q).rz(q, 0.37).h(q);
        if q + 1 < n {
            c.cz(q, q + 1);
        }
    }
    let mut sv = StateVector::plus_state(n);
    let mut ws = FusionWorkspace::new();
    // Warm-up: sizes the per-qubit pending slots once.
    sv.apply_circuit_with(&c, &mut ws);

    ARMED.store(true, Ordering::SeqCst);
    sv.apply_circuit_with(&c, &mut ws);
    ARMED.store(false, Ordering::SeqCst);

    let counted = ALLOCS.load(Ordering::SeqCst);
    assert_eq!(
        counted, 0,
        "fused fast path allocated {counted} times with a warm workspace"
    );
}
