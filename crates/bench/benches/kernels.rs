//! Criterion benchmarks of the DC-MBQC pipeline kernels.
//!
//! These measure the compiler's own cost (the Figure 10 axis), not the
//! compiled programs: transpilation, partitioning, grid mapping,
//! lifetime evaluation, and scheduling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mbqc_bench::runner::{RunConfig, SEED};
use mbqc_circuit::bench::{self, BenchmarkKind};
use mbqc_compiler::{CompilerConfig, GridMapper};
use mbqc_graph::generate;
use mbqc_hardware::ResourceStateKind;
use mbqc_partition::coarsen::{heavy_edge_matching, heavy_edge_matching_reference};
use mbqc_partition::{
    adaptive_partition, multilevel_kway, reference as partition_ref, AdaptiveConfig, KwayConfig,
};
use mbqc_pattern::transpile::transpile;
use mbqc_schedule::{bdir, default_priorities, list_schedule, BdirConfig};
use mbqc_sim::stabilizer::Tableau;
use mbqc_sim::{reference as sim_ref, StateVector, C64};
use mbqc_util::Rng;

fn bench_transpile(c: &mut Criterion) {
    let mut group = c.benchmark_group("transpile");
    for n in [16usize, 36] {
        let circuit = bench::qft(n);
        group.bench_with_input(BenchmarkId::new("qft", n), &circuit, |b, circ| {
            b.iter(|| transpile(circ));
        });
    }
    group.finish();
}

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition");
    let pattern = transpile(&bench::qft(36));
    let graph = pattern.graph().clone();
    group.bench_function("kway_qft36_k4", |b| {
        b.iter(|| multilevel_kway(&graph, &KwayConfig::new(4)));
    });
    // Pre-optimization adjacency-list path, kept for speedup tracking.
    group.bench_function("kway_qft36_k4_reference", |b| {
        b.iter(|| partition_ref::multilevel_kway(&graph, &KwayConfig::new(4)));
    });
    group.bench_function("adaptive_qft36_k4", |b| {
        b.iter(|| adaptive_partition(&graph, &AdaptiveConfig::new(4)));
    });
    // One heavy-edge matching round in isolation on a 360k-node grid
    // (above the adaptive threshold): the word-parallel bitset branch
    // vs. the preserved Option-probe scalar pass.
    let big = generate::grid_graph(600, 600);
    let csr = mbqc_graph::CsrGraph::from_graph(&big);
    let mut order: Vec<usize> = (0..big.node_count()).collect();
    Rng::seed_from_u64(11).shuffle(&mut order);
    group.bench_function("matching_grid600", |b| {
        let mut mate = Vec::new();
        let mut unmatched = Vec::new();
        b.iter(|| heavy_edge_matching(&csr, &order, &mut mate, &mut unmatched));
    });
    group.bench_function("matching_grid600_reference", |b| {
        let mut mate = Vec::new();
        b.iter(|| heavy_edge_matching_reference(&csr, &order, &mut mate));
    });
    group.finish();
}

fn bench_refine(c: &mut Criterion) {
    let mut group = c.benchmark_group("refine");
    let pattern = transpile(&bench::qft(36));
    let graph = pattern.graph().clone();
    let csr = mbqc_graph::CsrGraph::from_graph(&graph);
    let n = graph.node_count();
    let bound = graph.total_node_weight() / 4 + n as i64 / 8;
    let mut rng = Rng::seed_from_u64(3);
    let p0 = mbqc_partition::Partition::new((0..n).map(|_| rng.range(4)).collect(), 4);
    group.bench_function("incremental_qft36_k4", |b| {
        b.iter(|| {
            let mut p = p0.clone();
            let mut r = Rng::seed_from_u64(7);
            mbqc_partition::refine::refine_csr(&csr, &mut p, bound, 8, &mut r)
        });
    });
    group.bench_function("reference_qft36_k4", |b| {
        b.iter(|| {
            let mut p = p0.clone();
            let mut r = Rng::seed_from_u64(7);
            partition_ref::refine(&graph, &mut p, bound, 8, &mut r)
        });
    });
    group.finish();
}

fn bench_tableau(c: &mut Criterion) {
    let mut group = c.benchmark_group("tableau");
    let g = generate::grid_graph(24, 24);
    let n = g.node_count();
    let g32 = generate::grid_graph(32, 32);
    let packed_rows: Vec<_> = (0..g32.node_count())
        .step_by(3)
        .map(|i| {
            mbqc_sim::stabilizer::PauliString::graph_stabilizer(&g32, mbqc_graph::NodeId::new(i))
        })
        .collect();
    let bool_rows: Vec<_> = (0..g32.node_count())
        .step_by(3)
        .map(|i| sim_ref::PauliString::graph_stabilizer(&g32, mbqc_graph::NodeId::new(i)))
        .collect();
    group.bench_function("rowops_mul_grid32", |b| {
        b.iter(|| {
            let mut acc = packed_rows[0].clone();
            for p in &packed_rows[1..] {
                acc.mul_inplace(p);
            }
            acc
        });
    });
    group.bench_function("rowops_mul_grid32_reference", |b| {
        b.iter(|| {
            let mut acc = bool_rows[0].clone();
            for p in &bool_rows[1..] {
                acc = acc.mul(p);
            }
            acc
        });
    });
    group.bench_function("graph_state_grid24", |b| {
        b.iter(|| Tableau::graph_state(&g));
    });
    group.bench_function("graph_state_grid24_reference", |b| {
        b.iter(|| sim_ref::Tableau::graph_state(&g));
    });
    let packed = Tableau::graph_state(&g);
    group.bench_function("rowops_measure_grid24", |b| {
        b.iter(|| {
            let mut t = packed.clone();
            let mut rng = Rng::seed_from_u64(1);
            (0..n)
                .map(|q| t.measure_z(q, &mut rng))
                .filter(|&o| o)
                .count()
        });
    });
    let boolean = sim_ref::Tableau::graph_state(&g);
    group.bench_function("rowops_measure_grid24_reference", |b| {
        b.iter(|| {
            let mut t = boolean.clone();
            let mut rng = Rng::seed_from_u64(1);
            (0..n)
                .map(|q| t.measure_z(q, &mut rng))
                .filter(|&o| o)
                .count()
        });
    });
    // Stabilizer-membership checks: the word-blocked symplectic
    // elimination vs. the preserved single-bit-probe elimination.
    let probes: Vec<_> = {
        let gens = packed.stabilizer_generators();
        (0..4)
            .map(|k| {
                let mut acc = gens[k * 5].clone();
                for p in gens.iter().skip(k * 5 + 1).step_by(13) {
                    acc.mul_inplace(p);
                }
                acc
            })
            .collect()
    };
    group.bench_function("is_stabilized_by_grid24", |b| {
        b.iter(|| probes.iter().filter(|p| packed.is_stabilized_by(p)).count());
    });
    group.bench_function("is_stabilized_by_grid24_reference", |b| {
        b.iter(|| {
            probes
                .iter()
                .filter(|p| packed.is_stabilized_by_reference(p))
                .count()
        });
    });
    group.finish();
}

fn bench_statevector(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector");
    group.sample_size(10);
    let k = C64::new(std::f64::consts::FRAC_1_SQRT_2, 0.0);
    let h = [[k, k], [k, -k]];
    let s_gate = [[C64::ONE, C64::ZERO], [C64::ZERO, C64::I]];
    let sv = StateVector::plus_state(20);
    group.bench_function("apply_single_h20", |b| {
        b.iter(|| {
            let mut s = sv.clone();
            for q in 0..20 {
                s.apply_single(q, h);
            }
            s
        });
    });
    group.bench_function("apply_single_h20_reference", |b| {
        b.iter(|| {
            let mut s = sv.clone();
            for q in 0..20 {
                s.apply_single_reference(q, h);
            }
            s
        });
    });
    group.bench_function("apply_single_s20_diag", |b| {
        b.iter(|| {
            let mut s = sv.clone();
            for q in 0..20 {
                s.apply_single(q, s_gate);
            }
            s
        });
    });
    // Gate fusion on a single-qubit-dense circuit: runs of H/T/S/Rz
    // collapse into one composed 2×2 sweep each.
    let fused_circuit = {
        let n = 14;
        let mut circ = mbqc_circuit::Circuit::new(n);
        for _ in 0..4 {
            for q in 0..n {
                circ.h(q).t(q).s(q).rz(q, 0.37).h(q);
            }
            for q in 0..n - 1 {
                circ.cz(q, q + 1);
            }
        }
        circ
    };
    let sv14 = StateVector::plus_state(14);
    group.bench_function("fused_1q_runs14", |b| {
        let mut ws = mbqc_sim::FusionWorkspace::new();
        b.iter(|| {
            let mut s = sv14.clone();
            s.apply_circuit_with(&fused_circuit, &mut ws);
            s
        });
    });
    group.bench_function("fused_1q_runs14_reference", |b| {
        b.iter(|| {
            let mut s = sv14.clone();
            s.apply_circuit_reference(&fused_circuit);
            s
        });
    });
    group.finish();
}

fn bench_grid_mapper(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid_mapper");
    for n in [16usize, 36] {
        let pattern = transpile(&bench::qft(n));
        let order = pattern.flow_constraints().topological_sort().unwrap();
        let cfg = CompilerConfig::new(bench::grid_size_for(n), ResourceStateKind::FIVE_STAR);
        group.bench_with_input(BenchmarkId::new("qft", n), &n, |b, _| {
            b.iter(|| {
                GridMapper::new(cfg)
                    .compile(pattern.graph(), &order)
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_lifetime(c: &mut Criterion) {
    let pattern = transpile(&bench::qft(36));
    let order = pattern.flow_constraints().topological_sort().unwrap();
    let cfg = CompilerConfig::new(bench::grid_size_for(36), ResourceStateKind::FIVE_STAR);
    let compiled = GridMapper::new(cfg)
        .compile(pattern.graph(), &order)
        .unwrap();
    let deps = pattern.dependency_graph().real_time().clone();
    c.bench_function("lifetime_algorithm1_qft36", |b| {
        b.iter(|| compiled.lifetime(&deps));
    });
}

fn bench_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduling");
    // A real scheduling problem: QFT-16 on 4 QPUs.
    let outcome = mbqc_bench::runner::compare(BenchmarkKind::Qft, 16, &RunConfig::table3());
    let problem = outcome.distributed.problem().clone();
    group.bench_function("list_qft16", |b| {
        b.iter(|| list_schedule(&problem, &default_priorities(&problem), None));
    });
    let init = list_schedule(&problem, &default_priorities(&problem), None);
    group.bench_function("bdir_qft16", |b| {
        b.iter(|| bdir(&problem, &init, &BdirConfig::default()));
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    let circuit = BenchmarkKind::Qft.generate(16, SEED);
    let pattern = transpile(&circuit);
    let cfg = RunConfig::table3();
    group.bench_function("baseline_qft16", |b| {
        b.iter(|| cfg.compiler(16).compile_baseline_pattern(&pattern).unwrap());
    });
    group.bench_function("distributed_qft16", |b| {
        b.iter(|| cfg.compiler(16).compile_pattern(&pattern).unwrap());
    });
    group.finish();
}

fn bench_service(c: &mut Criterion) {
    use dc_mbqc::DcMbqcConfig;
    use mbqc_hardware::{DistributedHardware, ResourceStateKind};
    use mbqc_service::{CompileService, ExecutionEngine, Priority, ServiceConfig};

    let mut group = c.benchmark_group("service");
    group.sample_size(10);
    let patterns: Vec<_> = [10usize, 12, 11, 13]
        .iter()
        .map(|&n| transpile(&bench::qft(n)))
        .collect();
    let hw = DistributedHardware::builder()
        .num_qpus(4)
        .grid_width(bench::grid_size_for(13))
        .resource_state(ResourceStateKind::FIVE_STAR)
        .kmax(4)
        .build();
    let config = DcMbqcConfig::new(hw);
    let run = |engine: ExecutionEngine| {
        let service = CompileService::new(ServiceConfig {
            workers: 0,
            engine,
            ..ServiceConfig::default()
        })
        .expect("service starts");
        let ids: Vec<_> = patterns
            .iter()
            .enumerate()
            .map(|(i, p)| {
                service.submit_with_priority(
                    p.clone(),
                    config.clone(),
                    Priority::ALL[i % Priority::ALL.len()],
                )
            })
            .collect();
        for id in ids {
            service.wait(id).expect("service compiles");
        }
    };
    group.bench_function("pipelined_batch_executor", |b| {
        b.iter(|| run(ExecutionEngine::StageGraph));
    });
    // The preserved PR 3 whole-job shard loop, kept for speedup
    // tracking against the stage-graph executor.
    group.bench_function("pipelined_batch_jobloop_reference", |b| {
        b.iter(|| run(ExecutionEngine::JobLoop));
    });
    // The same workload with ~30% abandonment riding along: cancelled
    // and expired jobs must cost bookkeeping only (tracked as
    // `end_to_end/lifecycle_churn` in BENCH_kernels.json).
    let victims: Vec<_> = [15usize, 16]
        .iter()
        .map(|&n| transpile(&bench::qft(n)))
        .collect();
    group.bench_function("lifecycle_churn", |b| {
        b.iter(|| {
            let service = CompileService::new(ServiceConfig {
                workers: 0,
                ..ServiceConfig::default()
            })
            .expect("service starts");
            let ids = service.submit_many(&patterns, &config);
            let doomed: Vec<_> = victims
                .iter()
                .map(|p| {
                    let h = service.submit_with(
                        p.clone(),
                        config.clone(),
                        mbqc_service::JobOptions::default(),
                    );
                    h.cancel();
                    h.id()
                })
                .collect();
            let expired = service.submit_with_deadline(
                victims[0].clone(),
                config.clone(),
                std::time::Duration::ZERO,
            );
            for id in ids {
                service.wait(id).expect("service compiles");
            }
            for id in doomed {
                assert!(service.wait(id).is_err());
            }
            assert!(expired.wait().is_err());
        });
    });
    // The same workload with a retry budget on every job: in a build
    // without `fault-inject` no fault ever fires, so this measures the
    // cost of carrying the recovery machinery (tracked as
    // `end_to_end/fault_churn` in BENCH_kernels.json).
    let retry =
        mbqc_service::RetryPolicy::attempts(4).with_backoff(std::time::Duration::from_millis(1));
    group.bench_function("fault_churn", |b| {
        b.iter(|| {
            let service = CompileService::new(ServiceConfig {
                workers: 0,
                ..ServiceConfig::default()
            })
            .expect("service starts");
            let handles: Vec<_> = patterns
                .iter()
                .map(|p| {
                    service.submit_with(
                        p.clone(),
                        config.clone(),
                        mbqc_service::JobOptions {
                            retry,
                            ..mbqc_service::JobOptions::default()
                        },
                    )
                })
                .collect();
            for h in handles {
                h.wait().expect("service compiles");
            }
        });
    });
    // The same workload with full telemetry armed — flight recorder,
    // a live service-wide subscriber on a drainer thread, and a
    // Chrome-trace export of the capture (tracked as
    // `end_to_end/telemetry_churn` in BENCH_kernels.json; the dormant
    // side of that pair is `pipelined_batch_executor` shaped work with
    // telemetry configured off, i.e. one relaxed atomic per emit site).
    group.bench_function("telemetry_churn", |b| {
        b.iter(|| {
            let service = CompileService::new(ServiceConfig {
                workers: 0,
                telemetry: mbqc_service::TelemetryConfig {
                    flight_recorder: 256,
                    ..mbqc_service::TelemetryConfig::default()
                },
                ..ServiceConfig::default()
            })
            .expect("service starts");
            let stream = service.subscribe_with_capacity(4096);
            let drainer = std::thread::spawn(move || {
                let mut events = Vec::new();
                while let Some(ev) = stream.recv() {
                    events.push(ev);
                }
                events
            });
            for id in service.submit_many(&patterns, &config) {
                service.wait(id).expect("service compiles");
            }
            drop(service);
            let events = drainer.join().expect("drainer exits");
            std::hint::black_box(mbqc_service::chrome_trace_json(&events).len());
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_transpile,
    bench_partition,
    bench_refine,
    bench_tableau,
    bench_statevector,
    bench_grid_mapper,
    bench_lifetime,
    bench_scheduling,
    bench_end_to_end,
    bench_service
);
criterion_main!(benches);
