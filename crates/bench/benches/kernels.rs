//! Criterion benchmarks of the DC-MBQC pipeline kernels.
//!
//! These measure the compiler's own cost (the Figure 10 axis), not the
//! compiled programs: transpilation, partitioning, grid mapping,
//! lifetime evaluation, and scheduling.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use mbqc_bench::runner::{RunConfig, SEED};
use mbqc_circuit::bench::{self, BenchmarkKind};
use mbqc_compiler::{CompilerConfig, GridMapper};
use mbqc_hardware::ResourceStateKind;
use mbqc_partition::{adaptive_partition, multilevel_kway, AdaptiveConfig, KwayConfig};
use mbqc_pattern::transpile::transpile;
use mbqc_schedule::{bdir, default_priorities, list_schedule, BdirConfig};

fn bench_transpile(c: &mut Criterion) {
    let mut group = c.benchmark_group("transpile");
    for n in [16usize, 36] {
        let circuit = bench::qft(n);
        group.bench_with_input(BenchmarkId::new("qft", n), &circuit, |b, circ| {
            b.iter(|| transpile(circ));
        });
    }
    group.finish();
}

fn bench_partition(c: &mut Criterion) {
    let mut group = c.benchmark_group("partition");
    let pattern = transpile(&bench::qft(36));
    let graph = pattern.graph().clone();
    group.bench_function("kway_qft36_k4", |b| {
        b.iter(|| multilevel_kway(&graph, &KwayConfig::new(4)));
    });
    group.bench_function("adaptive_qft36_k4", |b| {
        b.iter(|| adaptive_partition(&graph, &AdaptiveConfig::new(4)));
    });
    group.finish();
}

fn bench_grid_mapper(c: &mut Criterion) {
    let mut group = c.benchmark_group("grid_mapper");
    for n in [16usize, 36] {
        let pattern = transpile(&bench::qft(n));
        let order = pattern.flow_constraints().topological_sort().unwrap();
        let cfg = CompilerConfig::new(bench::grid_size_for(n), ResourceStateKind::FIVE_STAR);
        group.bench_with_input(BenchmarkId::new("qft", n), &n, |b, _| {
            b.iter(|| {
                GridMapper::new(cfg)
                    .compile(pattern.graph(), &order)
                    .unwrap()
            });
        });
    }
    group.finish();
}

fn bench_lifetime(c: &mut Criterion) {
    let pattern = transpile(&bench::qft(36));
    let order = pattern.flow_constraints().topological_sort().unwrap();
    let cfg = CompilerConfig::new(bench::grid_size_for(36), ResourceStateKind::FIVE_STAR);
    let compiled = GridMapper::new(cfg)
        .compile(pattern.graph(), &order)
        .unwrap();
    let deps = pattern.dependency_graph().real_time().clone();
    c.bench_function("lifetime_algorithm1_qft36", |b| {
        b.iter(|| compiled.lifetime(&deps));
    });
}

fn bench_scheduling(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduling");
    // A real scheduling problem: QFT-16 on 4 QPUs.
    let outcome = mbqc_bench::runner::compare(BenchmarkKind::Qft, 16, &RunConfig::table3());
    let problem = outcome.distributed.problem().clone();
    group.bench_function("list_qft16", |b| {
        b.iter(|| list_schedule(&problem, &default_priorities(&problem), None));
    });
    let init = list_schedule(&problem, &default_priorities(&problem), None);
    group.bench_function("bdir_qft16", |b| {
        b.iter(|| bdir(&problem, &init, &BdirConfig::default()));
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let mut group = c.benchmark_group("end_to_end");
    group.sample_size(10);
    let circuit = BenchmarkKind::Qft.generate(16, SEED);
    let pattern = transpile(&circuit);
    let cfg = RunConfig::table3();
    group.bench_function("baseline_qft16", |b| {
        b.iter(|| cfg.compiler(16).compile_baseline_pattern(&pattern).unwrap());
    });
    group.bench_function("distributed_qft16", |b| {
        b.iter(|| cfg.compiler(16).compile_pattern(&pattern).unwrap());
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_transpile,
    bench_partition,
    bench_grid_mapper,
    bench_lifetime,
    bench_scheduling,
    bench_end_to_end
);
criterion_main!(benches);
