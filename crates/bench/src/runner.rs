//! Shared compile-and-compare machinery.

use dc_mbqc::{
    BaselineResult, ComparisonReport, DcMbqcCompiler, DcMbqcConfig, DistributedSchedule,
};
use mbqc_circuit::bench::{self, BenchmarkKind};
use mbqc_hardware::{DistributedHardware, ResourceStateKind};

/// The seed every experiment uses (instances and heuristics are fully
/// deterministic given it).
pub const SEED: u64 = 2026;

/// One experiment's hardware/compiler knobs.
#[derive(Debug, Clone, Copy)]
pub struct RunConfig {
    /// Number of QPUs.
    pub qpus: usize,
    /// Resource-state kind.
    pub rsg: ResourceStateKind,
    /// Connection capacity.
    pub kmax: usize,
    /// Maximum imbalance factor for adaptive partitioning.
    pub alpha_max: f64,
    /// Enable the BDIR pass.
    pub bdir: bool,
    /// OneAdapt-style dynamic refresh bound.
    pub refresh: Option<usize>,
    /// Reserve grid perimeter for communication (Table V protocol).
    pub boundary: bool,
}

impl RunConfig {
    /// Paper defaults: 4 QPUs, 5-star, `K_max = 4`, `α_max = 1.5`,
    /// BDIR on.
    #[must_use]
    pub fn table3() -> Self {
        Self {
            qpus: 4,
            rsg: ResourceStateKind::FIVE_STAR,
            kmax: 4,
            alpha_max: 1.5,
            bdir: true,
            refresh: None,
            boundary: false,
        }
    }

    /// Table IV setting: 8 QPUs and 4-ring RSGs.
    #[must_use]
    pub fn table4() -> Self {
        Self {
            qpus: 8,
            rsg: ResourceStateKind::FOUR_RING,
            ..Self::table3()
        }
    }

    /// Builds the compiler for a program of `n` qubits.
    #[must_use]
    pub fn compiler(&self, n: usize) -> DcMbqcCompiler {
        let hw = DistributedHardware::builder()
            .num_qpus(self.qpus)
            .grid_width(bench::grid_size_for(n))
            .resource_state(self.rsg)
            .kmax(self.kmax)
            .build();
        let mut cfg = DcMbqcConfig::new(hw)
            .with_seed(SEED)
            .with_alpha_max(self.alpha_max)
            .with_boundary_reservation(self.boundary);
        if !self.bdir {
            cfg = cfg.without_bdir();
        }
        if let Some(d) = self.refresh {
            cfg = cfg.with_refresh(d);
        }
        DcMbqcCompiler::new(cfg)
    }
}

/// Result of one baseline-vs-distributed run.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// The comparison row.
    pub report: ComparisonReport,
    /// Full distributed result.
    pub distributed: DistributedSchedule,
    /// Full baseline result.
    pub baseline: BaselineResult,
}

/// Compiles `kind`-`n` both monolithically and distributed under `cfg`.
///
/// # Panics
///
/// Panics if either compilation fails (grids sized by
/// [`bench::grid_size_for`] always fit the paper's programs).
#[must_use]
pub fn compare(kind: BenchmarkKind, n: usize, cfg: &RunConfig) -> RunOutcome {
    let circuit = kind.generate(n, SEED);
    let compiler = cfg.compiler(n);
    let pattern = mbqc_pattern::transpile::transpile(&circuit);
    let baseline = compiler
        .compile_baseline_pattern(&pattern)
        .unwrap_or_else(|e| panic!("baseline {kind}-{n}: {e}"));
    let distributed = compiler
        .compile_pattern(&pattern)
        .unwrap_or_else(|e| panic!("distributed {kind}-{n}: {e}"));
    let report = ComparisonReport::new(format!("{kind}-{n}"), &baseline, &distributed);
    RunOutcome {
        report,
        distributed,
        baseline,
    }
}

/// Compares two *distributed-style* runs where the reference is a
/// monolithic OneAdapt (refresh-enabled single QPU) — the Table V
/// protocol. Returns `(reference, ours)` outcomes.
#[must_use]
pub fn compare_oneadapt(
    kind: BenchmarkKind,
    n: usize,
    qpus: usize,
    refresh: usize,
) -> (BaselineResult, DistributedSchedule) {
    let circuit = kind.generate(n, SEED);
    let pattern = mbqc_pattern::transpile::transpile(&circuit);
    // Reference: monolithic OneAdapt — single QPU, dynamic refresh.
    let reference_cfg = RunConfig {
        qpus: 1,
        refresh: Some(refresh),
        ..RunConfig::table3()
    };
    let reference = reference_cfg
        .compiler(n)
        .compile_baseline_pattern(&pattern)
        .unwrap_or_else(|e| panic!("OneAdapt {kind}-{n}: {e}"));
    // Ours: distributed, refresh on each QPU, boundary reservation for
    // the communication interfaces.
    let ours_cfg = RunConfig {
        qpus,
        refresh: Some(refresh),
        boundary: true,
        ..RunConfig::table3()
    };
    let ours = ours_cfg
        .compiler(n)
        .compile_pattern(&pattern)
        .unwrap_or_else(|e| panic!("DC-MBQC {kind}-{n}: {e}"));
    (reference, ours)
}
