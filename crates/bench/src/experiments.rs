//! Generators for every table and figure of the paper's evaluation.
//!
//! Each function returns a [`TextTable`] with the same rows/series the
//! paper reports. Absolute values differ from the paper (our substrate
//! is a reimplemented compiler stack, not the authors' testbed); the
//! *shapes* — who wins, by what factor, where the elbows fall — are the
//! reproduction target. See `EXPERIMENTS.md`.

use std::time::Instant;

use mbqc_circuit::bench::{self, BenchmarkKind};
use mbqc_circuit::decompose;
use mbqc_hardware::{loss, survey, ResourceStateKind};
use mbqc_pattern::transpile::transpile;
use mbqc_util::table::{fmt_f64, fmt_factor};
use mbqc_util::TextTable;

pub use crate::kernels::{bench_kernels, bench_kernels_check};

use crate::runner::{compare, compare_oneadapt, RunConfig, SEED};
use crate::Scale;

/// Dynamic-refresh bound used in the Table V (OneAdapt) comparison.
/// The paper's OneAdapt lifetimes sit in the 9–20 cycle band; our
/// compiled programs run at roughly half the paper's layer counts, so a
/// bound of 8 lands in the same regime.
pub const ONEADAPT_REFRESH: usize = 8;

/// Table I: survey of distributed entangling generation platforms.
#[must_use]
pub fn table1() -> TextTable {
    let mut t = TextTable::new(vec!["Platform", "Fidelity", "Clock speed", "Exp."]);
    t.title("Table I — survey of distributed entangling generation (without distillation)");
    for e in survey::table1_entries() {
        t.row(vec![
            e.platform.to_string(),
            format!(
                "{:.2}%{}",
                e.fidelity * 100.0,
                if e.post_selected { "*" } else { "" }
            ),
            e.clock_speed.to_string(),
            if e.experimental { "yes" } else { "no" }.to_string(),
        ]);
    }
    t
}

/// Figure 1: photon loss probability vs. storage cycles for the three
/// resource-state clock rates (100/10/1 ns per cycle).
#[must_use]
pub fn figure1() -> TextTable {
    let mut t = TextTable::new(vec!["Cycles", "loss @100ns", "loss @10ns", "loss @1ns"]);
    t.title("Figure 1 — photon loss vs. storage duration (0.2 dB/km, 2/3 c)");
    for i in 1..=10 {
        let cycles = 500 * i;
        let row: Vec<String> = std::iter::once(cycles.to_string())
            .chain(
                loss::FIGURE1_CLOCK_RATES_NS
                    .iter()
                    .map(|&ns| fmt_f64(loss::loss_probability(cycles, ns), 4)),
            )
            .collect();
        t.row(row);
    }
    t
}

/// Table II: benchmark program statistics. `#2Q gates` counts logical
/// two-qubit interactions (Toffolis decomposed); `#Fusion (graph)` is
/// the computation-graph edge count (OneQ's fusion abstraction);
/// `#Fusion (compiled)` additionally counts the routing and wire
/// fusions our baseline compilation spends.
#[must_use]
pub fn table2(scale: Scale) -> TextTable {
    let mut t = TextTable::new(vec![
        "Program",
        "#Qubits",
        "Grid size",
        "#2Q gates",
        "#Fusion (graph)",
        "#Fusion (compiled)",
    ]);
    t.title("Table II — benchmark programs");
    for kind in BenchmarkKind::all() {
        for &n in scale.limit(kind.paper_sizes()) {
            let circuit = kind.generate(n, SEED);
            let two_q = decompose::decompose_three_qubit(&circuit).two_qubit_gate_count();
            let pattern = transpile(&circuit);
            let stats = pattern.stats();
            let compiled = RunConfig::table3()
                .compiler(n)
                .compile_baseline_pattern(&pattern)
                .expect("baseline compiles");
            let w = bench::grid_size_for(n);
            t.row(vec![
                format!("{kind}-{n}"),
                n.to_string(),
                format!("{w}x{w}"),
                two_q.to_string(),
                stats.edges.to_string(),
                compiled.compiled().fusion_count.to_string(),
            ]);
        }
    }
    t
}

fn comparison_table(title: &str, cfg: &RunConfig, scale: Scale) -> TextTable {
    let mut t = TextTable::new(vec![
        "Program-#Qubits",
        "Baseline Exec.",
        "Our Exec.",
        "Improv.",
        "Baseline Lifetime",
        "Our Lifetime",
        "Improv.",
    ]);
    t.title(title);
    for kind in BenchmarkKind::all() {
        for &n in scale.limit(kind.paper_sizes()) {
            let outcome = compare(kind, n, cfg);
            t.row(outcome.report.table_row());
        }
    }
    t
}

/// Table III: DC-MBQC vs. the OneQ-style baseline with 4 QPUs and
/// 5-star resource states.
#[must_use]
pub fn table3(scale: Scale) -> TextTable {
    comparison_table(
        "Table III — DC-MBQC vs baseline, 4 QPUs, 5-star RSG",
        &RunConfig::table3(),
        scale,
    )
}

/// Table IV: DC-MBQC vs. the OneQ-style baseline with 8 QPUs and 4-ring
/// resource states (the paper's Table IV header says "4-star"; its
/// Figure 7 uses 4-ring — we follow the ring, the only 4-photon kind in
/// Figure 4(a)).
#[must_use]
pub fn table4(scale: Scale) -> TextTable {
    comparison_table(
        "Table IV — DC-MBQC vs baseline, 8 QPUs, 4-ring RSG",
        &RunConfig::table4(),
        scale,
    )
}

/// Table V: DC-MBQC vs. a OneAdapt-style monolithic compiler (dynamic
/// refresh on both sides; boundary resource reservation models the
/// communication interfaces on the distributed side).
#[must_use]
pub fn table5(scale: Scale) -> TextTable {
    let mut t = TextTable::new(vec![
        "#QPUs",
        "Program-#Qubits",
        "OneAdapt Exec.",
        "Our Exec.",
        "Improv.",
        "OneAdapt Lifetime",
        "Our Lifetime",
        "Improv.",
    ]);
    t.title("Table V — DC-MBQC vs OneAdapt (dynamic refresh both sides)");
    let programs: &[(BenchmarkKind, usize)] = &[
        (BenchmarkKind::Vqe, 64),
        (BenchmarkKind::Vqe, 100),
        (BenchmarkKind::Qaoa, 64),
        (BenchmarkKind::Qaoa, 121),
        (BenchmarkKind::Qft, 36),
        (BenchmarkKind::Qft, 64),
    ];
    let programs: &[(BenchmarkKind, usize)] = match scale {
        Scale::Quick => &programs[4..],
        Scale::Full => programs,
    };
    for &qpus in &[4usize, 8] {
        for &(kind, n) in programs {
            let (reference, ours) = compare_oneadapt(kind, n, qpus, ONEADAPT_REFRESH);
            let (re, oe) = (reference.execution_time(), ours.execution_time());
            let (rl, ol) = (
                reference.required_photon_lifetime(),
                ours.required_photon_lifetime(),
            );
            t.row(vec![
                qpus.to_string(),
                format!("{kind}-{n}"),
                re.to_string(),
                oe.to_string(),
                fmt_factor(re as f64 / oe.max(1) as f64),
                rl.to_string(),
                ol.to_string(),
                fmt_factor(rl as f64 / ol.max(1) as f64),
            ]);
        }
    }
    t
}

/// Table VI: BDIR vs. plain list scheduling (full framework with only
/// the scheduling component swapped), QFT programs, 4 QPUs.
#[must_use]
pub fn table6(scale: Scale) -> TextTable {
    let mut t = TextTable::new(vec![
        "Program-#Qubits",
        "Baseline Lifetime",
        "BDIR Lifetime",
        "Improv.",
    ]);
    t.title("Table VI — effectiveness of BDIR (vs list scheduling)");
    let sizes: &[usize] = match scale {
        Scale::Quick => &[16, 25],
        Scale::Full => &[16, 25, 36, 49, 64],
    };
    for &n in sizes {
        let core = RunConfig {
            bdir: false,
            ..RunConfig::table3()
        };
        let base = compare(BenchmarkKind::Qft, n, &core);
        let ours = compare(BenchmarkKind::Qft, n, &RunConfig::table3());
        let (bl, ol) = (
            base.distributed.required_photon_lifetime(),
            ours.distributed.required_photon_lifetime(),
        );
        let pct = if bl == 0 {
            0.0
        } else {
            100.0 * (bl as f64 - ol as f64) / bl as f64
        };
        t.row(vec![
            format!("QFT-{n}"),
            bl.to_string(),
            ol.to_string(),
            format!("{pct:.2}%"),
        ]);
    }
    t
}

/// Figure 7: improvement factors of DC-MBQC over the baseline on the
/// 36-qubit programs with 4 QPUs, across the four resource-state kinds
/// (`f ≡ τ_OneQ / τ_DC-MBQC`, same RSG on both sides).
#[must_use]
pub fn figure7(scale: Scale) -> TextTable {
    let mut t = TextTable::new(vec!["Program", "RSG", "Exec. Improv.", "Lifetime Improv."]);
    t.title("Figure 7 — resource-state comparison (36 qubits, 4 QPUs)");
    let kinds: &[BenchmarkKind] = match scale {
        Scale::Quick => &[BenchmarkKind::Qaoa, BenchmarkKind::Qft],
        Scale::Full => &[
            BenchmarkKind::Qaoa,
            BenchmarkKind::Vqe,
            BenchmarkKind::Qft,
            BenchmarkKind::Rca,
        ],
    };
    for &kind in kinds {
        for rsg in ResourceStateKind::paper_kinds() {
            let cfg = RunConfig {
                rsg,
                ..RunConfig::table3()
            };
            let outcome = compare(kind, 36, &cfg);
            t.row(vec![
                format!("{kind}-36"),
                rsg.to_string(),
                fmt_factor(outcome.report.exec_factor()),
                fmt_factor(outcome.report.lifetime_factor()),
            ]);
        }
    }
    t
}

/// Figure 8: sensitivity to the connection capacity `K_max`
/// (QFT-25 and QFT-36, 4 QPUs).
#[must_use]
pub fn figure8(scale: Scale) -> TextTable {
    let mut t = TextTable::new(vec![
        "Kmax",
        "Exec. Improv. (25q)",
        "Lifetime Improv. (25q)",
        "Exec. Improv. (36q)",
        "Lifetime Improv. (36q)",
    ]);
    t.title("Figure 8 — impact of connection capacity K_max (QFT, 4 QPUs)");
    let kmaxes: &[usize] = match scale {
        Scale::Quick => &[1, 4, 16],
        Scale::Full => &[1, 2, 3, 4, 6, 8, 12, 16],
    };
    for &kmax in kmaxes {
        let mut row = vec![kmax.to_string()];
        for n in [25usize, 36] {
            let cfg = RunConfig {
                kmax,
                ..RunConfig::table3()
            };
            let outcome = compare(BenchmarkKind::Qft, n, &cfg);
            row.push(fmt_factor(outcome.report.exec_factor()));
            row.push(fmt_factor(outcome.report.lifetime_factor()));
        }
        t.row(row);
    }
    t
}

/// Figure 9: robustness against the maximum imbalance factor `α_max`
/// (QFT-36, 4 QPUs). Also reports the partition cut and modularity (the
/// paper observes a constant cut of 60 and modularity 0.74 across the
/// whole sweep).
#[must_use]
pub fn figure9(scale: Scale) -> TextTable {
    let mut t = TextTable::new(vec![
        "alpha_max",
        "Exec. Improv.",
        "Lifetime Improv.",
        "Cut",
        "Modularity",
    ]);
    t.title("Figure 9 — robustness of maximum imbalance factor (QFT-36, 4 QPUs)");
    let alphas: &[f64] = match scale {
        Scale::Quick => &[1.05, 1.5, 4.0],
        Scale::Full => &[1.05, 1.2, 1.5, 2.0, 2.5, 3.0, 3.5, 4.0],
    };
    for &alpha_max in alphas {
        let cfg = RunConfig {
            alpha_max,
            ..RunConfig::table3()
        };
        let outcome = compare(BenchmarkKind::Qft, 36, &cfg);
        t.row(vec![
            fmt_f64(alpha_max, 2),
            fmt_factor(outcome.report.exec_factor()),
            fmt_factor(outcome.report.lifetime_factor()),
            outcome.distributed.cut_edges().to_string(),
            fmt_f64(outcome.distributed.modularity(), 3),
        ]);
    }
    t
}

/// Figure 10: compilation-runtime scaling on QFT programs — monolithic
/// baseline vs. DC-MBQC (Core) vs. DC-MBQC (Core + BDIR), 8 QPUs,
/// excluding the common transpilation preprocessing.
#[must_use]
pub fn figure10(scale: Scale) -> TextTable {
    let mut t = TextTable::new(vec![
        "#Qubits",
        "Baseline (OneQ-style) [ms]",
        "DC-MBQC (Core) [ms]",
        "DC-MBQC (Core+BDIR) [ms]",
    ]);
    t.title("Figure 10 — compilation runtime scaling (QFT, 8 QPUs)");
    let sizes: &[usize] = match scale {
        Scale::Quick => &[16, 25],
        Scale::Full => &[16, 25, 36, 49, 64, 81, 100],
    };
    for &n in sizes {
        let circuit = bench::qft(n);
        let pattern = transpile(&circuit); // common preprocessing, untimed
        let base_cfg = RunConfig::table4();
        let core_cfg = RunConfig {
            bdir: false,
            ..RunConfig::table4()
        };

        let t0 = Instant::now();
        let _ = base_cfg
            .compiler(n)
            .compile_baseline_pattern(&pattern)
            .expect("baseline compiles");
        let base_ms = t0.elapsed().as_secs_f64() * 1e3;

        let t1 = Instant::now();
        let _ = core_cfg
            .compiler(n)
            .compile_pattern(&pattern)
            .expect("core compiles");
        let core_ms = t1.elapsed().as_secs_f64() * 1e3;

        let t2 = Instant::now();
        let _ = base_cfg
            .compiler(n)
            .compile_pattern(&pattern)
            .expect("core+bdir compiles");
        let bdir_ms = t2.elapsed().as_secs_f64() * 1e3;

        t.row(vec![
            n.to_string(),
            fmt_f64(base_ms, 1),
            fmt_f64(core_ms, 1),
            fmt_f64(bdir_ms, 1),
        ]);
    }
    t
}
