//! Kernel speedup measurement: optimized hot paths vs. their preserved
//! pre-optimization reference implementations.
//!
//! `repro bench-kernels` runs each kernel pair, prints a comparison
//! table, and writes `BENCH_kernels.json` so speedups are *recorded and
//! tracked across PRs* rather than asserted in tests (timing assertions
//! flake; JSON diffs don't).

use std::sync::Arc;
use std::time::Instant;

use dc_mbqc::{DcMbqcCompiler, DcMbqcConfig, DistributedSchedule, ScheduledView};
use mbqc_circuit::{bench, Circuit};
use mbqc_graph::{generate, CsrGraph, NodeId};
use mbqc_hardware::{DistributedHardware, ResourceStateKind};
use mbqc_net::{Client, Server, WireJobOptions};
use mbqc_partition::coarsen::{heavy_edge_matching, heavy_edge_matching_reference};
use mbqc_partition::refine::refine_csr;
use mbqc_partition::{reference as partition_ref, KwayConfig, Partition};
use mbqc_pattern::transpile::transpile;
use mbqc_service::{
    ArtifactKey, ArtifactStore, CompileService, ExecutionEngine, PipelineStage, Priority,
    ServiceConfig, StoreConfig,
};
use mbqc_sim::stabilizer::{PauliString, Tableau};
use mbqc_sim::{reference as sim_ref, FusionWorkspace, StateVector, C64};
use mbqc_util::table::fmt_f64;
use mbqc_util::{Rng, TextTable};

/// One measured kernel pair.
#[derive(Debug, Clone)]
pub struct KernelResult {
    /// Kernel identifier (stable across PRs; used as the JSON key).
    pub name: &'static str,
    /// Minimum nanoseconds per run, pre-optimization implementation.
    pub baseline_ns: f64,
    /// Minimum nanoseconds per run, current implementation.
    pub optimized_ns: f64,
}

impl KernelResult {
    /// Baseline over optimized time.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.baseline_ns / self.optimized_ns
    }
}

/// Interleaved minimum wall-clock nanoseconds of a kernel pair.
///
/// Rounds alternate one run of `base` with one run of `opt`, so both
/// sides sample the same interference windows — on a contended
/// single-core host, timing dilations arrive in bursts, and measuring
/// the sides back-to-back would charge a burst entirely to whichever
/// side ran inside it. Each side reports its *minimum* (the
/// least-interfered run), the robust location estimator for a
/// deterministic kernel whose only timing variance is added noise.
/// Rounds continue past `reps` until each side has accumulated ~20 ms
/// of samples (capped at 64×`reps`) so microsecond-scale kernels get
/// enough draws for the minimum to converge.
fn measure_pair<A: FnMut(), B: FnMut()>(mut base: A, mut opt: B, reps: usize) -> (f64, f64) {
    const TARGET_NS: f64 = 20_000_000.0;
    let (mut min_b, mut min_o) = (f64::INFINITY, f64::INFINITY);
    let (mut tot_b, mut tot_o) = (0.0f64, 0.0f64);
    let mut rounds = 0usize;
    while rounds < reps || (tot_b.min(tot_o) < TARGET_NS && rounds < reps * 64) {
        let t = Instant::now();
        base();
        let b = t.elapsed().as_nanos() as f64;
        let t = Instant::now();
        opt();
        let o = t.elapsed().as_nanos() as f64;
        min_b = min_b.min(b);
        min_o = min_o.min(o);
        tot_b += b;
        tot_o += o;
        rounds += 1;
    }
    (min_b, min_o)
}

/// Measures every tracked kernel pair. `reps` is the minimum number of
/// interleaved rounds per kernel (the per-side minimum is reported;
/// see [`measure_pair`]).
#[must_use]
pub fn measure_kernels(reps: usize) -> Vec<KernelResult> {
    let mut results = Vec::new();

    // Partition: multilevel k-way on the QFT-36 computation graph, the
    // Figure 10 partitioning workload.
    let pattern = transpile(&bench::qft(36));
    let graph = pattern.graph().clone();
    {
        let cfg = KwayConfig::new(4);
        let (baseline_ns, optimized_ns) = measure_pair(
            || {
                std::hint::black_box(partition_ref::multilevel_kway(&graph, &cfg));
            },
            || {
                std::hint::black_box(mbqc_partition::multilevel_kway(&graph, &cfg));
            },
            reps,
        );
        results.push(KernelResult {
            name: "partition/kway_qft36_k4",
            baseline_ns,
            optimized_ns,
        });
    }

    // Refinement in isolation: the incremental-gain hot path against the
    // recompute-per-visit reference, from the same random partition.
    {
        let csr = CsrGraph::from_graph(&graph);
        let n = graph.node_count();
        let bound = graph.total_node_weight() / 4 + n as i64 / 8;
        let mut rng = Rng::seed_from_u64(3);
        let p0 = Partition::new((0..n).map(|_| rng.range(4)).collect(), 4);
        let (baseline_ns, optimized_ns) = measure_pair(
            || {
                let mut p = p0.clone();
                let mut r = Rng::seed_from_u64(7);
                std::hint::black_box(partition_ref::refine(&graph, &mut p, bound, 8, &mut r));
            },
            || {
                let mut p = p0.clone();
                let mut r = Rng::seed_from_u64(7);
                std::hint::black_box(refine_csr(&csr, &mut p, bound, 8, &mut r));
            },
            reps,
        );
        results.push(KernelResult {
            name: "partition/refine_qft36_k4",
            baseline_ns,
            optimized_ns,
        });
    }

    // Matching in isolation: one heavy-edge matching round over a
    // 600×600 grid (360k nodes — above the adaptive threshold, so the
    // public entry takes the word-parallel bitset branch) vs. the
    // Option-probe scalar reference, identical visit order and
    // identical mates. Small levels (like QFT-36's) take the scalar
    // branch, where the two sides are the same algorithm.
    {
        let big = generate::grid_graph(600, 600);
        let csr = CsrGraph::from_graph(&big);
        let n = big.node_count();
        let mut order: Vec<usize> = (0..n).collect();
        let mut rng = Rng::seed_from_u64(11);
        rng.shuffle(&mut order);
        let mut mate_ref: Vec<Option<NodeId>> = Vec::new();
        let mut mate_opt: Vec<Option<NodeId>> = Vec::new();
        let mut unmatched: Vec<u64> = Vec::new();
        let (baseline_ns, optimized_ns) = measure_pair(
            || {
                std::hint::black_box(heavy_edge_matching_reference(&csr, &order, &mut mate_ref));
            },
            || {
                std::hint::black_box(heavy_edge_matching(
                    &csr,
                    &order,
                    &mut mate_opt,
                    &mut unmatched,
                ));
            },
            reps,
        );
        results.push(KernelResult {
            name: "partition/matching_grid600",
            baseline_ns,
            optimized_ns,
        });
    }

    // Tableau row products: folding 342 graph-state stabilizers of a
    // 1024-photon grid into one Pauli — pure word-wise row operations.
    {
        let g = generate::grid_graph(32, 32);
        let packed: Vec<PauliString> = (0..g.node_count())
            .step_by(3)
            .map(|i| PauliString::graph_stabilizer(&g, NodeId::new(i)))
            .collect();
        let boolean: Vec<sim_ref::PauliString> = (0..g.node_count())
            .step_by(3)
            .map(|i| sim_ref::PauliString::graph_stabilizer(&g, NodeId::new(i)))
            .collect();
        let (baseline_ns, optimized_ns) = measure_pair(
            || {
                let mut acc = boolean[0].clone();
                for p in &boolean[1..] {
                    acc = acc.mul(p);
                }
                std::hint::black_box(acc);
            },
            || {
                let mut acc = packed[0].clone();
                for p in &packed[1..] {
                    acc.mul_inplace(p);
                }
                std::hint::black_box(acc);
            },
            reps,
        );
        results.push(KernelResult {
            name: "tableau/rowops_mul_grid32",
            baseline_ns,
            optimized_ns,
        });
    }

    // Tableau row operations: measuring every qubit of a 576-photon
    // grid graph state is rowsum-dominated (the CHP measurement path).
    {
        let g = generate::grid_graph(24, 24);
        let packed = Tableau::graph_state(&g);
        let boolean = sim_ref::Tableau::graph_state(&g);
        let n = g.node_count();
        let (baseline_ns, optimized_ns) = measure_pair(
            || {
                let mut t = boolean.clone();
                let mut rng = Rng::seed_from_u64(1);
                for q in 0..n {
                    std::hint::black_box(t.measure_z(q, &mut rng));
                }
            },
            || {
                let mut t = packed.clone();
                let mut rng = Rng::seed_from_u64(1);
                for q in 0..n {
                    std::hint::black_box(t.measure_z(q, &mut rng));
                }
            },
            reps,
        );
        results.push(KernelResult {
            name: "tableau/rowops_measure_grid24",
            baseline_ns,
            optimized_ns,
        });
    }

    // Tableau construction: H per qubit + CZ per edge, column-update
    // bound (the graph-state build path).
    {
        let g = generate::grid_graph(24, 24);
        let (baseline_ns, optimized_ns) = measure_pair(
            || {
                std::hint::black_box(sim_ref::Tableau::graph_state(&g));
            },
            || {
                std::hint::black_box(Tableau::graph_state(&g));
            },
            reps,
        );
        results.push(KernelResult {
            name: "tableau/graph_state_grid24",
            baseline_ns,
            optimized_ns,
        });
    }

    // Stabilizer-membership verification: the word-blocked symplectic
    // elimination vs. the single-bit-probe Gaussian elimination,
    // deciding membership of generator products on a 576-photon grid
    // graph state (the graph-state verification path).
    {
        let g = generate::grid_graph(24, 24);
        let t = Tableau::graph_state(&g);
        let gens = t.stabilizer_generators();
        let probes: Vec<PauliString> = (0..4)
            .map(|k| {
                let mut acc = gens[k * 5].clone();
                for p in gens.iter().skip(k * 5 + 1).step_by(13) {
                    acc.mul_inplace(p);
                }
                acc
            })
            .collect();
        let (baseline_ns, optimized_ns) = measure_pair(
            || {
                for p in &probes {
                    std::hint::black_box(t.is_stabilized_by_reference(p));
                }
            },
            || {
                for p in &probes {
                    std::hint::black_box(t.is_stabilized_by(p));
                }
            },
            reps,
        );
        results.push(KernelResult {
            name: "tableau/is_stabilized_by_grid24",
            baseline_ns,
            optimized_ns,
        });
    }

    // End-to-end: the Algorithm-2 restart probes with one worker vs.
    // one worker per core (bit-identical partitions either way; the
    // speedup is bounded by the core count — ~1.0× on a 1-core box).
    {
        let cfg = KwayConfig::new(4).with_initial_restarts(16);
        let (baseline_ns, optimized_ns) = measure_pair(
            || {
                std::hint::black_box(mbqc_partition::multilevel_kway(
                    &graph,
                    &cfg.with_probe_workers(1),
                ));
            },
            || {
                std::hint::black_box(mbqc_partition::multilevel_kway(
                    &graph,
                    &cfg.with_probe_workers(0),
                ));
            },
            reps,
        );
        results.push(KernelResult {
            name: "end_to_end/restarts_parallel",
            baseline_ns,
            optimized_ns,
        });
    }

    // End-to-end: batch compilation over shared hardware vs. a
    // sequential loop of single-pattern compilations (identical
    // results; the batch path adds worker parallelism + per-worker
    // workspace reuse — the parallel win needs a multi-core box).
    {
        let patterns: Vec<_> = [12usize, 13, 14, 12, 13, 14]
            .iter()
            .map(|&n| transpile(&bench::qft(n)))
            .collect();
        let hw = DistributedHardware::builder()
            .num_qpus(4)
            .grid_width(bench::grid_size_for(14))
            .resource_state(ResourceStateKind::FIVE_STAR)
            .kmax(4)
            .build();
        let compiler = DcMbqcCompiler::new(DcMbqcConfig::new(hw));
        let (baseline_ns, optimized_ns) = measure_pair(
            || {
                for p in &patterns {
                    std::hint::black_box(compiler.compile_pattern(p).unwrap());
                }
            },
            || {
                std::hint::black_box(compiler.compile_batch(&patterns));
            },
            reps,
        );
        results.push(KernelResult {
            name: "end_to_end/batch_compile",
            baseline_ns,
            optimized_ns,
        });
    }

    // End-to-end: a repeated workload through the compilation service —
    // cold (a fresh service computes and stores every stage of six
    // distinct patterns; startup included) vs. warm (the same six jobs
    // resubmitted are pure `Scheduled` hits: partition, map, and
    // schedule are all skipped and the stored artifacts decode back).
    {
        let patterns: Vec<_> = [11usize, 12, 13, 14, 15, 16]
            .iter()
            .map(|&n| transpile(&bench::qft(n)))
            .collect();
        let hw = DistributedHardware::builder()
            .num_qpus(4)
            .grid_width(bench::grid_size_for(16))
            .resource_state(ResourceStateKind::FIVE_STAR)
            .kmax(4)
            .build();
        let config = DcMbqcConfig::new(hw);
        let service_config = || ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        };
        let run = |service: &CompileService| {
            for id in service.submit_many(&patterns, &config) {
                std::hint::black_box(service.wait(id).expect("service compiles"));
            }
        };
        let warm = CompileService::new(service_config()).expect("service starts");
        run(&warm); // prime the cache
        let (baseline_ns, optimized_ns) = measure_pair(
            || {
                let cold = CompileService::new(service_config()).expect("service starts");
                run(&cold);
            },
            || run(&warm),
            reps,
        );
        results.push(KernelResult {
            name: "end_to_end/service_warm_cache",
            baseline_ns,
            optimized_ns,
        });
    }

    // End-to-end: a mixed-size workload (cold cache each run) through
    // the two service engines — the preserved PR 3 whole-job shard
    // loop vs. the stage-graph executor, identical submissions (mixed
    // priorities) and identical results. On this 1-CPU box both
    // engines serialize, so the ratio only shows the executor's
    // per-task overhead (~1.0× expected); the stage-overlap win needs
    // a multi-core box.
    {
        let patterns: Vec<_> = [10usize, 14, 11, 16, 12, 15, 13]
            .iter()
            .map(|&n| transpile(&bench::qft(n)))
            .collect();
        let hw = DistributedHardware::builder()
            .num_qpus(4)
            .grid_width(bench::grid_size_for(16))
            .resource_state(ResourceStateKind::FIVE_STAR)
            .kmax(4)
            .build();
        let config = DcMbqcConfig::new(hw);
        let run = |engine: ExecutionEngine| {
            let service = CompileService::new(ServiceConfig {
                workers: 0,
                engine,
                ..ServiceConfig::default()
            })
            .expect("service starts");
            let ids: Vec<_> = patterns
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    service.submit_with_priority(
                        p.clone(),
                        config.clone(),
                        Priority::ALL[i % Priority::ALL.len()],
                    )
                })
                .collect();
            for id in ids {
                std::hint::black_box(service.wait(id).expect("service compiles"));
            }
        };
        let (baseline_ns, optimized_ns) = measure_pair(
            || run(ExecutionEngine::JobLoop),
            || run(ExecutionEngine::StageGraph),
            reps,
        );
        results.push(KernelResult {
            name: "end_to_end/pipelined_batch",
            baseline_ns,
            optimized_ns,
        });
    }

    // End-to-end: the lifecycle machinery under churn. Both sides
    // compile the same ten jobs on a cold service; the churn side
    // additionally submits ~30% extra jobs that are cancelled (three
    // immediately by token/id, one expired via a lapsed deadline) —
    // production abandonment traffic. Cancellation is boundary-checked
    // bookkeeping, so completed-job throughput should be unchanged:
    // the tracked ratio pins the lifecycle overhead at ~1.0× on 1 CPU.
    {
        let survivors: Vec<_> = [10usize, 12, 11, 13, 10, 12, 11, 13, 10, 12]
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let kinds = mbqc_circuit::bench::BenchmarkKind::all();
                transpile(&kinds[i % kinds.len()].generate(n, 1))
            })
            .collect();
        let victims: Vec<_> = [14usize, 15, 16]
            .iter()
            .map(|&n| transpile(&bench::qft(n)))
            .collect();
        let hw = DistributedHardware::builder()
            .num_qpus(4)
            .grid_width(bench::grid_size_for(16))
            .resource_state(ResourceStateKind::FIVE_STAR)
            .kmax(4)
            .build();
        let config = DcMbqcConfig::new(hw);
        let fresh = || {
            CompileService::new(ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            })
            .expect("service starts")
        };
        let (baseline_ns, optimized_ns) = measure_pair(
            || {
                let service = fresh();
                for id in service.submit_many(&survivors, &config) {
                    std::hint::black_box(service.wait(id).expect("job compiles"));
                }
            },
            || {
                let service = fresh();
                let ids = service.submit_many(&survivors, &config);
                // The churn: cancelled and expired jobs riding
                // along with the real workload.
                let doomed: Vec<_> = victims
                    .iter()
                    .map(|p| {
                        let h = service.submit_with(
                            p.clone(),
                            config.clone(),
                            mbqc_service::JobOptions::default(),
                        );
                        h.cancel();
                        h.id()
                    })
                    .collect();
                let expired = service.submit_with_deadline(
                    victims[0].clone(),
                    config.clone(),
                    std::time::Duration::ZERO,
                );
                for id in ids {
                    std::hint::black_box(service.wait(id).expect("job compiles"));
                }
                for id in doomed {
                    assert!(service.wait(id).is_err(), "victim must not complete");
                }
                assert!(expired.wait().is_err(), "lapsed deadline must expire");
            },
            reps,
        );
        results.push(KernelResult {
            name: "end_to_end/lifecycle_churn",
            baseline_ns,
            optimized_ns,
        });
    }

    // End-to-end: the failure-recovery machinery when nothing fails.
    // Both sides compile the same ten jobs on a cold service; the
    // recovery side additionally attaches a retry budget to every job
    // (attempt tracking, retry classification on the worker's error
    // path, the parked-retry queue check in the scheduler loop) and
    // runs against a store whose circuit breaker is armed. This build
    // carries no `fault-inject` feature, so no fault ever fires — the
    // tracked ratio pins the cost of *having* the recovery machinery
    // at ~1.00×.
    {
        let jobs: Vec<_> = [10usize, 12, 11, 13, 10, 12, 11, 13, 10, 12]
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let kinds = mbqc_circuit::bench::BenchmarkKind::all();
                transpile(&kinds[i % kinds.len()].generate(n, 1))
            })
            .collect();
        let hw = DistributedHardware::builder()
            .num_qpus(4)
            .grid_width(bench::grid_size_for(16))
            .resource_state(ResourceStateKind::FIVE_STAR)
            .kmax(4)
            .build();
        let config = DcMbqcConfig::new(hw);
        let fresh = || {
            CompileService::new(ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            })
            .expect("service starts")
        };
        let retry = mbqc_service::RetryPolicy::attempts(4)
            .with_backoff(std::time::Duration::from_millis(1));
        let (baseline_ns, optimized_ns) = measure_pair(
            || {
                let service = fresh();
                for id in service.submit_many(&jobs, &config) {
                    std::hint::black_box(service.wait(id).expect("job compiles"));
                }
            },
            || {
                let service = fresh();
                let handles: Vec<_> = jobs
                    .iter()
                    .map(|p| {
                        service.submit_with(
                            p.clone(),
                            config.clone(),
                            mbqc_service::JobOptions {
                                retry,
                                ..mbqc_service::JobOptions::default()
                            },
                        )
                    })
                    .collect();
                for h in handles {
                    std::hint::black_box(h.wait().expect("job compiles"));
                }
                assert_eq!(service.stats().retries, 0, "no fault fires in this build");
            },
            reps,
        );
        results.push(KernelResult {
            name: "end_to_end/fault_churn",
            baseline_ns,
            optimized_ns,
        });
    }

    // End-to-end: the telemetry machinery. Both sides compile the same
    // ten jobs on a cold single-worker service. The baseline service is
    // dormant — no subscriber, no flight recorder — so every emit site
    // costs exactly one relaxed atomic load (this is the zero-cost
    // contract the ratio pins at ~1.0×). The optimized side arms
    // everything: a flight recorder, a service-wide subscriber drained
    // from a live background thread, and a Chrome-trace export of the
    // capture after the batch drains.
    {
        let jobs: Vec<_> = [10usize, 12, 11, 13, 10, 12, 11, 13, 10, 12]
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let kinds = mbqc_circuit::bench::BenchmarkKind::all();
                transpile(&kinds[i % kinds.len()].generate(n, 1))
            })
            .collect();
        let hw = DistributedHardware::builder()
            .num_qpus(4)
            .grid_width(bench::grid_size_for(16))
            .resource_state(ResourceStateKind::FIVE_STAR)
            .kmax(4)
            .build();
        let config = DcMbqcConfig::new(hw);
        let fresh = |recorder: usize| {
            CompileService::new(ServiceConfig {
                workers: 1,
                telemetry: mbqc_service::TelemetryConfig {
                    flight_recorder: recorder,
                    ..mbqc_service::TelemetryConfig::default()
                },
                ..ServiceConfig::default()
            })
            .expect("service starts")
        };
        let (baseline_ns, optimized_ns) = measure_pair(
            || {
                let service = fresh(0);
                for id in service.submit_many(&jobs, &config) {
                    std::hint::black_box(service.wait(id).expect("job compiles"));
                }
            },
            || {
                let service = fresh(256);
                let stream = service.subscribe_with_capacity(4096);
                let drainer = std::thread::spawn(move || {
                    let mut events = Vec::new();
                    while let Some(ev) = stream.recv() {
                        events.push(ev);
                    }
                    events
                });
                for id in service.submit_many(&jobs, &config) {
                    std::hint::black_box(service.wait(id).expect("job compiles"));
                }
                drop(service); // closes the stream; the drainer ends
                let events = drainer.join().expect("drainer exits");
                let trace = mbqc_service::chrome_trace_json(&events);
                std::hint::black_box(trace.len());
            },
            reps,
        );
        results.push(KernelResult {
            name: "end_to_end/telemetry_churn",
            baseline_ns,
            optimized_ns,
        });
    }

    // Store: the zero-copy mmap warm-hit path. One large `Scheduled`
    // artifact lives on the disk tier (the one-byte memory tier forces
    // every read through it). Baseline: the eager path copies the file
    // into a `Vec` and fully decodes it. Optimized: `get_ref` hands
    // back checksum-verified bytes in place (memory-mapped) and the
    // lazy `ScheduledView` answers without decoding anything.
    {
        let pattern = transpile(&bench::qft(36));
        let hw = DistributedHardware::builder()
            .num_qpus(4)
            .grid_width(bench::grid_size_for(36))
            .resource_state(ResourceStateKind::FIVE_STAR)
            .kmax(4)
            .build();
        let config = DcMbqcConfig::new(hw);
        let dist = DcMbqcCompiler::new(config)
            .compile_pattern(&pattern)
            .expect("compiles");
        let dir = std::env::temp_dir().join(format!("mbqc-bench-warmhit-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = ArtifactStore::new(StoreConfig {
            memory_capacity: 1,
            disk_dir: Some(dir.clone()),
            ..StoreConfig::default()
        })
        .expect("store opens");
        let key = ArtifactKey::new(PipelineStage::Schedule, &[1], &[2]);
        store.put(&key, dist.to_bytes());
        let (baseline_ns, optimized_ns) = measure_pair(
            || {
                let bytes = store.get(&key).expect("disk hit");
                let s = DistributedSchedule::from_bytes(&bytes).expect("decodes");
                std::hint::black_box(s.execution_time());
            },
            || {
                let bytes = store.get_ref(&key).expect("disk hit");
                let v = ScheduledView::new(&bytes).expect("views");
                std::hint::black_box(v.makespan());
            },
            reps,
        );
        results.push(KernelResult {
            name: "store/warm_hit_mmap",
            baseline_ns,
            optimized_ns,
        });
        drop(store);
        std::fs::remove_dir_all(&dir).ok();
    }

    // Store: restart recovery — one sequential manifest replay vs. the
    // O(files) directory rescan it replaces (measured by deleting the
    // manifest before each baseline open, which forces the fallback
    // scan and its whole-manifest rewrite). Two store sizes so the
    // scaling difference is recorded, not just one point.
    for (count, name) in [
        (128usize, "store/restart_manifest_128"),
        (512usize, "store/restart_manifest_512"),
    ] {
        let dir =
            std::env::temp_dir().join(format!("mbqc-bench-restart-{}-{count}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let open = || {
            ArtifactStore::new(StoreConfig {
                memory_capacity: 1,
                disk_dir: Some(dir.clone()),
                // Loose files only: the fallback scan adopts loose
                // artifacts but drops segment files (it cannot prove
                // frame liveness), so the replay-vs-scan comparison
                // must run over a layout both paths fully recover.
                segment_threshold: None,
                ..StoreConfig::default()
            })
            .expect("store opens")
        };
        {
            let store = open();
            for i in 0..count {
                let b = (i as u32).to_le_bytes();
                store.put(
                    &ArtifactKey::new(PipelineStage::Partition, &b, &b),
                    vec![i as u8; 64],
                );
            }
        }
        let manifest = ArtifactStore::manifest_path(&dir);
        let (baseline_ns, optimized_ns) = measure_pair(
            || {
                std::fs::remove_file(&manifest).ok();
                let store = open();
                assert_eq!(
                    store.stats().disk_entries,
                    count,
                    "fallback scan lost entries"
                );
            },
            || {
                let store = open();
                assert_eq!(
                    store.stats().disk_entries,
                    count,
                    "manifest replay lost entries"
                );
            },
            reps,
        );
        results.push(KernelResult {
            name,
            baseline_ns,
            optimized_ns,
        });
        std::fs::remove_dir_all(&dir).ok();
    }

    // End-to-end: a storm of identical concurrent submits, with
    // in-flight dedup off (every duplicate decodes the stored artifact
    // back on its own warm-hit probe) vs. on (duplicates join the
    // in-flight leader, run zero tasks, and receive a clone of its
    // result). Results are asserted bit-identical on both sides.
    {
        const STORM: usize = 8;
        let pattern = transpile(&bench::qft(14));
        let hw = DistributedHardware::builder()
            .num_qpus(4)
            .grid_width(bench::grid_size_for(14))
            .resource_state(ResourceStateKind::FIVE_STAR)
            .kmax(4)
            .build();
        let config = DcMbqcConfig::new(hw);
        let run = |dedup: bool| {
            let service = CompileService::new(ServiceConfig {
                workers: 1,
                dedup,
                ..ServiceConfig::default()
            })
            .expect("service starts");
            let ids: Vec<_> = (0..STORM)
                .map(|_| service.submit(pattern.clone(), config.clone()))
                .collect();
            let mut first: Option<DistributedSchedule> = None;
            for id in ids {
                let got = service.wait(id).expect("job compiles");
                match &first {
                    Some(f) => assert_eq!(f, &got, "storm result diverged"),
                    None => first = Some(got),
                }
            }
        };
        let (baseline_ns, optimized_ns) = measure_pair(|| run(false), || run(true), reps);
        results.push(KernelResult {
            name: "end_to_end/dedup_storm",
            baseline_ns,
            optimized_ns,
        });
    }

    // End-to-end: the framed TCP front door vs. calling the service in
    // process. Both sides drive the *same* warm service — every job is
    // a pure `Scheduled` cache hit — so the pair isolates the wire
    // cost: frame encode/decode and checksums, one loopback TCP round
    // trip per verb, and the server's per-connection loop. The speedup
    // reads as the inverse framing-overhead factor: 0.50 means a
    // remote round trip costs 2× the in-process warm-hit path (the
    // tracked acceptance line), and `--check` flags the overhead
    // growing, not shrinking.
    {
        let patterns: Vec<_> = [8usize, 10, 12, 14]
            .iter()
            .map(|&n| transpile(&bench::qft(n)))
            .collect();
        let hw = DistributedHardware::builder()
            .num_qpus(4)
            .grid_width(bench::grid_size_for(14))
            .resource_state(ResourceStateKind::FIVE_STAR)
            .kmax(4)
            .build();
        let config = DcMbqcConfig::new(hw);
        let service = Arc::new(
            CompileService::new(ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            })
            .expect("service starts"),
        );
        let server = Server::bind(Arc::clone(&service), "127.0.0.1:0").expect("bind");
        let mut client = Client::connect(server.local_addr()).expect("connect");
        // Prime the cache: after this, both measured paths serve pure
        // warm hits.
        for id in service.submit_many(&patterns, &config) {
            service.wait(id).expect("service compiles");
        }
        let (baseline_ns, optimized_ns) = measure_pair(
            || {
                for p in &patterns {
                    let id = service.submit(p.clone(), config.clone());
                    std::hint::black_box(service.wait(id).expect("service compiles"));
                }
            },
            || {
                for p in &patterns {
                    let id = client
                        .submit(p, &config, WireJobOptions::default())
                        .expect("admitted");
                    std::hint::black_box(
                        client.wait(id, None).expect("transport").expect("terminal"),
                    );
                }
            },
            reps,
        );
        drop(server);
        results.push(KernelResult {
            name: "end_to_end/remote_roundtrip",
            baseline_ns,
            optimized_ns,
        });
    }

    // Statevector single-qubit kernels, on a cache-resident 14-qubit
    // register so the loop structure (not DRAM bandwidth) is measured:
    // a Hadamard sweep through the general 2×2 path…
    const SV_QUBITS: usize = 14;
    const SV_SWEEPS: usize = 24;
    {
        let k = C64::new(std::f64::consts::FRAC_1_SQRT_2, 0.0);
        let h = [[k, k], [k, -k]];
        let sv = StateVector::plus_state(SV_QUBITS);
        let (baseline_ns, optimized_ns) = measure_pair(
            || {
                let mut s = sv.clone();
                for _ in 0..SV_SWEEPS {
                    for q in 0..SV_QUBITS {
                        s.apply_single_reference(q, h);
                    }
                }
                std::hint::black_box(&s);
            },
            || {
                let mut s = sv.clone();
                for _ in 0..SV_SWEEPS {
                    for q in 0..SV_QUBITS {
                        s.apply_single(q, h);
                    }
                }
                std::hint::black_box(&s);
            },
            reps,
        );
        results.push(KernelResult {
            name: "statevector/apply_single_h14",
            baseline_ns,
            optimized_ns,
        });
    }

    // …and an S sweep, which the optimized kernel routes through the
    // diagonal fast path (a quarter of the flops of the general path).
    {
        let s_gate = [[C64::ONE, C64::ZERO], [C64::ZERO, C64::I]];
        let sv = StateVector::plus_state(SV_QUBITS);
        let (baseline_ns, optimized_ns) = measure_pair(
            || {
                let mut s = sv.clone();
                for _ in 0..SV_SWEEPS {
                    for q in 0..SV_QUBITS {
                        s.apply_single_reference(q, s_gate);
                    }
                }
                std::hint::black_box(&s);
            },
            || {
                let mut s = sv.clone();
                for _ in 0..SV_SWEEPS {
                    for q in 0..SV_QUBITS {
                        s.apply_single(q, s_gate);
                    }
                }
                std::hint::black_box(&s);
            },
            reps,
        );
        results.push(KernelResult {
            name: "statevector/apply_single_s14_diag",
            baseline_ns,
            optimized_ns,
        });
    }

    // Gate fusion: a single-qubit-dense circuit (the transpiled-pattern
    // shape — runs of H/T/S/Rz per qubit between CZ barriers) applied
    // gate-by-gate vs. through the fusing walker, which collapses each
    // run into one composed 2×2 sweep.
    {
        let mut c = Circuit::new(SV_QUBITS);
        for _ in 0..4 {
            for q in 0..SV_QUBITS {
                c.h(q).t(q).s(q).rz(q, 0.37).h(q);
            }
            for q in 0..SV_QUBITS - 1 {
                c.cz(q, q + 1);
            }
        }
        let sv = StateVector::plus_state(SV_QUBITS);
        let mut ws = FusionWorkspace::new();
        let (baseline_ns, optimized_ns) = measure_pair(
            || {
                let mut s = sv.clone();
                s.apply_circuit_reference(&c);
                std::hint::black_box(&s);
            },
            || {
                let mut s = sv.clone();
                s.apply_circuit_with(&c, &mut ws);
                std::hint::black_box(&s);
            },
            reps,
        );
        results.push(KernelResult {
            name: "statevector/fused_1q_runs14",
            baseline_ns,
            optimized_ns,
        });
    }

    results
}

/// Serializes kernel results as the `BENCH_kernels.json` document.
#[must_use]
pub fn to_json(results: &[KernelResult]) -> String {
    let mut out = String::from("{\n  \"kernels\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"baseline_ns\": {:.0}, \"optimized_ns\": {:.0}, \"speedup\": {:.2}}}{}\n",
            r.name,
            r.baseline_ns,
            r.optimized_ns,
            r.speedup(),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"generated_by\": \"repro bench-kernels\"\n}\n");
    out
}

/// Extracts the string value following `key` on `line` (up to the next
/// quote). Part of the fixed-shape `BENCH_kernels.json` reader — the
/// document is one kernel object per line, exactly as [`to_json`]
/// writes it, so no JSON dependency is needed.
fn str_field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let rest = &line[line.find(key)? + key.len()..];
    Some(&rest[..rest.find('"')?])
}

/// Extracts the numeric value following `key` on `line` (up to the
/// next `,` or `}`).
fn num_field(line: &str, key: &str) -> Option<f64> {
    let rest = &line[line.find(key)? + key.len()..];
    let end = rest.find([',', '}']).unwrap_or(rest.len());
    rest[..end].trim().parse().ok()
}

/// Parses a committed `BENCH_kernels.json` into `(name, speedup)`
/// pairs (lines that are not kernel entries are skipped).
#[must_use]
pub fn parse_committed(json: &str) -> Vec<(String, f64)> {
    json.lines()
        .filter_map(|line| {
            let name = str_field(line, "\"name\": \"")?;
            let speedup = num_field(line, "\"speedup\": ")?;
            Some((name.to_string(), speedup))
        })
        .collect()
}

/// Compares fresh measurements against committed speedups: a tracked
/// kernel regresses when its fresh speedup falls fractionally more
/// than `tolerance` below the committed one. Both sides are ratios
/// measured on the *same* box in the same run, so the comparison is
/// robust to absolute machine speed. Kernels present on only one side
/// are never failures: a retired kernel stops being tracked, and a new
/// kernel has no committed number yet.
#[must_use]
pub fn regressions(
    results: &[KernelResult],
    committed: &[(String, f64)],
    tolerance: f64,
) -> Vec<String> {
    let mut out = Vec::new();
    for (name, committed_speedup) in committed {
        let Some(r) = results.iter().find(|r| r.name == name) else {
            continue;
        };
        let fresh = r.speedup();
        if fresh < committed_speedup * (1.0 - tolerance) {
            out.push(format!(
                "{name}: fresh speedup {fresh:.2}x is more than {:.0}% below committed {committed_speedup:.2}x",
                tolerance * 100.0
            ));
        }
    }
    out
}

/// Renders the kernel comparison table.
fn table_of(results: &[KernelResult]) -> TextTable {
    let mut t = TextTable::new(vec!["Kernel", "Baseline [ms]", "Optimized [ms]", "Speedup"]);
    t.title("Kernel speedups — pre-optimization reference vs. current hot paths");
    for r in results {
        t.row(vec![
            r.name.to_string(),
            fmt_f64(r.baseline_ns / 1e6, 3),
            fmt_f64(r.optimized_ns / 1e6, 3),
            format!("{:.2}x", r.speedup()),
        ]);
    }
    t
}

/// The `bench-kernels` experiment: measures every kernel pair, writes
/// `BENCH_kernels.json` to the working directory, and returns the
/// comparison table.
#[must_use]
pub fn bench_kernels() -> TextTable {
    let results = measure_kernels(7);
    let json = to_json(&results);
    let path = "BENCH_kernels.json";
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        eprintln!("[wrote {path}]");
    }
    table_of(&results)
}

/// The `bench-kernels --check` gate: re-measures every kernel pair and
/// compares against the committed `BENCH_kernels.json` in the working
/// directory *without* rewriting it. Returns the comparison table and
/// the list of tracked kernels that regressed more than `tolerance`
/// (empty = pass; also empty when no committed file exists — there is
/// nothing to regress against).
#[must_use]
pub fn bench_kernels_check(tolerance: f64) -> (TextTable, Vec<String>) {
    let results = measure_kernels(7);
    let committed = match std::fs::read_to_string("BENCH_kernels.json") {
        Ok(json) => parse_committed(&json),
        Err(e) => {
            eprintln!("warning: no committed BENCH_kernels.json to check against: {e}");
            Vec::new()
        }
    };
    let failures = regressions(&results, &committed, tolerance);
    (table_of(&results), failures)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_valid() {
        let results = vec![
            KernelResult {
                name: "a/b",
                baseline_ns: 2000.0,
                optimized_ns: 500.0,
            },
            KernelResult {
                name: "c/d",
                baseline_ns: 10.0,
                optimized_ns: 10.0,
            },
        ];
        let json = to_json(&results);
        assert!(json.contains("\"kernels\""));
        assert!(json.contains("\"speedup\": 4.00"));
        assert!(json.contains("\"speedup\": 1.00"));
        // Exactly one comma between the two entries, none trailing.
        assert_eq!(json.matches("},").count(), 1);
    }

    /// The committed-JSON reader round-trips what [`to_json`] writes.
    #[test]
    fn committed_json_round_trips() {
        let results = vec![
            KernelResult {
                name: "a/b",
                baseline_ns: 2000.0,
                optimized_ns: 500.0,
            },
            KernelResult {
                name: "c/d",
                baseline_ns: 10.0,
                optimized_ns: 10.0,
            },
        ];
        let committed = parse_committed(&to_json(&results));
        assert_eq!(committed.len(), 2);
        assert_eq!(committed[0].0, "a/b");
        assert!((committed[0].1 - 4.0).abs() < 1e-9);
        assert_eq!(committed[1].0, "c/d");
        assert!((committed[1].1 - 1.0).abs() < 1e-9);
    }

    /// The regression gate: >tolerance drops fail, smaller drops and
    /// improvements pass, and kernels on only one side are ignored.
    #[test]
    fn regression_gate_flags_only_real_drops() {
        let fresh = vec![
            KernelResult {
                name: "k/slower",
                baseline_ns: 1000.0,
                optimized_ns: 1000.0, // 1.0x, was 2.0x: -50%
            },
            KernelResult {
                name: "k/noisy",
                baseline_ns: 1900.0,
                optimized_ns: 1000.0, // 1.9x, was 2.0x: -5%
            },
            KernelResult {
                name: "k/faster",
                baseline_ns: 3000.0,
                optimized_ns: 1000.0, // 3.0x, was 2.0x
            },
            KernelResult {
                name: "k/new",
                baseline_ns: 100.0,
                optimized_ns: 100.0, // not committed yet
            },
        ];
        let committed = vec![
            ("k/slower".to_string(), 2.0),
            ("k/noisy".to_string(), 2.0),
            ("k/faster".to_string(), 2.0),
            ("k/retired".to_string(), 9.0),
        ];
        let failures = regressions(&fresh, &committed, 0.15);
        assert_eq!(failures.len(), 1, "{failures:?}");
        assert!(failures[0].starts_with("k/slower:"), "{}", failures[0]);
    }

    #[test]
    fn speedup_ratio() {
        let r = KernelResult {
            name: "x",
            baseline_ns: 300.0,
            optimized_ns: 100.0,
        };
        assert!((r.speedup() - 3.0).abs() < 1e-12);
    }
}
