//! Kernel speedup measurement: optimized hot paths vs. their preserved
//! pre-optimization reference implementations.
//!
//! `repro bench-kernels` runs each kernel pair, prints a comparison
//! table, and writes `BENCH_kernels.json` so speedups are *recorded and
//! tracked across PRs* rather than asserted in tests (timing assertions
//! flake; JSON diffs don't).

use std::time::Instant;

use dc_mbqc::{DcMbqcCompiler, DcMbqcConfig};
use mbqc_circuit::bench;
use mbqc_graph::{generate, CsrGraph, NodeId};
use mbqc_hardware::{DistributedHardware, ResourceStateKind};
use mbqc_partition::refine::refine_csr;
use mbqc_partition::{reference as partition_ref, KwayConfig, Partition};
use mbqc_pattern::transpile::transpile;
use mbqc_service::{CompileService, ExecutionEngine, Priority, ServiceConfig};
use mbqc_sim::stabilizer::{PauliString, Tableau};
use mbqc_sim::{reference as sim_ref, StateVector, C64};
use mbqc_util::table::fmt_f64;
use mbqc_util::{Rng, TextTable};

/// One measured kernel pair.
#[derive(Debug, Clone)]
pub struct KernelResult {
    /// Kernel identifier (stable across PRs; used as the JSON key).
    pub name: &'static str,
    /// Median nanoseconds per run, pre-optimization implementation.
    pub baseline_ns: f64,
    /// Median nanoseconds per run, current implementation.
    pub optimized_ns: f64,
}

impl KernelResult {
    /// Baseline over optimized time.
    #[must_use]
    pub fn speedup(&self) -> f64 {
        self.baseline_ns / self.optimized_ns
    }
}

/// Median wall-clock nanoseconds of `reps` runs of `f`.
fn median_ns<F: FnMut()>(mut f: F, reps: usize) -> f64 {
    let mut samples = Vec::with_capacity(reps);
    for _ in 0..reps {
        let t = Instant::now();
        f();
        samples.push(t.elapsed().as_nanos() as f64);
    }
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

/// Measures every tracked kernel pair. `reps` controls samples per
/// kernel (median is reported).
#[must_use]
pub fn measure_kernels(reps: usize) -> Vec<KernelResult> {
    let mut results = Vec::new();

    // Partition: multilevel k-way on the QFT-36 computation graph, the
    // Figure 10 partitioning workload.
    let pattern = transpile(&bench::qft(36));
    let graph = pattern.graph().clone();
    {
        let cfg = KwayConfig::new(4);
        results.push(KernelResult {
            name: "partition/kway_qft36_k4",
            baseline_ns: median_ns(
                || {
                    std::hint::black_box(partition_ref::multilevel_kway(&graph, &cfg));
                },
                reps,
            ),
            optimized_ns: median_ns(
                || {
                    std::hint::black_box(mbqc_partition::multilevel_kway(&graph, &cfg));
                },
                reps,
            ),
        });
    }

    // Refinement in isolation: the incremental-gain hot path against the
    // recompute-per-visit reference, from the same random partition.
    {
        let csr = CsrGraph::from_graph(&graph);
        let n = graph.node_count();
        let bound = graph.total_node_weight() / 4 + n as i64 / 8;
        let mut rng = Rng::seed_from_u64(3);
        let p0 = Partition::new((0..n).map(|_| rng.range(4)).collect(), 4);
        results.push(KernelResult {
            name: "partition/refine_qft36_k4",
            baseline_ns: median_ns(
                || {
                    let mut p = p0.clone();
                    let mut r = Rng::seed_from_u64(7);
                    std::hint::black_box(partition_ref::refine(&graph, &mut p, bound, 8, &mut r));
                },
                reps,
            ),
            optimized_ns: median_ns(
                || {
                    let mut p = p0.clone();
                    let mut r = Rng::seed_from_u64(7);
                    std::hint::black_box(refine_csr(&csr, &mut p, bound, 8, &mut r));
                },
                reps,
            ),
        });
    }

    // Tableau row products: folding 342 graph-state stabilizers of a
    // 1024-photon grid into one Pauli — pure word-wise row operations.
    {
        let g = generate::grid_graph(32, 32);
        let packed: Vec<PauliString> = (0..g.node_count())
            .step_by(3)
            .map(|i| PauliString::graph_stabilizer(&g, NodeId::new(i)))
            .collect();
        let boolean: Vec<sim_ref::PauliString> = (0..g.node_count())
            .step_by(3)
            .map(|i| sim_ref::PauliString::graph_stabilizer(&g, NodeId::new(i)))
            .collect();
        results.push(KernelResult {
            name: "tableau/rowops_mul_grid32",
            baseline_ns: median_ns(
                || {
                    let mut acc = boolean[0].clone();
                    for p in &boolean[1..] {
                        acc = acc.mul(p);
                    }
                    std::hint::black_box(acc);
                },
                reps,
            ),
            optimized_ns: median_ns(
                || {
                    let mut acc = packed[0].clone();
                    for p in &packed[1..] {
                        acc.mul_inplace(p);
                    }
                    std::hint::black_box(acc);
                },
                reps,
            ),
        });
    }

    // Tableau row operations: measuring every qubit of a 576-photon
    // grid graph state is rowsum-dominated (the CHP measurement path).
    {
        let g = generate::grid_graph(24, 24);
        let packed = Tableau::graph_state(&g);
        let boolean = sim_ref::Tableau::graph_state(&g);
        let n = g.node_count();
        results.push(KernelResult {
            name: "tableau/rowops_measure_grid24",
            baseline_ns: median_ns(
                || {
                    let mut t = boolean.clone();
                    let mut rng = Rng::seed_from_u64(1);
                    for q in 0..n {
                        std::hint::black_box(t.measure_z(q, &mut rng));
                    }
                },
                reps,
            ),
            optimized_ns: median_ns(
                || {
                    let mut t = packed.clone();
                    let mut rng = Rng::seed_from_u64(1);
                    for q in 0..n {
                        std::hint::black_box(t.measure_z(q, &mut rng));
                    }
                },
                reps,
            ),
        });
    }

    // Tableau construction: H per qubit + CZ per edge, column-update
    // bound (the graph-state build path).
    {
        let g = generate::grid_graph(24, 24);
        results.push(KernelResult {
            name: "tableau/graph_state_grid24",
            baseline_ns: median_ns(
                || {
                    std::hint::black_box(sim_ref::Tableau::graph_state(&g));
                },
                reps,
            ),
            optimized_ns: median_ns(
                || {
                    std::hint::black_box(Tableau::graph_state(&g));
                },
                reps,
            ),
        });
    }

    // End-to-end: the Algorithm-2 restart probes with one worker vs.
    // one worker per core (bit-identical partitions either way; the
    // speedup is bounded by the core count — ~1.0× on a 1-core box).
    {
        let cfg = KwayConfig::new(4).with_initial_restarts(16);
        results.push(KernelResult {
            name: "end_to_end/restarts_parallel",
            baseline_ns: median_ns(
                || {
                    std::hint::black_box(mbqc_partition::multilevel_kway(
                        &graph,
                        &cfg.with_probe_workers(1),
                    ));
                },
                reps,
            ),
            optimized_ns: median_ns(
                || {
                    std::hint::black_box(mbqc_partition::multilevel_kway(
                        &graph,
                        &cfg.with_probe_workers(0),
                    ));
                },
                reps,
            ),
        });
    }

    // End-to-end: batch compilation over shared hardware vs. a
    // sequential loop of single-pattern compilations (identical
    // results; the batch path adds worker parallelism + per-worker
    // workspace reuse — the parallel win needs a multi-core box).
    {
        let patterns: Vec<_> = [12usize, 13, 14, 12, 13, 14]
            .iter()
            .map(|&n| transpile(&bench::qft(n)))
            .collect();
        let hw = DistributedHardware::builder()
            .num_qpus(4)
            .grid_width(bench::grid_size_for(14))
            .resource_state(ResourceStateKind::FIVE_STAR)
            .kmax(4)
            .build();
        let compiler = DcMbqcCompiler::new(DcMbqcConfig::new(hw));
        results.push(KernelResult {
            name: "end_to_end/batch_compile",
            baseline_ns: median_ns(
                || {
                    for p in &patterns {
                        std::hint::black_box(compiler.compile_pattern(p).unwrap());
                    }
                },
                reps,
            ),
            optimized_ns: median_ns(
                || {
                    std::hint::black_box(compiler.compile_batch(&patterns));
                },
                reps,
            ),
        });
    }

    // End-to-end: a repeated workload through the compilation service —
    // cold (a fresh service computes and stores every stage of six
    // distinct patterns; startup included) vs. warm (the same six jobs
    // resubmitted are pure `Scheduled` hits: partition, map, and
    // schedule are all skipped and the stored artifacts decode back).
    {
        let patterns: Vec<_> = [11usize, 12, 13, 14, 15, 16]
            .iter()
            .map(|&n| transpile(&bench::qft(n)))
            .collect();
        let hw = DistributedHardware::builder()
            .num_qpus(4)
            .grid_width(bench::grid_size_for(16))
            .resource_state(ResourceStateKind::FIVE_STAR)
            .kmax(4)
            .build();
        let config = DcMbqcConfig::new(hw);
        let service_config = || ServiceConfig {
            workers: 1,
            ..ServiceConfig::default()
        };
        let run = |service: &CompileService| {
            for id in service.submit_many(&patterns, &config) {
                std::hint::black_box(service.wait(id).expect("service compiles"));
            }
        };
        let warm = CompileService::new(service_config()).expect("service starts");
        run(&warm); // prime the cache
        results.push(KernelResult {
            name: "end_to_end/service_warm_cache",
            baseline_ns: median_ns(
                || {
                    let cold = CompileService::new(service_config()).expect("service starts");
                    run(&cold);
                },
                reps,
            ),
            optimized_ns: median_ns(|| run(&warm), reps),
        });
    }

    // End-to-end: a mixed-size workload (cold cache each run) through
    // the two service engines — the preserved PR 3 whole-job shard
    // loop vs. the stage-graph executor, identical submissions (mixed
    // priorities) and identical results. On this 1-CPU box both
    // engines serialize, so the ratio only shows the executor's
    // per-task overhead (~1.0× expected); the stage-overlap win needs
    // a multi-core box.
    {
        let patterns: Vec<_> = [10usize, 14, 11, 16, 12, 15, 13]
            .iter()
            .map(|&n| transpile(&bench::qft(n)))
            .collect();
        let hw = DistributedHardware::builder()
            .num_qpus(4)
            .grid_width(bench::grid_size_for(16))
            .resource_state(ResourceStateKind::FIVE_STAR)
            .kmax(4)
            .build();
        let config = DcMbqcConfig::new(hw);
        let run = |engine: ExecutionEngine| {
            let service = CompileService::new(ServiceConfig {
                workers: 0,
                engine,
                ..ServiceConfig::default()
            })
            .expect("service starts");
            let ids: Vec<_> = patterns
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    service.submit_with_priority(
                        p.clone(),
                        config.clone(),
                        Priority::ALL[i % Priority::ALL.len()],
                    )
                })
                .collect();
            for id in ids {
                std::hint::black_box(service.wait(id).expect("service compiles"));
            }
        };
        results.push(KernelResult {
            name: "end_to_end/pipelined_batch",
            baseline_ns: median_ns(|| run(ExecutionEngine::JobLoop), reps),
            optimized_ns: median_ns(|| run(ExecutionEngine::StageGraph), reps),
        });
    }

    // End-to-end: the lifecycle machinery under churn. Both sides
    // compile the same ten jobs on a cold service; the churn side
    // additionally submits ~30% extra jobs that are cancelled (three
    // immediately by token/id, one expired via a lapsed deadline) —
    // production abandonment traffic. Cancellation is boundary-checked
    // bookkeeping, so completed-job throughput should be unchanged:
    // the tracked ratio pins the lifecycle overhead at ~1.0× on 1 CPU.
    {
        let survivors: Vec<_> = [10usize, 12, 11, 13, 10, 12, 11, 13, 10, 12]
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let kinds = mbqc_circuit::bench::BenchmarkKind::all();
                transpile(&kinds[i % kinds.len()].generate(n, 1))
            })
            .collect();
        let victims: Vec<_> = [14usize, 15, 16]
            .iter()
            .map(|&n| transpile(&bench::qft(n)))
            .collect();
        let hw = DistributedHardware::builder()
            .num_qpus(4)
            .grid_width(bench::grid_size_for(16))
            .resource_state(ResourceStateKind::FIVE_STAR)
            .kmax(4)
            .build();
        let config = DcMbqcConfig::new(hw);
        let fresh = || {
            CompileService::new(ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            })
            .expect("service starts")
        };
        results.push(KernelResult {
            name: "end_to_end/lifecycle_churn",
            baseline_ns: median_ns(
                || {
                    let service = fresh();
                    for id in service.submit_many(&survivors, &config) {
                        std::hint::black_box(service.wait(id).expect("job compiles"));
                    }
                },
                reps,
            ),
            optimized_ns: median_ns(
                || {
                    let service = fresh();
                    let ids = service.submit_many(&survivors, &config);
                    // The churn: cancelled and expired jobs riding
                    // along with the real workload.
                    let doomed: Vec<_> = victims
                        .iter()
                        .map(|p| {
                            let h = service.submit_with(
                                p.clone(),
                                config.clone(),
                                mbqc_service::JobOptions::default(),
                            );
                            h.cancel();
                            h.id()
                        })
                        .collect();
                    let expired = service.submit_with_deadline(
                        victims[0].clone(),
                        config.clone(),
                        std::time::Duration::ZERO,
                    );
                    for id in ids {
                        std::hint::black_box(service.wait(id).expect("job compiles"));
                    }
                    for id in doomed {
                        assert!(service.wait(id).is_err(), "victim must not complete");
                    }
                    assert!(expired.wait().is_err(), "lapsed deadline must expire");
                },
                reps,
            ),
        });
    }

    // End-to-end: the failure-recovery machinery when nothing fails.
    // Both sides compile the same ten jobs on a cold service; the
    // recovery side additionally attaches a retry budget to every job
    // (attempt tracking, retry classification on the worker's error
    // path, the parked-retry queue check in the scheduler loop) and
    // runs against a store whose circuit breaker is armed. This build
    // carries no `fault-inject` feature, so no fault ever fires — the
    // tracked ratio pins the cost of *having* the recovery machinery
    // at ~1.00×.
    {
        let jobs: Vec<_> = [10usize, 12, 11, 13, 10, 12, 11, 13, 10, 12]
            .iter()
            .enumerate()
            .map(|(i, &n)| {
                let kinds = mbqc_circuit::bench::BenchmarkKind::all();
                transpile(&kinds[i % kinds.len()].generate(n, 1))
            })
            .collect();
        let hw = DistributedHardware::builder()
            .num_qpus(4)
            .grid_width(bench::grid_size_for(16))
            .resource_state(ResourceStateKind::FIVE_STAR)
            .kmax(4)
            .build();
        let config = DcMbqcConfig::new(hw);
        let fresh = || {
            CompileService::new(ServiceConfig {
                workers: 1,
                ..ServiceConfig::default()
            })
            .expect("service starts")
        };
        let retry = mbqc_service::RetryPolicy::attempts(4)
            .with_backoff(std::time::Duration::from_millis(1));
        results.push(KernelResult {
            name: "end_to_end/fault_churn",
            baseline_ns: median_ns(
                || {
                    let service = fresh();
                    for id in service.submit_many(&jobs, &config) {
                        std::hint::black_box(service.wait(id).expect("job compiles"));
                    }
                },
                reps,
            ),
            optimized_ns: median_ns(
                || {
                    let service = fresh();
                    let handles: Vec<_> = jobs
                        .iter()
                        .map(|p| {
                            service.submit_with(
                                p.clone(),
                                config.clone(),
                                mbqc_service::JobOptions {
                                    retry,
                                    ..mbqc_service::JobOptions::default()
                                },
                            )
                        })
                        .collect();
                    for h in handles {
                        std::hint::black_box(h.wait().expect("job compiles"));
                    }
                    assert_eq!(service.stats().retries, 0, "no fault fires in this build");
                },
                reps,
            ),
        });
    }

    // Statevector single-qubit kernels, on a cache-resident 14-qubit
    // register so the loop structure (not DRAM bandwidth) is measured:
    // a Hadamard sweep through the general 2×2 path…
    const SV_QUBITS: usize = 14;
    const SV_SWEEPS: usize = 24;
    {
        let k = C64::new(std::f64::consts::FRAC_1_SQRT_2, 0.0);
        let h = [[k, k], [k, -k]];
        let sv = StateVector::plus_state(SV_QUBITS);
        results.push(KernelResult {
            name: "statevector/apply_single_h14",
            baseline_ns: median_ns(
                || {
                    let mut s = sv.clone();
                    for _ in 0..SV_SWEEPS {
                        for q in 0..SV_QUBITS {
                            s.apply_single_reference(q, h);
                        }
                    }
                    std::hint::black_box(&s);
                },
                reps,
            ),
            optimized_ns: median_ns(
                || {
                    let mut s = sv.clone();
                    for _ in 0..SV_SWEEPS {
                        for q in 0..SV_QUBITS {
                            s.apply_single(q, h);
                        }
                    }
                    std::hint::black_box(&s);
                },
                reps,
            ),
        });
    }

    // …and an S sweep, which the optimized kernel routes through the
    // diagonal fast path (a quarter of the flops of the general path).
    {
        let s_gate = [[C64::ONE, C64::ZERO], [C64::ZERO, C64::I]];
        let sv = StateVector::plus_state(SV_QUBITS);
        results.push(KernelResult {
            name: "statevector/apply_single_s14_diag",
            baseline_ns: median_ns(
                || {
                    let mut s = sv.clone();
                    for _ in 0..SV_SWEEPS {
                        for q in 0..SV_QUBITS {
                            s.apply_single_reference(q, s_gate);
                        }
                    }
                    std::hint::black_box(&s);
                },
                reps,
            ),
            optimized_ns: median_ns(
                || {
                    let mut s = sv.clone();
                    for _ in 0..SV_SWEEPS {
                        for q in 0..SV_QUBITS {
                            s.apply_single(q, s_gate);
                        }
                    }
                    std::hint::black_box(&s);
                },
                reps,
            ),
        });
    }

    results
}

/// Serializes kernel results as the `BENCH_kernels.json` document.
#[must_use]
pub fn to_json(results: &[KernelResult]) -> String {
    let mut out = String::from("{\n  \"kernels\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"baseline_ns\": {:.0}, \"optimized_ns\": {:.0}, \"speedup\": {:.2}}}{}\n",
            r.name,
            r.baseline_ns,
            r.optimized_ns,
            r.speedup(),
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n  \"generated_by\": \"repro bench-kernels\"\n}\n");
    out
}

/// The `bench-kernels` experiment: measures every kernel pair, writes
/// `BENCH_kernels.json` to the working directory, and returns the
/// comparison table.
#[must_use]
pub fn bench_kernels() -> TextTable {
    let results = measure_kernels(7);
    let json = to_json(&results);
    let path = "BENCH_kernels.json";
    if let Err(e) = std::fs::write(path, &json) {
        eprintln!("warning: could not write {path}: {e}");
    } else {
        eprintln!("[wrote {path}]");
    }
    let mut t = TextTable::new(vec!["Kernel", "Baseline [ms]", "Optimized [ms]", "Speedup"]);
    t.title("Kernel speedups — pre-optimization reference vs. current hot paths");
    for r in &results {
        t.row(vec![
            r.name.to_string(),
            fmt_f64(r.baseline_ns / 1e6, 3),
            fmt_f64(r.optimized_ns / 1e6, 3),
            format!("{:.2}x", r.speedup()),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_shape_is_valid() {
        let results = vec![
            KernelResult {
                name: "a/b",
                baseline_ns: 2000.0,
                optimized_ns: 500.0,
            },
            KernelResult {
                name: "c/d",
                baseline_ns: 10.0,
                optimized_ns: 10.0,
            },
        ];
        let json = to_json(&results);
        assert!(json.contains("\"kernels\""));
        assert!(json.contains("\"speedup\": 4.00"));
        assert!(json.contains("\"speedup\": 1.00"));
        // Exactly one comma between the two entries, none trailing.
        assert_eq!(json.matches("},").count(), 1);
    }

    #[test]
    fn speedup_ratio() {
        let r = KernelResult {
            name: "x",
            baseline_ns: 300.0,
            optimized_ns: 100.0,
        };
        assert!((r.speedup() - 3.0).abs() < 1e-12);
    }
}
