//! `repro` — regenerate every table and figure of the DC-MBQC paper.
//!
//! ```text
//! Usage: repro [--quick] [--csv] [--check] <experiment>...
//!
//! Experiments: table1 figure1 table2 table3 table4 table5 table6
//!              figure7 figure8 figure9 figure10 bench-kernels all
//!
//! --quick   restrict each experiment to its smallest sizes
//! --csv     emit CSV instead of aligned text
//! --check   (bench-kernels only) compare against the committed
//!           BENCH_kernels.json instead of rewriting it; exit 1 if
//!           any tracked kernel's speedup regressed more than 15%
//!
//! `bench-kernels` additionally writes BENCH_kernels.json (optimized
//! hot-path timings vs. their pre-optimization references).
//! ```

use mbqc_bench::{experiments, Scale};
use mbqc_util::TextTable;

/// Fractional speedup drop vs. the committed `BENCH_kernels.json`
/// that `--check` treats as a regression.
const CHECK_TOLERANCE: f64 = 0.15;

fn usage() -> ! {
    eprintln!(
        "Usage: repro [--quick] [--csv] [--check] <experiment>...\n\
         Experiments: table1 figure1 table2 table3 table4 table5 table6\n\
         \x20            figure7 figure8 figure9 figure10 bench-kernels all"
    );
    std::process::exit(2);
}

fn main() {
    let mut scale = Scale::Full;
    let mut csv = false;
    let mut check = false;
    let mut selected: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--quick" => scale = Scale::Quick,
            "--csv" => csv = true,
            "--check" => check = true,
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => selected.push(other.to_string()),
        }
    }
    if selected.is_empty() {
        usage();
    }
    if selected.iter().any(|s| s == "all") {
        selected = [
            "table1", "figure1", "table2", "table3", "table4", "table5", "table6", "figure7",
            "figure8", "figure9", "figure10",
        ]
        .iter()
        .map(ToString::to_string)
        .collect();
    }

    let render = |t: &TextTable| {
        if csv {
            print!("{}", t.render_csv());
        } else {
            println!("{}", t.render());
        }
    };
    let mut regressed = false;
    for name in &selected {
        let started = std::time::Instant::now();
        let table = match name.as_str() {
            "table1" => experiments::table1(),
            "figure1" => experiments::figure1(),
            "table2" => experiments::table2(scale),
            "table3" => experiments::table3(scale),
            "table4" => experiments::table4(scale),
            "table5" => experiments::table5(scale),
            "table6" => experiments::table6(scale),
            "figure7" => experiments::figure7(scale),
            "figure8" => experiments::figure8(scale),
            "figure9" => experiments::figure9(scale),
            "figure10" => experiments::figure10(scale),
            "bench-kernels" if check => {
                let (table, failures) = experiments::bench_kernels_check(CHECK_TOLERANCE);
                if failures.is_empty() {
                    eprintln!(
                        "[bench-kernels --check: no tracked kernel regressed more than {:.0}%]",
                        CHECK_TOLERANCE * 100.0
                    );
                } else {
                    for f in &failures {
                        eprintln!("kernel regression: {f}");
                    }
                    regressed = true;
                }
                table
            }
            "bench-kernels" => experiments::bench_kernels(),
            other => {
                eprintln!("unknown experiment: {other}");
                usage();
            }
        };
        render(&table);
        if !csv {
            println!("[{name} generated in {:.1?}]\n", started.elapsed());
        }
    }
    if regressed {
        std::process::exit(1);
    }
}
