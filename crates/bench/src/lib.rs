//! Reproduction harness for the DC-MBQC paper's evaluation section.
//!
//! Every table and figure has a generator in [`experiments`]; the
//! `repro` binary dispatches to them. See `DESIGN.md` (per-experiment
//! index) and `EXPERIMENTS.md` (paper-vs-measured record) at the
//! repository root.
//!
//! # Examples
//!
//! ```no_run
//! // Regenerate Table III (this compiles every benchmark; slow):
//! let table = mbqc_bench::experiments::table3(mbqc_bench::Scale::Quick);
//! println!("{}", table.render());
//! ```

pub mod experiments;
pub mod kernels;
pub mod runner;

/// Experiment scale: `Full` uses every program size from Table II,
/// `Quick` restricts each family to its two smallest sizes (useful in
/// CI and integration tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Two smallest sizes per family.
    Quick,
    /// All paper sizes.
    Full,
}

impl Scale {
    /// Restricts a size list according to the scale.
    #[must_use]
    pub fn limit<'a>(&self, sizes: &'a [usize]) -> &'a [usize] {
        match self {
            Scale::Quick => &sizes[..sizes.len().min(2)],
            Scale::Full => sizes,
        }
    }
}
