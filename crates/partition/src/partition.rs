//! The [`Partition`] type and its quality metrics.

use mbqc_graph::{CsrGraph, Graph, NodeId};
use mbqc_util::codec::{CodecError, Decoder, Encoder, UsizeSliceView};

/// A k-way assignment of graph nodes to parts `0..k`.
///
/// # Examples
///
/// ```
/// use mbqc_graph::generate;
/// use mbqc_partition::Partition;
///
/// let g = generate::path_graph(4);
/// let p = Partition::new(vec![0, 0, 1, 1], 2);
/// assert_eq!(p.cut_weight(&g), 1); // only the middle edge is cut
/// assert!((p.imbalance(&g) - 1.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    assignment: Vec<usize>,
    k: usize,
}

impl Partition {
    /// Wraps an assignment vector.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0` or any entry is `≥ k`.
    #[must_use]
    pub fn new(assignment: Vec<usize>, k: usize) -> Self {
        assert!(k > 0, "k must be positive");
        assert!(
            assignment.iter().all(|&p| p < k),
            "assignment references part >= k"
        );
        Self { assignment, k }
    }

    /// Puts every node in part 0 (the monolithic "partition").
    #[must_use]
    pub fn trivial(n: usize) -> Self {
        Self {
            assignment: vec![0; n],
            k: 1,
        }
    }

    /// Number of parts.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// `true` when the partition covers no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Part of node `n`.
    ///
    /// # Panics
    ///
    /// Panics if `n` is out of range.
    #[must_use]
    pub fn part_of(&self, n: NodeId) -> usize {
        self.assignment[n.index()]
    }

    /// The raw assignment vector.
    #[must_use]
    pub fn assignment(&self) -> &[usize] {
        &self.assignment
    }

    /// Reassigns node `n` to `part`.
    ///
    /// # Panics
    ///
    /// Panics if `part >= k` or `n` out of range.
    pub fn assign(&mut self, n: NodeId, part: usize) {
        assert!(part < self.k, "part out of range");
        self.assignment[n.index()] = part;
    }

    /// Nodes of each part, in node order.
    #[must_use]
    pub fn parts(&self) -> Vec<Vec<NodeId>> {
        let mut parts = vec![Vec::new(); self.k];
        for (i, &p) in self.assignment.iter().enumerate() {
            parts[p].push(NodeId::new(i));
        }
        parts
    }

    /// Total node weight per part.
    ///
    /// # Panics
    ///
    /// Panics if the graph size disagrees with the assignment.
    #[must_use]
    pub fn part_weights(&self, g: &Graph) -> Vec<i64> {
        assert_eq!(g.node_count(), self.assignment.len(), "graph size mismatch");
        let mut w = vec![0i64; self.k];
        for n in g.nodes() {
            w[self.assignment[n.index()]] += g.node_weight(n);
        }
        w
    }

    /// Edges crossing parts, as `(a, b, weight)`.
    pub fn cut_edges<'g>(
        &'g self,
        g: &'g Graph,
    ) -> impl Iterator<Item = (NodeId, NodeId, i64)> + 'g {
        assert_eq!(g.node_count(), self.assignment.len(), "graph size mismatch");
        g.edges()
            .filter(move |(a, b, _)| self.assignment[a.index()] != self.assignment[b.index()])
    }

    /// Number of cut edges.
    #[must_use]
    pub fn cut_size(&self, g: &Graph) -> usize {
        self.cut_edges(g).count()
    }

    /// Total weight of cut edges.
    #[must_use]
    pub fn cut_weight(&self, g: &Graph) -> i64 {
        self.cut_edges(g).map(|(_, _, w)| w).sum()
    }

    /// Imbalance factor: `max part weight / (total weight / k)`.
    /// A perfectly balanced partition scores 1.0.
    #[must_use]
    pub fn imbalance(&self, g: &Graph) -> f64 {
        Self::imbalance_of(&self.part_weights(g), self.k)
    }

    /// `true` when every part's weight is within `alpha · total/k`.
    #[must_use]
    pub fn is_balanced(&self, g: &Graph, alpha: f64) -> bool {
        self.imbalance(g) <= alpha + 1e-9
    }

    fn imbalance_of(weights: &[i64], k: usize) -> f64 {
        let total: i64 = weights.iter().sum();
        if total == 0 {
            return 1.0;
        }
        let max = weights.iter().copied().max().unwrap_or(0);
        max as f64 * k as f64 / total as f64
    }

    /// Total node weight per part, computed from a CSR view.
    ///
    /// # Panics
    ///
    /// Panics if the graph size disagrees with the assignment.
    #[must_use]
    pub fn part_weights_csr(&self, g: &CsrGraph) -> Vec<i64> {
        let mut w = Vec::new();
        self.part_weights_csr_into(g, &mut w);
        w
    }

    /// [`Partition::part_weights_csr`] into a caller-owned buffer
    /// (cleared and refilled) — the refinement hot path calls this once
    /// per hierarchy level.
    ///
    /// # Panics
    ///
    /// Panics if the graph size disagrees with the assignment.
    pub fn part_weights_csr_into(&self, g: &CsrGraph, w: &mut Vec<i64>) {
        assert_eq!(g.node_count(), self.assignment.len(), "graph size mismatch");
        w.clear();
        w.resize(self.k, 0);
        for n in g.nodes() {
            w[self.assignment[n.index()]] += g.node_weight(n);
        }
    }

    /// Total weight of cut edges, computed from a CSR view.
    ///
    /// # Panics
    ///
    /// Panics if the graph size disagrees with the assignment.
    #[must_use]
    pub fn cut_weight_csr(&self, g: &CsrGraph) -> i64 {
        assert_eq!(g.node_count(), self.assignment.len(), "graph size mismatch");
        // Each cut edge is seen from both endpoints; halve at the end.
        let mut twice = 0i64;
        for u in g.nodes() {
            let pu = self.assignment[u.index()];
            let weights = g.neighbor_weights(u);
            for (i, v) in g.neighbors(u).iter().enumerate() {
                if self.assignment[v.index()] != pu {
                    twice += weights[i];
                }
            }
        }
        twice / 2
    }

    /// [`Partition::imbalance`] computed from a CSR view.
    #[must_use]
    pub fn imbalance_csr(&self, g: &CsrGraph) -> f64 {
        Self::imbalance_of(&self.part_weights_csr(g), self.k)
    }

    /// [`Partition::is_balanced`] computed from a CSR view.
    #[must_use]
    pub fn is_balanced_csr(&self, g: &CsrGraph, alpha: f64) -> bool {
        self.imbalance_csr(g) <= alpha + 1e-9
    }

    /// Serializes the partition with the hand-rolled binary codec (the
    /// `Partitioned` stage artifact of `mbqc-service`).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.usize(self.k);
        e.usize_slice(&self.assignment);
        e.into_bytes()
    }

    /// Decodes a partition written by [`Partition::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncated input, `k == 0`, or an
    /// assignment entry `≥ k`.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut d = Decoder::new(bytes);
        let k = d.usize()?;
        if k == 0 {
            return Err(CodecError::Invalid("k must be positive"));
        }
        let assignment = d.usize_vec()?;
        if assignment.iter().any(|&p| p >= k) {
            return Err(CodecError::Invalid("assignment references part >= k"));
        }
        d.finish()?;
        Ok(Self { assignment, k })
    }
}

/// A zero-allocation lazy view over [`Partition::to_bytes`] output.
///
/// [`PartitionView::new`] performs the *complete* validation of
/// [`Partition::from_bytes`] — structure, `k > 0`, every assignment
/// entry `< k` — without materializing the assignment vector; reading
/// the view afterwards cannot fail. Property tests pin the view's
/// accept/reject classification and decoded values bit-identical to the
/// eager decoder on the full corruption corpus.
#[derive(Debug, Clone, Copy)]
pub struct PartitionView<'a> {
    k: usize,
    assignment: UsizeSliceView<'a>,
}

impl<'a> PartitionView<'a> {
    /// Validates `bytes` as a partition artifact and returns the lazy
    /// view.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`Partition::from_bytes`] on the same
    /// bytes: truncation, `k == 0`, out-of-range assignment entries,
    /// trailing bytes.
    pub fn new(bytes: &'a [u8]) -> Result<Self, CodecError> {
        let mut d = Decoder::new(bytes);
        let k = d.usize()?;
        if k == 0 {
            return Err(CodecError::Invalid("k must be positive"));
        }
        let assignment = d.usize_slice_view()?;
        // The eager decoder surfaces element overflow (32-bit targets)
        // before the range check — mirror that order.
        assignment.validate_elements()?;
        for i in 0..assignment.len() {
            let p = assignment.get(i).expect("index in range")?;
            if p >= k {
                return Err(CodecError::Invalid("assignment references part >= k"));
            }
        }
        d.finish()?;
        Ok(Self { k, assignment })
    }

    /// Number of parts.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.assignment.len()
    }

    /// Part of node `i` (`None` out of range). Validated at view
    /// construction, so the decode cannot fail.
    #[must_use]
    pub fn part_of(&self, i: usize) -> Option<usize> {
        self.assignment
            .get(i)
            .map(|r| r.expect("validated at construction"))
    }

    /// Materializes the eager [`Partition`].
    #[must_use]
    pub fn materialize(&self) -> Partition {
        Partition {
            assignment: self.assignment.to_vec().expect("validated at construction"),
            k: self.k,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbqc_graph::generate;

    #[test]
    fn trivial_partition() {
        let p = Partition::trivial(5);
        assert_eq!(p.k(), 1);
        assert_eq!(p.len(), 5);
        let g = generate::complete_graph(5);
        assert_eq!(p.cut_size(&g), 0);
        assert!((p.imbalance(&g) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cut_accounting() {
        let g = generate::cycle_graph(6);
        let p = Partition::new(vec![0, 0, 0, 1, 1, 1], 2);
        assert_eq!(p.cut_size(&g), 2); // edges (2,3) and (5,0)
        assert_eq!(p.cut_weight(&g), 2);
        let cut: Vec<_> = p.cut_edges(&g).collect();
        assert_eq!(cut.len(), 2);
    }

    #[test]
    fn part_weights_with_node_weights() {
        let mut g = generate::path_graph(3);
        g.set_node_weight(NodeId::new(2), 10);
        let p = Partition::new(vec![0, 1, 1], 2);
        assert_eq!(p.part_weights(&g), vec![1, 11]);
        assert!((p.imbalance(&g) - 11.0 * 2.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn balance_check() {
        let g = generate::path_graph(4);
        let balanced = Partition::new(vec![0, 0, 1, 1], 2);
        assert!(balanced.is_balanced(&g, 1.0));
        let skewed = Partition::new(vec![0, 0, 0, 1], 2);
        assert!(!skewed.is_balanced(&g, 1.2));
        assert!(skewed.is_balanced(&g, 1.5));
    }

    #[test]
    fn parts_listing() {
        let p = Partition::new(vec![1, 0, 1], 2);
        let parts = p.parts();
        assert_eq!(parts[0], vec![NodeId::new(1)]);
        assert_eq!(parts[1], vec![NodeId::new(0), NodeId::new(2)]);
    }

    #[test]
    fn assign_moves_node() {
        let g = generate::path_graph(2);
        let mut p = Partition::new(vec![0, 1], 2);
        assert_eq!(p.cut_size(&g), 1);
        p.assign(NodeId::new(1), 0);
        assert_eq!(p.cut_size(&g), 0);
    }

    #[test]
    #[should_panic(expected = "references part")]
    fn invalid_assignment_panics() {
        let _ = Partition::new(vec![0, 2], 2);
    }

    #[test]
    fn codec_round_trip_and_validation() {
        let p = Partition::new(vec![1, 0, 2, 1], 3);
        let back = Partition::from_bytes(&p.to_bytes()).unwrap();
        assert_eq!(back, p);
        // Entries beyond k and zero k are rejected.
        let mut e = mbqc_util::Encoder::new();
        e.usize(2);
        e.usize_slice(&[0, 2]);
        assert!(Partition::from_bytes(&e.into_bytes()).is_err());
        let mut e = mbqc_util::Encoder::new();
        e.usize(0);
        e.usize_slice(&[]);
        assert!(Partition::from_bytes(&e.into_bytes()).is_err());
    }

    #[test]
    fn csr_metrics_match_graph_metrics() {
        let mut g = generate::grid_graph(5, 4);
        g.set_node_weight(NodeId::new(3), 6);
        let csr = mbqc_graph::CsrGraph::from_graph(&g);
        let p = Partition::new((0..20).map(|i| i % 3).collect(), 3);
        assert_eq!(p.part_weights_csr(&csr), p.part_weights(&g));
        assert_eq!(p.cut_weight_csr(&csr), p.cut_weight(&g));
        assert!((p.imbalance_csr(&csr) - p.imbalance(&g)).abs() < 1e-12);
        assert_eq!(p.is_balanced_csr(&csr, 1.3), p.is_balanced(&g, 1.3));
    }
}
