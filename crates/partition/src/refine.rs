//! Boundary refinement (greedy Kernighan–Lin/Fiduccia–Mattheyses style).
//!
//! The hot path of the whole partitioner: every multilevel level runs
//! several refinement passes, and every pass visits every node. The seed
//! implementation recomputed a `Vec<i64>` connectivity vector per visit
//! (one heap allocation and one full adjacency scan each); this version
//! iterates CSR slices and maintains the node→part connectivity table
//! *incrementally* in a [`GainTable`] — built once in O(E), updated in
//! O(deg) per applied move, with zero allocation per visit.
//!
//! Move semantics are bit-identical to the recompute-from-scratch
//! reference ([`crate::reference`]), which the equivalence proptests
//! assert.

use mbqc_graph::{CsrGraph, Graph, NodeId};
use mbqc_util::Rng;

use crate::Partition;

/// Incrementally maintained connectivity state: `conn[u][c]` is the total
/// edge weight from node `u` to part `c`.
///
/// Building costs O(E); applying a move costs O(deg(u)). Since a node's
/// connectivity row only changes when a *neighbor* moves, the table stays
/// exact under any sequence of [`GainTable::apply_move`] calls.
#[derive(Debug, Default)]
pub struct GainTable {
    k: usize,
    /// Row-major `n × k` connectivity matrix.
    conn: Vec<i64>,
}

impl GainTable {
    /// Builds the table for `p` on `g`.
    #[must_use]
    pub fn build(g: &CsrGraph, p: &Partition) -> Self {
        let mut table = Self {
            k: p.k(),
            conn: Vec::new(),
        };
        table.rebuild(g, p);
        table
    }

    /// Rebuilds in place for a new partition (reuses the buffer, and
    /// re-shapes it when the graph or `k` changed since the last
    /// build — the multilevel driver moves one table through every
    /// hierarchy level).
    pub fn rebuild(&mut self, g: &CsrGraph, p: &Partition) {
        let (n, k) = (g.node_count(), p.k());
        self.k = k;
        self.conn.clear();
        self.conn.resize(n * k, 0);
        for u in g.nodes() {
            let row = u.index() * k;
            for (v, w) in g.adj(u) {
                self.conn[row + p.part_of(v)] += w;
            }
        }
    }

    /// The connectivity row of `u` (edge weight to each part).
    #[must_use]
    #[inline]
    pub fn conn(&self, u: NodeId) -> &[i64] {
        let row = u.index() * self.k;
        &self.conn[row..row + self.k]
    }

    /// Records that `u` moved from part `from` to part `to`, updating the
    /// connectivity rows of `u`'s neighbors. O(deg(u)).
    #[inline]
    pub fn apply_move(&mut self, g: &CsrGraph, u: NodeId, from: usize, to: usize) {
        let weights = g.neighbor_weights(u);
        for (i, &v) in g.neighbors(u).iter().enumerate() {
            let row = v.index() * self.k;
            let w = weights[i];
            self.conn[row + from] -= w;
            self.conn[row + to] += w;
        }
    }
}

/// Refines `p` in place with greedy boundary moves: each pass visits
/// nodes in random order and moves a node to the neighboring part with
/// the highest positive cut gain, subject to the balance bound
/// `max part weight ≤ max_part_weight`. Stops early when a pass makes no
/// move.
///
/// Returns the total cut-weight improvement.
///
/// # Panics
///
/// Panics if graph and partition sizes disagree.
pub fn refine(
    g: &Graph,
    p: &mut Partition,
    max_part_weight: i64,
    passes: usize,
    rng: &mut Rng,
) -> i64 {
    refine_csr(&CsrGraph::from_graph(g), p, max_part_weight, passes, rng)
}

/// Reusable scratch for [`refine_csr_with`]: the connectivity table,
/// visit-order buffer, and part-weight vector survive across calls, so
/// the multilevel driver stops re-allocating them at every hierarchy
/// level. Results are bit-identical to the allocating entry point.
#[derive(Debug, Default)]
pub struct RefineWorkspace {
    gains: GainTable,
    order: Vec<usize>,
    weights: Vec<i64>,
    /// `movable[i]` ⇔ some part beats `i`'s current connectivity
    /// (`∃ to ≠ from: conn[to] > conn[from]`) — a necessary condition
    /// for a positive-gain move that ignores the balance bound, so
    /// skipping nodes with the flag clear cannot change any decision.
    movable: Vec<bool>,
    /// FM scratch: per-node moved-this-round flag.
    locked: Vec<bool>,
    /// FM scratch: per-node ≥ 1-cross-part-edge flag.
    boundary: Vec<bool>,
    /// FM scratch: compact unlocked-boundary candidate list.
    active: Vec<u32>,
    /// FM scratch: tentative `(node, from, to, gain)` move log.
    moves: Vec<(NodeId, usize, usize, i64)>,
}

impl RefineWorkspace {
    /// An empty workspace; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// CSR-native [`refine`]; the multilevel driver calls this directly so the
/// conversion happens once per hierarchy, not once per level visit.
///
/// # Panics
///
/// Panics if graph and partition sizes disagree.
pub fn refine_csr(
    g: &CsrGraph,
    p: &mut Partition,
    max_part_weight: i64,
    passes: usize,
    rng: &mut Rng,
) -> i64 {
    refine_csr_with(
        g,
        p,
        max_part_weight,
        passes,
        rng,
        &mut RefineWorkspace::new(),
    )
}

/// [`refine_csr`] with caller-owned scratch — identical moves and RNG
/// consumption, zero steady-state allocation.
///
/// # Panics
///
/// Panics if graph and partition sizes disagree.
pub fn refine_csr_with(
    g: &CsrGraph,
    p: &mut Partition,
    max_part_weight: i64,
    passes: usize,
    rng: &mut Rng,
    ws: &mut RefineWorkspace,
) -> i64 {
    assert_eq!(g.node_count(), p.len(), "graph size mismatch");
    let RefineWorkspace {
        gains,
        order,
        weights,
        movable,
        ..
    } = ws;
    p.part_weights_csr_into(g, weights);
    gains.rebuild(g, p);
    let k = p.k();
    let n = g.node_count();
    // A node's gain to part `to` is conn[to] − conn[from]; only nodes
    // where some other part's connectivity beats the home part's can
    // ever produce a positive-gain move, and a node's row only changes
    // when it or a neighbor moves. Tracking that predicate per node
    // turns the pass body into a flag check for the (typical) interior
    // majority — the move sequence and RNG stream are untouched.
    let flag_of = |gains: &GainTable, p: &Partition, u: NodeId| {
        let conn = gains.conn(u);
        let conn_from = conn[p.part_of(u)];
        conn.iter().any(|&c| c > conn_from)
    };
    movable.clear();
    movable.resize(n, false);
    for (i, m) in movable.iter_mut().enumerate() {
        *m = flag_of(gains, p, NodeId::new(i));
    }
    let mut total_gain = 0i64;
    order.clear();
    order.extend(0..n);
    for _ in 0..passes {
        rng.shuffle(order);
        let mut moved = false;
        for &i in order.iter() {
            if !movable[i] {
                continue;
            }
            let u = NodeId::new(i);
            let from = p.part_of(u);
            let conn = gains.conn(u);
            let wu = g.node_weight(u);
            // Best target: maximize conn[to] − conn[from] under balance.
            let conn_from = conn[from];
            let mut best: Option<(usize, i64)> = None;
            for to in 0..k {
                if to == from || weights[to] + wu > max_part_weight {
                    continue;
                }
                let gain = conn[to] - conn_from;
                if gain > 0 && best.is_none_or(|(_, g0)| gain > g0) {
                    best = Some((to, gain));
                }
            }
            if let Some((to, gain)) = best {
                p.assign(u, to);
                gains.apply_move(g, u, from, to);
                weights[from] -= wu;
                weights[to] += wu;
                total_gain += gain;
                moved = true;
                // The move changed u's home part and its neighbors'
                // connectivity rows; those are the only flags affected.
                movable[i] = flag_of(gains, p, u);
                for &v in g.neighbors(u) {
                    movable[v.index()] = flag_of(gains, p, v);
                }
            }
        }
        if !moved {
            break;
        }
    }
    total_gain
}

/// Fiduccia–Mattheyses-style refinement with hill climbing: each round
/// tentatively moves every node at most once — taking the best move
/// *even when its gain is negative* — and finally rolls back to the
/// best prefix of the move sequence. This escapes the local minima that
/// stop positive-gain-only refinement (e.g. hub fan-outs in
/// fully-entangled VQE graphs).
///
/// Quadratic per round, so callers gate it to small graphs/coarse
/// levels; each round additionally caps its tentative-move sequence at
/// `MAX_FM_MOVES` (long sequences almost never recover past the best
/// prefix). Returns the total cut improvement.
///
/// # Panics
///
/// Panics if graph and partition sizes disagree.
pub fn fm_refine(g: &Graph, p: &mut Partition, max_part_weight: i64, rounds: usize) -> i64 {
    fm_refine_csr(&CsrGraph::from_graph(g), p, max_part_weight, rounds)
}

/// CSR-native [`fm_refine`].
///
/// # Panics
///
/// Panics if graph and partition sizes disagree.
pub fn fm_refine_csr(g: &CsrGraph, p: &mut Partition, max_part_weight: i64, rounds: usize) -> i64 {
    fm_refine_csr_with(g, p, max_part_weight, rounds, &mut RefineWorkspace::new())
}

/// [`fm_refine_csr`] with caller-owned scratch — identical moves, zero
/// steady-state allocation. Shares the [`RefineWorkspace`] with
/// [`refine_csr_with`], so the multilevel driver threads one workspace
/// through both refinement styles.
///
/// # Panics
///
/// Panics if graph and partition sizes disagree.
pub fn fm_refine_csr_with(
    g: &CsrGraph,
    p: &mut Partition,
    max_part_weight: i64,
    rounds: usize,
    ws: &mut RefineWorkspace,
) -> i64 {
    /// Tentative moves per FM round.
    const MAX_FM_MOVES: usize = 384;
    assert_eq!(g.node_count(), p.len(), "graph size mismatch");
    let n = g.node_count();
    let mut total_gain = 0i64;
    // Scratch reused across rounds: gain table, lock and boundary flags.
    let RefineWorkspace {
        gains,
        weights,
        locked,
        boundary,
        // Compact list of unlocked boundary nodes — the only candidates
        // the selection scan must visit. Entries are dropped lazily when
        // their node locks; the scan compares with an explicit
        // (gain, lowest-index, lowest-part) key, so list order is free
        // and the chosen move matches the ascending full-array scan
        // exactly.
        active,
        moves,
        ..
    } = ws;
    gains.rebuild(g, p);
    locked.clear();
    locked.resize(n, false);
    boundary.clear();
    boundary.resize(n, false);
    for round in 0..rounds {
        if round > 0 {
            gains.rebuild(g, p);
        }
        p.part_weights_csr_into(g, weights);
        locked.iter_mut().for_each(|l| *l = false);
        // Only boundary nodes (≥ 1 cross-part edge) can have
        // non-negative moves; restricting the scan to them keeps each
        // step linear in the boundary, not the graph.
        boundary.iter_mut().for_each(|b| *b = false);
        for (a, b, _) in g.edges() {
            if p.part_of(a) != p.part_of(b) {
                boundary[a.index()] = true;
                boundary[b.index()] = true;
            }
        }
        active.clear();
        active.extend((0..n as u32).filter(|&i| boundary[i as usize]));
        // (node, from, to, gain) in application order.
        moves.clear();
        let mut cum = 0i64;
        let mut best_cum = 0i64;
        let mut best_prefix = 0usize;
        loop {
            // Best single move over unlocked boundary nodes. Ties break
            // to the lowest node index, then the lowest target part —
            // what an ascending scan with a strict `>` yields.
            let mut best: Option<(NodeId, usize, i64)> = None;
            let mut write = 0;
            for r in 0..active.len() {
                let i = active[r] as usize;
                if locked[i] {
                    continue; // drop locked entries on the fly
                }
                active[write] = active[r];
                write += 1;
                let u = NodeId::new(i);
                let from = p.part_of(u);
                let wu = g.node_weight(u);
                let conn = gains.conn(u);
                let conn_from = conn[from];
                for (to, &c_to) in conn.iter().enumerate() {
                    if to == from || weights[to] + wu > max_part_weight {
                        continue;
                    }
                    let gain = c_to - conn_from;
                    let better = match best {
                        None => true,
                        Some((u0, to0, g0)) => {
                            gain > g0
                                || (gain == g0 && (u.index() < u0.index() || (u == u0 && to < to0)))
                        }
                    };
                    if better {
                        best = Some((u, to, gain));
                    }
                }
            }
            active.truncate(write);
            let Some((u, to, gain)) = best else { break };
            let from = p.part_of(u);
            let wu = g.node_weight(u);
            p.assign(u, to);
            gains.apply_move(g, u, from, to);
            weights[from] -= wu;
            weights[to] += wu;
            locked[u.index()] = true;
            // The move may expose new boundary nodes.
            for &v in g.neighbors(u) {
                if !boundary[v.index()] {
                    boundary[v.index()] = true;
                    if !locked[v.index()] {
                        active.push(v.index() as u32);
                    }
                }
            }
            cum += gain;
            moves.push((u, from, to, gain));
            if cum > best_cum {
                best_cum = cum;
                best_prefix = moves.len();
            }
            // Deep negative excursions rarely recover; bail out early.
            if cum < best_cum - 30 || moves.len() >= MAX_FM_MOVES {
                break;
            }
        }
        // Roll back past the best prefix.
        for &(u, from, _, _) in moves.iter().skip(best_prefix).rev() {
            p.assign(u, from);
        }
        total_gain += best_cum;
        if best_cum == 0 {
            break;
        }
    }
    total_gain
}

/// Rebalances an over-weight partition by moving the cheapest boundary
/// nodes out of overloaded parts (used after projection when coarse
/// moves overshoot the bound). Best-effort: returns `true` if the bound
/// holds afterwards.
pub fn rebalance(g: &Graph, p: &mut Partition, max_part_weight: i64, rng: &mut Rng) -> bool {
    rebalance_csr(&CsrGraph::from_graph(g), p, max_part_weight, rng)
}

/// CSR-native [`rebalance`].
pub fn rebalance_csr(g: &CsrGraph, p: &mut Partition, max_part_weight: i64, rng: &mut Rng) -> bool {
    let mut weights = p.part_weights_csr(g);
    let k = p.k();
    let mut gains = GainTable::build(g, p);
    let mut order: Vec<usize> = (0..g.node_count()).collect();
    rng.shuffle(&mut order);
    // Repeatedly move nodes from overloaded parts to the lightest
    // feasible part, preferring moves with the least cut damage.
    for _ in 0..2 * g.node_count() {
        let Some(over) = (0..k).find(|&c| weights[c] > max_part_weight) else {
            return true;
        };
        // Candidate: node in `over` with the best (gain, weight) move.
        let mut best: Option<(NodeId, usize, i64)> = None;
        for &i in &order {
            let u = NodeId::new(i);
            if p.part_of(u) != over {
                continue;
            }
            let wu = g.node_weight(u);
            let conn = gains.conn(u);
            let conn_over = conn[over];
            for to in 0..k {
                if to == over || weights[to] + wu > max_part_weight {
                    continue;
                }
                let gain = conn[to] - conn_over;
                if best.is_none_or(|(_, _, g0)| gain > g0) {
                    best = Some((u, to, gain));
                }
            }
        }
        let Some((u, to, _)) = best else {
            return false; // nothing movable
        };
        let wu = g.node_weight(u);
        weights[over] -= wu;
        weights[to] += wu;
        p.assign(u, to);
        gains.apply_move(g, u, over, to);
    }
    (0..k).all(|c| weights[c] <= max_part_weight)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbqc_graph::generate;

    #[test]
    fn refine_fixes_interleaved_path() {
        // Path 0-1-2-3-4-5 assigned alternately: cut 5. With one node of
        // slack (bound 4) greedy single-node moves reach a near-optimal
        // cut. (At a hard bound of 3 every single move is blocked — the
        // known FM limitation that pairwise swaps would lift; multilevel
        // initial partitions are contiguous so this case does not arise
        // in the k-way driver.)
        let g = generate::path_graph(6);
        let mut p = Partition::new(vec![0, 1, 0, 1, 0, 1], 2);
        let before = p.cut_weight(&g);
        let mut rng = Rng::seed_from_u64(1);
        let gain = refine(&g, &mut p, 4, 10, &mut rng);
        let after = p.cut_weight(&g);
        assert_eq!(before - gain, after);
        assert!(after <= 2, "cut after refine: {after}");
        assert!(p.is_balanced(&g, 4.0 * 2.0 / 6.0 + 1e-9));
    }

    #[test]
    fn refine_respects_balance_bound() {
        let g = generate::complete_graph(6);
        let mut p = Partition::new(vec![0, 0, 0, 1, 1, 1], 2);
        let mut rng = Rng::seed_from_u64(2);
        // In a clique every move has negative or zero gain; nothing moves.
        refine(&g, &mut p, 3, 5, &mut rng);
        let w = p.part_weights(&g);
        assert_eq!(w, vec![3, 3]);
    }

    #[test]
    fn refine_gain_matches_cut_delta() {
        let g = generate::grid_graph(6, 6);
        let mut rng = Rng::seed_from_u64(3);
        // Random assignment.
        let assignment: Vec<usize> = (0..36).map(|_| rng.range(3)).collect();
        let mut p = Partition::new(assignment, 3);
        let before = p.cut_weight(&g);
        let gain = refine(&g, &mut p, 15, 8, &mut rng);
        assert_eq!(p.cut_weight(&g), before - gain);
        assert!(gain >= 0);
    }

    #[test]
    fn rebalance_spreads_overload() {
        let g = generate::path_graph(8);
        // Everything in part 0.
        let mut p = Partition::new(vec![0; 8], 2);
        let mut rng = Rng::seed_from_u64(4);
        assert!(rebalance(&g, &mut p, 4, &mut rng));
        let w = p.part_weights(&g);
        assert!(w.iter().all(|&x| x <= 4), "{w:?}");
    }

    #[test]
    fn rebalance_reports_impossible() {
        // One node of weight 10 cannot fit a bound of 5 anywhere.
        let mut g = Graph::with_nodes(2);
        g.set_node_weight(NodeId::new(0), 10);
        let mut p = Partition::new(vec![0, 1], 2);
        let mut rng = Rng::seed_from_u64(5);
        assert!(!rebalance(&g, &mut p, 5, &mut rng));
    }

    #[test]
    fn gain_table_tracks_moves_exactly() {
        let g = generate::grid_graph(5, 5);
        let csr = CsrGraph::from_graph(&g);
        let mut rng = Rng::seed_from_u64(6);
        let assignment: Vec<usize> = (0..25).map(|_| rng.range(3)).collect();
        let mut p = Partition::new(assignment, 3);
        let mut gains = GainTable::build(&csr, &p);
        // Apply a few arbitrary moves, tracking through the table.
        for step in 0..10 {
            let u = NodeId::new((step * 7) % 25);
            let from = p.part_of(u);
            let to = (from + 1) % 3;
            p.assign(u, to);
            gains.apply_move(&csr, u, from, to);
        }
        // The incrementally maintained table must equal a fresh build.
        let fresh = GainTable::build(&csr, &p);
        for u in csr.nodes() {
            assert_eq!(gains.conn(u), fresh.conn(u), "node {u}");
        }
    }

    #[test]
    fn fm_refine_csr_matches_graph_wrapper() {
        let g = generate::grid_graph(6, 6);
        let csr = CsrGraph::from_graph(&g);
        let assignment: Vec<usize> = (0..36).map(|i| (i * 5) % 3).collect();
        let mut p1 = Partition::new(assignment.clone(), 3);
        let mut p2 = Partition::new(assignment, 3);
        let g1 = fm_refine(&g, &mut p1, 14, 3);
        let g2 = fm_refine_csr(&csr, &mut p2, 14, 3);
        assert_eq!(g1, g2);
        assert_eq!(p1, p2);
    }
}
