//! Pre-optimization reference implementations of the partitioner.
//!
//! This module preserves the original adjacency-list hot paths exactly as
//! they were before the CSR/incremental-gain overhaul: `connectivity()`
//! allocates a fresh `Vec<i64>` per node visit, refinement recomputes it
//! from scratch, and the multilevel driver clones [`Graph`]s through the
//! hierarchy. It exists for two reasons:
//!
//! 1. **Equivalence testing** — the CSR path is required to produce
//!    *bit-identical* partitions (same RNG consumption, same tie-breaks);
//!    the proptests in `tests/proptest_partition.rs` assert
//!    `multilevel_kway == reference::multilevel_kway` on seeded random
//!    graphs.
//! 2. **Benchmark baselines** — `benches/kernels.rs` and the
//!    `repro bench-kernels` experiment measure the optimized path against
//!    this one, so speedups are recorded rather than asserted.
//!
//! Do not "optimize" this module; its slowness is the point.

use mbqc_graph::{Graph, NodeId};
use mbqc_util::Rng;

use crate::coarsen::coarsen_to;
use crate::kway::KwayConfig;
use crate::Partition;

/// Computes, for node `u`, the edge weight connecting it to each part
/// (fresh allocation per call — the pattern the [`GainTable`] replaced).
///
/// [`GainTable`]: crate::refine::GainTable
fn connectivity(g: &Graph, p: &Partition, u: NodeId) -> Vec<i64> {
    let mut conn = vec![0i64; p.k()];
    for &(v, w) in g.neighbors_weighted(u) {
        conn[p.part_of(v)] += w;
    }
    conn
}

/// Reference greedy boundary refinement (recompute-per-visit).
///
/// # Panics
///
/// Panics if graph and partition sizes disagree.
pub fn refine(
    g: &Graph,
    p: &mut Partition,
    max_part_weight: i64,
    passes: usize,
    rng: &mut Rng,
) -> i64 {
    assert_eq!(g.node_count(), p.len(), "graph size mismatch");
    let mut weights = p.part_weights(g);
    let mut total_gain = 0i64;
    let mut order: Vec<usize> = (0..g.node_count()).collect();
    for _ in 0..passes {
        rng.shuffle(&mut order);
        let mut moved = false;
        for &i in &order {
            let u = NodeId::new(i);
            let from = p.part_of(u);
            let conn = connectivity(g, p, u);
            let wu = g.node_weight(u);
            // Best target: maximize conn[to] − conn[from] under balance.
            let mut best: Option<(usize, i64)> = None;
            for to in 0..p.k() {
                if to == from || weights[to] + wu > max_part_weight {
                    continue;
                }
                let gain = conn[to] - conn[from];
                if gain > 0 && best.is_none_or(|(_, g0)| gain > g0) {
                    best = Some((to, gain));
                }
            }
            if let Some((to, gain)) = best {
                p.assign(u, to);
                weights[from] -= wu;
                weights[to] += wu;
                total_gain += gain;
                moved = true;
            }
        }
        if !moved {
            break;
        }
    }
    total_gain
}

/// Reference FM-style hill-climbing refinement (recompute-per-candidate).
///
/// # Panics
///
/// Panics if graph and partition sizes disagree.
pub fn fm_refine(g: &Graph, p: &mut Partition, max_part_weight: i64, rounds: usize) -> i64 {
    /// Tentative moves per FM round.
    const MAX_FM_MOVES: usize = 384;
    assert_eq!(g.node_count(), p.len(), "graph size mismatch");
    let n = g.node_count();
    let k = p.k();
    let mut total_gain = 0i64;
    let mut conn = vec![0i64; k];
    for _ in 0..rounds {
        let mut weights = p.part_weights(g);
        let mut locked = vec![false; n];
        let mut boundary = vec![false; n];
        for (a, b, _) in g.edges() {
            if p.part_of(a) != p.part_of(b) {
                boundary[a.index()] = true;
                boundary[b.index()] = true;
            }
        }
        // (node, from, to, gain) in application order.
        let mut moves: Vec<(NodeId, usize, usize, i64)> = Vec::new();
        let mut cum = 0i64;
        let mut best_cum = 0i64;
        let mut best_prefix = 0usize;
        loop {
            // Best single move over unlocked boundary nodes.
            let mut best: Option<(NodeId, usize, i64)> = None;
            for i in 0..n {
                if locked[i] || !boundary[i] {
                    continue;
                }
                let u = NodeId::new(i);
                let from = p.part_of(u);
                let wu = g.node_weight(u);
                conn.iter_mut().for_each(|c| *c = 0);
                for &(v, w) in g.neighbors_weighted(u) {
                    conn[p.part_of(v)] += w;
                }
                for (to, &c_to) in conn.iter().enumerate() {
                    if to == from || weights[to] + wu > max_part_weight {
                        continue;
                    }
                    let gain = c_to - conn[from];
                    if best.is_none_or(|(_, _, g0)| gain > g0) {
                        best = Some((u, to, gain));
                    }
                }
            }
            let Some((u, to, gain)) = best else { break };
            let from = p.part_of(u);
            let wu = g.node_weight(u);
            p.assign(u, to);
            weights[from] -= wu;
            weights[to] += wu;
            locked[u.index()] = true;
            // The move may expose new boundary nodes.
            for v in g.neighbors(u) {
                boundary[v.index()] = true;
            }
            cum += gain;
            moves.push((u, from, to, gain));
            if cum > best_cum {
                best_cum = cum;
                best_prefix = moves.len();
            }
            // Deep negative excursions rarely recover; bail out early.
            if cum < best_cum - 30 || moves.len() >= MAX_FM_MOVES {
                break;
            }
        }
        // Roll back past the best prefix.
        for &(u, from, _, _) in moves.iter().skip(best_prefix).rev() {
            p.assign(u, from);
        }
        total_gain += best_cum;
        if best_cum == 0 {
            break;
        }
    }
    total_gain
}

/// Reference best-effort rebalance.
pub fn rebalance(g: &Graph, p: &mut Partition, max_part_weight: i64, rng: &mut Rng) -> bool {
    let mut weights = p.part_weights(g);
    let mut order: Vec<usize> = (0..g.node_count()).collect();
    rng.shuffle(&mut order);
    for _ in 0..2 * g.node_count() {
        let Some(over) = (0..p.k()).find(|&c| weights[c] > max_part_weight) else {
            return true;
        };
        let mut best: Option<(NodeId, usize, i64)> = None;
        for &i in &order {
            let u = NodeId::new(i);
            if p.part_of(u) != over {
                continue;
            }
            let wu = g.node_weight(u);
            let conn = connectivity(g, p, u);
            for to in 0..p.k() {
                if to == over || weights[to] + wu > max_part_weight {
                    continue;
                }
                let gain = conn[to] - conn[over];
                if best.is_none_or(|(_, _, g0)| gain > g0) {
                    best = Some((u, to, gain));
                }
            }
        }
        let Some((u, to, _)) = best else {
            return false; // nothing movable
        };
        let wu = g.node_weight(u);
        weights[over] -= wu;
        weights[to] += wu;
        p.assign(u, to);
    }
    (0..p.k()).all(|c| weights[c] <= max_part_weight)
}

/// Maximum part weight implied by a config for a given graph.
fn weight_bound(g: &Graph, k: usize, alpha: f64) -> i64 {
    let total = g.total_node_weight();
    let bound = (alpha * total as f64 / k as f64).ceil() as i64;
    let heaviest = g.nodes().map(|n| g.node_weight(n)).max().unwrap_or(0);
    bound.max(heaviest)
}

/// Reference greedy graph growing for the coarsest-graph partition.
fn initial_partition(g: &Graph, k: usize, max_w: i64, rng: &mut Rng) -> Partition {
    let n = g.node_count();
    let mut assignment = vec![usize::MAX; n];
    let total = g.total_node_weight();
    let mut remaining = total;
    let mut unassigned = n;

    for part in 0..k {
        if unassigned == 0 {
            break;
        }
        let parts_left = k - part;
        let target = ((remaining as f64 / parts_left as f64).ceil() as i64).min(max_w);
        let candidates: Vec<usize> = (0..n).filter(|&i| assignment[i] == usize::MAX).collect();
        let seed = *candidates
            .iter()
            .min_by_key(|&&i| (g.degree(NodeId::new(i)), rng.next_u64() & 0xffff))
            .expect("unassigned nodes exist");
        let mut queue = std::collections::VecDeque::new();
        let mut grown = 0i64;
        queue.push_back(NodeId::new(seed));
        while let Some(u) = queue.pop_front() {
            if assignment[u.index()] != usize::MAX {
                continue;
            }
            let wu = g.node_weight(u);
            if grown > 0 && grown + wu > target {
                continue;
            }
            assignment[u.index()] = part;
            grown += wu;
            remaining -= wu;
            unassigned -= 1;
            if grown >= target {
                break;
            }
            for v in g.neighbors(u) {
                if assignment[v.index()] == usize::MAX {
                    queue.push_back(v);
                }
            }
        }
    }
    // Leftovers (disconnected remainders or overflow): lightest part wins.
    let mut weights = vec![0i64; k];
    for (i, &part) in assignment.iter().enumerate() {
        if part != usize::MAX {
            weights[part] += g.node_weight(NodeId::new(i));
        }
    }
    for (i, part) in assignment.iter_mut().enumerate() {
        if *part == usize::MAX {
            let lightest = (0..k).min_by_key(|&c| weights[c]).expect("k >= 1");
            *part = lightest;
            weights[lightest] += g.node_weight(NodeId::new(i));
        }
    }
    Partition::new(assignment, k)
}

/// The pre-optimization multilevel k-way driver, byte-for-byte the
/// algorithm the CSR path replaced. Must produce partitions identical to
/// [`crate::multilevel_kway`] for every input and seed.
#[must_use]
pub fn multilevel_kway(g: &Graph, config: &KwayConfig) -> Partition {
    /// Node-count bound under which the quadratic FM pass runs at a level.
    const FM_LIMIT: usize = 2000;
    assert!(config.k >= 1, "k must be positive");
    assert!(config.alpha >= 1.0, "alpha must be at least 1");
    let mut rng = Rng::seed_from_u64(config.seed);
    if config.k == 1 || g.node_count() <= config.k {
        let assignment = (0..g.node_count()).map(|i| i % config.k).collect();
        return Partition::new(assignment, config.k);
    }
    let max_w = weight_bound(g, config.k, config.alpha);
    let target_coarse = (config.k * 16).max(48);
    let levels = coarsen_to(g, target_coarse, &mut rng);

    let coarsest: &Graph = levels.last().map_or(g, |l| &l.graph);
    // Restart probes with per-probe forked RNGs, matching the scheme of
    // the optimized driver (which may run the probes in parallel): all
    // probe streams are forked up front and the earliest lowest-cut
    // probe wins, sequentially here. This is the one deliberate
    // departure from the pre-overhaul driver, shared by both paths so
    // the bit-identity tests keep pinning the CSR port itself.
    let mut probe_rngs: Vec<Rng> = (0..config.initial_restarts.max(1))
        .map(|_| rng.fork())
        .collect();
    let mut best: Option<(i64, Partition)> = None;
    for probe_rng in &mut probe_rngs {
        let mut candidate = initial_partition(coarsest, config.k, max_w, probe_rng);
        let _ = refine(
            coarsest,
            &mut candidate,
            max_w,
            config.refine_passes,
            probe_rng,
        );
        let _ = fm_refine(coarsest, &mut candidate, max_w, 3);
        let cut = candidate.cut_weight(coarsest);
        if best.as_ref().is_none_or(|&(c, _)| cut < c) {
            best = Some((cut, candidate));
        }
    }
    let mut part = best.expect("at least one probe ran").1;

    let mut fm_runs = 0usize;
    for level_idx in (0..levels.len()).rev() {
        let finer: &Graph = if level_idx == 0 {
            g
        } else {
            &levels[level_idx - 1].graph
        };
        let map = &levels[level_idx].map;
        let assignment: Vec<usize> = (0..finer.node_count())
            .map(|i| part.part_of(map[i]))
            .collect();
        part = Partition::new(assignment, config.k);
        let _ = refine(finer, &mut part, max_w, config.refine_passes, &mut rng);
        if finer.node_count() <= FM_LIMIT && fm_runs < 4 {
            let _ = fm_refine(finer, &mut part, max_w, 2);
            fm_runs += 1;
        }
    }
    if !part.is_balanced(g, config.alpha) {
        let _ = rebalance(g, &mut part, max_w, &mut rng);
        let _ = refine(g, &mut part, max_w, config.refine_passes, &mut rng);
    }
    part
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbqc_graph::generate;

    #[test]
    fn reference_matches_csr_on_grid() {
        let g = generate::grid_graph(10, 10);
        for k in [2, 4] {
            let cfg = KwayConfig::new(k).with_seed(11);
            let a = multilevel_kway(&g, &cfg);
            let b = crate::multilevel_kway(&g, &cfg);
            assert_eq!(a, b, "k={k}");
        }
    }

    #[test]
    fn reference_refine_matches_csr_refine() {
        let g = generate::grid_graph(6, 6);
        let assignment: Vec<usize> = (0..36).map(|i| (i * 7) % 3).collect();
        let mut p_ref = Partition::new(assignment.clone(), 3);
        let mut p_csr = Partition::new(assignment, 3);
        let mut rng_ref = Rng::seed_from_u64(5);
        let mut rng_csr = Rng::seed_from_u64(5);
        let g_ref = refine(&g, &mut p_ref, 14, 6, &mut rng_ref);
        let g_csr = crate::refine::refine(&g, &mut p_csr, 14, 6, &mut rng_csr);
        assert_eq!(g_ref, g_csr);
        assert_eq!(p_ref, p_csr);
        // Both consumed the same amount of randomness.
        assert_eq!(rng_ref.next_u64(), rng_csr.next_u64());
    }
}
