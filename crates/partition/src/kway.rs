//! Multilevel k-way partitioning (the from-scratch METIS stand-in).
//!
//! The driver is CSR-native: the input [`Graph`] is frozen once into a
//! [`CsrGraph`], the coarsening hierarchy is built as CSR levels, and
//! every refinement pass iterates flat CSR slices with incremental gain
//! state ([`crate::refine::GainTable`]). The pre-optimization adjacency
//! implementation survives in [`crate::reference`] and is property-tested
//! to produce bit-identical partitions.

use mbqc_graph::{algo, CsrGraph, Graph, NodeId};
use mbqc_util::Rng;

use crate::coarsen::{coarsen_to_csr_rebuild, CoarseRebuild, CoarsenWorkspace};
use crate::refine::{
    fm_refine_csr, fm_refine_csr_with, rebalance_csr, refine_csr, refine_csr_with, RefineWorkspace,
};
use crate::Partition;

/// Node-count bound under which the quadratic FM pass runs at a level.
const FM_LIMIT: usize = 2000;

/// Configuration for [`multilevel_kway`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KwayConfig {
    /// Number of parts.
    pub k: usize,
    /// Maximum imbalance factor `α ≥ 1`: each part's weight may reach
    /// `α · total/k`.
    pub alpha: f64,
    /// Refinement passes per level.
    pub refine_passes: usize,
    /// Independent initial partitions tried on the coarsest graph (the
    /// best refined cut wins) — cheap because the coarsest graph is
    /// small, and a large quality lever on structured graphs.
    pub initial_restarts: usize,
    /// RNG seed (the partitioner is deterministic given the seed).
    pub seed: u64,
    /// Worker threads for the restart probes (`0` = one per available
    /// core). Every probe draws from its own forked RNG and the lowest
    /// `(cut, probe index)` wins, so the result is bit-identical for
    /// every worker count — including fully sequential execution.
    pub probe_workers: usize,
}

impl KwayConfig {
    /// A balanced (`α = 1.03`) configuration for `k` parts.
    #[must_use]
    pub fn new(k: usize) -> Self {
        Self {
            k,
            alpha: 1.03,
            refine_passes: 8,
            initial_restarts: 4,
            seed: 42,
            probe_workers: 0,
        }
    }

    /// Sets the imbalance factor.
    #[must_use]
    pub fn with_alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of restart-probe workers (`0` = auto).
    #[must_use]
    pub fn with_probe_workers(mut self, workers: usize) -> Self {
        self.probe_workers = workers;
        self
    }

    /// Sets the number of independent restart probes.
    #[must_use]
    pub fn with_initial_restarts(mut self, restarts: usize) -> Self {
        self.initial_restarts = restarts;
        self
    }
}

/// Resolves a worker-count request against the job count: `0` means one
/// per available core, and never more workers than jobs.
#[must_use]
pub fn resolve_workers(requested: usize, jobs: usize) -> usize {
    let auto = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let w = if requested == 0 { auto } else { requested };
    w.min(jobs).max(1)
}

/// Maximum part weight implied by a config for a given graph.
fn weight_bound(g: &CsrGraph, k: usize, alpha: f64) -> i64 {
    let total = g.total_node_weight();
    // ceil(alpha * total / k), but never below the heaviest node (a
    // partition must be able to host every node somewhere).
    let bound = (alpha * total as f64 / k as f64).ceil() as i64;
    bound.max(g.max_node_weight())
}

/// Greedy graph growing on the (coarsest) graph: BFS-grows each part
/// from a random seed until it reaches its weight share.
fn initial_partition(g: &CsrGraph, k: usize, max_w: i64, rng: &mut Rng) -> Partition {
    let n = g.node_count();
    let mut assignment = vec![usize::MAX; n];
    let total = g.total_node_weight();
    let mut remaining = total;
    let mut unassigned = n;

    for part in 0..k {
        if unassigned == 0 {
            break;
        }
        let parts_left = k - part;
        let target = ((remaining as f64 / parts_left as f64).ceil() as i64).min(max_w);
        // Seed: random unassigned node, preferring low-degree frontier
        // nodes (classic GGGP heuristic — grows from the periphery).
        // Streaming min — no candidate vector; the RNG is still drawn
        // once per unassigned node, matching the reference path.
        let seed = (0..n)
            .filter(|&i| assignment[i] == usize::MAX)
            .min_by_key(|&i| (g.degree(NodeId::new(i)), rng.next_u64() & 0xffff))
            .expect("unassigned nodes exist");
        let mut queue = std::collections::VecDeque::new();
        let mut grown = 0i64;
        queue.push_back(NodeId::new(seed));
        while let Some(u) = queue.pop_front() {
            if assignment[u.index()] != usize::MAX {
                continue;
            }
            let wu = g.node_weight(u);
            if grown > 0 && grown + wu > target {
                continue;
            }
            assignment[u.index()] = part;
            grown += wu;
            remaining -= wu;
            unassigned -= 1;
            if grown >= target {
                break;
            }
            for &v in g.neighbors(u) {
                if assignment[v.index()] == usize::MAX {
                    queue.push_back(v);
                }
            }
        }
    }
    // Leftovers (disconnected remainders or overflow): lightest part wins.
    let mut weights = vec![0i64; k];
    for (i, &part) in assignment.iter().enumerate() {
        if part != usize::MAX {
            weights[part] += g.node_weight(NodeId::new(i));
        }
    }
    for (i, part) in assignment.iter_mut().enumerate() {
        if *part == usize::MAX {
            let lightest = (0..k).min_by_key(|&c| weights[c]).expect("k >= 1");
            *part = lightest;
            weights[lightest] += g.node_weight(NodeId::new(i));
        }
    }
    Partition::new(assignment, k)
}

/// Multilevel k-way partitioning: heavy-edge-matching coarsening, greedy
/// initial partitioning of the coarsest graph, then uncoarsening with
/// boundary refinement at every level — the algorithmic scheme of METIS
/// (Karypis & Kumar 1998), which the paper's Algorithm 2 calls as its
/// `Partition(G, α)` primitive.
///
/// The result respects the balance bound `α · total/k` whenever feasible
/// (a best-effort rebalance runs at the finest level otherwise).
///
/// # Panics
///
/// Panics if `k == 0` or `alpha < 1`.
///
/// # Examples
///
/// ```
/// use mbqc_graph::generate;
/// use mbqc_partition::{multilevel_kway, KwayConfig};
///
/// let g = generate::grid_graph(8, 8);
/// let p = multilevel_kway(&g, &KwayConfig::new(4));
/// assert_eq!(p.k(), 4);
/// // Bound is ceil(α·total/k) = 17 of 16 nodes/part ideal.
/// assert!(p.part_weights(&g).iter().all(|&w| w <= 17));
/// ```
#[must_use]
pub fn multilevel_kway(g: &Graph, config: &KwayConfig) -> Partition {
    multilevel_kway_csr(&CsrGraph::from_graph(g), config)
}

/// Reusable workspaces for [`multilevel_kway_csr_with`]: callers that
/// partition repeatedly (the adaptive α sweep, a compile session, a
/// batch service) keep one of these per thread and stop re-allocating
/// the coarsening machinery on every call.
#[derive(Debug, Default)]
pub struct KwayWorkspace {
    /// Coarsening scratch (matching buffers + rebuild scatter arrays).
    pub coarsen: CoarsenWorkspace,
    /// Refinement scratch (connectivity table + visit-order buffer),
    /// reused at every uncoarsening level.
    pub refine: RefineWorkspace,
}

impl KwayWorkspace {
    /// An empty workspace; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// One restart probe on the coarsest graph: greedy growing + greedy
/// refinement + FM hill climbing, from the probe's own RNG stream.
fn restart_probe(g: &CsrGraph, config: &KwayConfig, max_w: i64, rng: &mut Rng) -> (i64, Partition) {
    let mut p = initial_partition(g, config.k, max_w, rng);
    let _ = refine_csr(g, &mut p, max_w, config.refine_passes, rng);
    let _ = fm_refine_csr(g, &mut p, max_w, 3);
    (p.cut_weight_csr(g), p)
}

/// Runs the coarsest-graph restart probes — in parallel when the config
/// asks for it — and returns the winner. Each probe owns a forked RNG
/// drawn *before* any work starts and the lowest `(cut, probe index)`
/// wins, so the result is bit-identical for every worker count.
fn run_restarts(coarsest: &CsrGraph, config: &KwayConfig, max_w: i64, rng: &mut Rng) -> Partition {
    let restarts = config.initial_restarts.max(1);
    let mut probe_rngs: Vec<Rng> = (0..restarts).map(|_| rng.fork()).collect();
    let workers = resolve_workers(config.probe_workers, restarts);
    let mut results: Vec<(i64, usize, Partition)> = Vec::with_capacity(restarts);
    if workers <= 1 {
        for (idx, probe_rng) in probe_rngs.iter_mut().enumerate() {
            let (cut, p) = restart_probe(coarsest, config, max_w, probe_rng);
            results.push((cut, idx, p));
        }
    } else {
        // Strided ownership: worker w runs probes w, w + W, w + 2W, …
        // Assignment is static, so no coordination is needed and the
        // per-probe RNG guarantees scheduling cannot leak into results.
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for (w, chunk) in split_strided(&mut probe_rngs, workers)
                .into_iter()
                .enumerate()
            {
                handles.push(scope.spawn(move || {
                    chunk
                        .into_iter()
                        .enumerate()
                        .map(|(j, probe_rng)| {
                            let (cut, p) = restart_probe(coarsest, config, max_w, probe_rng);
                            (cut, w + j * workers, p)
                        })
                        .collect::<Vec<_>>()
                }));
            }
            for h in handles {
                results.extend(h.join().expect("restart probe panicked"));
            }
        });
    }
    let (_, _, part) = results
        .into_iter()
        .min_by_key(|&(cut, idx, _)| (cut, idx))
        .expect("at least one probe ran");
    part
}

/// Splits `items` into `workers` strided chunks of `&mut` references:
/// chunk `w` holds items `w, w + W, w + 2W, …` in that order.
fn split_strided<T>(items: &mut [T], workers: usize) -> Vec<Vec<&mut T>> {
    let mut chunks: Vec<Vec<&mut T>> = (0..workers).map(|_| Vec::new()).collect();
    for (i, item) in items.iter_mut().enumerate() {
        chunks[i % workers].push(item);
    }
    chunks
}

/// [`multilevel_kway`] on an already-frozen CSR view. Callers that probe
/// many configurations of the same graph (e.g. Algorithm 2's α sweep)
/// freeze once and call this.
///
/// # Panics
///
/// Panics if `k == 0` or `alpha < 1`.
#[must_use]
pub fn multilevel_kway_csr(g: &CsrGraph, config: &KwayConfig) -> Partition {
    multilevel_kway_csr_with(g, config, &mut KwayWorkspace::new())
}

/// [`multilevel_kway_csr`] with a caller-owned [`KwayWorkspace`] —
/// bit-identical results, allocation reuse across calls.
///
/// # Panics
///
/// Panics if `k == 0` or `alpha < 1`.
#[must_use]
pub fn multilevel_kway_csr_with(
    g: &CsrGraph,
    config: &KwayConfig,
    ws: &mut KwayWorkspace,
) -> Partition {
    multilevel_kway_csr_rebuild(g, config, ws, CoarseRebuild::default_mode())
}

/// [`multilevel_kway_csr_with`] with an explicit coarse-graph rebuild
/// strategy — a test hook for comparing the strategies' partition
/// quality under either feature configuration; production callers use
/// the build default.
#[doc(hidden)]
#[must_use]
pub fn multilevel_kway_csr_rebuild(
    g: &CsrGraph,
    config: &KwayConfig,
    ws: &mut KwayWorkspace,
    rebuild: CoarseRebuild,
) -> Partition {
    assert!(config.k >= 1, "k must be positive");
    assert!(config.alpha >= 1.0, "alpha must be at least 1");
    let mut rng = Rng::seed_from_u64(config.seed);
    if config.k == 1 || g.node_count() <= config.k {
        // Trivial cases: one part, or one node per part round-robin.
        let assignment = (0..g.node_count()).map(|i| i % config.k).collect();
        return Partition::new(assignment, config.k);
    }
    let max_w = weight_bound(g, config.k, config.alpha);
    let target_coarse = (config.k * 16).max(48);
    let levels = coarsen_to_csr_rebuild(g, target_coarse, &mut rng, &mut ws.coarsen, rebuild);

    let coarsest: &CsrGraph = levels.last().map_or(g, |l| &l.graph);
    let mut part = run_restarts(coarsest, config, max_w, &mut rng);

    // Project back through the hierarchy, refining at each level
    // (hill-climbing FM on the few coarsest levels small enough to
    // afford it — that is where the structural decisions are made;
    // greedy refinement polishes the finer projections).
    let mut fm_runs = 0usize;
    for level_idx in (0..levels.len()).rev() {
        let finer: &CsrGraph = if level_idx == 0 {
            g
        } else {
            &levels[level_idx - 1].graph
        };
        let map = &levels[level_idx].map;
        let assignment: Vec<usize> = (0..finer.node_count())
            .map(|i| part.part_of(map[i]))
            .collect();
        part = Partition::new(assignment, config.k);
        let _ = refine_csr_with(
            finer,
            &mut part,
            max_w,
            config.refine_passes,
            &mut rng,
            &mut ws.refine,
        );
        if finer.node_count() <= FM_LIMIT && fm_runs < 4 {
            let _ = fm_refine_csr_with(finer, &mut part, max_w, 2, &mut ws.refine);
            fm_runs += 1;
        }
    }
    if !part.is_balanced_csr(g, config.alpha) {
        let _ = rebalance_csr(g, &mut part, max_w, &mut rng);
        let _ = refine_csr_with(
            g,
            &mut part,
            max_w,
            config.refine_passes,
            &mut rng,
            &mut ws.refine,
        );
    }
    part
}

/// Convenience: partitions and reports `(partition, cut_weight,
/// imbalance)` in one call.
#[must_use]
pub fn partition_with_stats(g: &Graph, config: &KwayConfig) -> (Partition, i64, f64) {
    let p = multilevel_kway(g, config);
    let cut = p.cut_weight(g);
    let imb = p.imbalance(g);
    (p, cut, imb)
}

/// Checks structural sanity of a partition for distributed compilation:
/// parts should not be internally disconnected into many fragments
/// (fragmented parts compile poorly). Returns the total number of
/// connected fragments across parts (ideal = k).
#[must_use]
pub fn fragment_count(g: &Graph, p: &Partition) -> usize {
    p.parts()
        .iter()
        .map(|nodes| {
            if nodes.is_empty() {
                return 0;
            }
            let (sub, _) = g.induced_subgraph(nodes);
            algo::connected_components(&sub).1
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbqc_graph::generate;

    #[test]
    fn partitions_grid_balanced() {
        let g = generate::grid_graph(10, 10);
        for k in [2, 4, 8] {
            let p = multilevel_kway(&g, &KwayConfig::new(k));
            assert_eq!(p.k(), k);
            assert!(
                p.is_balanced(&g, 1.06),
                "k={k}: imbalance {}",
                p.imbalance(&g)
            );
            // A decent k-way cut of a 10×10 grid is near k·10 at worst.
            assert!(
                p.cut_weight(&g) <= (k as i64) * 14,
                "k={k}: cut {}",
                p.cut_weight(&g)
            );
        }
    }

    #[test]
    fn path_graph_cut_is_near_optimal() {
        let g = generate::path_graph(64);
        let p = multilevel_kway(&g, &KwayConfig::new(4));
        // Optimal cut for a path into 4 parts is 3.
        assert!(p.cut_weight(&g) <= 6, "cut {}", p.cut_weight(&g));
        assert!(p.is_balanced(&g, 1.1));
    }

    #[test]
    fn two_cliques_split_at_bridge() {
        // Two 8-cliques joined by one edge: the bridge is the only
        // sensible 2-way cut.
        let mut g = generate::complete_graph(8);
        let offset = 8;
        for i in 0..8usize {
            g.add_node();
            let _ = i;
        }
        for i in 0..8usize {
            for j in (i + 1)..8 {
                g.add_edge(NodeId::new(offset + i), NodeId::new(offset + j));
            }
        }
        g.add_edge(NodeId::new(0), NodeId::new(offset));
        let p = multilevel_kway(&g, &KwayConfig::new(2));
        assert_eq!(p.cut_weight(&g), 1, "must cut exactly the bridge");
    }

    #[test]
    fn k_equals_one_is_trivial() {
        let g = generate::grid_graph(4, 4);
        let p = multilevel_kway(&g, &KwayConfig::new(1));
        assert_eq!(p.cut_weight(&g), 0);
        assert_eq!(p.k(), 1);
    }

    #[test]
    fn more_parts_than_nodes() {
        let g = generate::path_graph(3);
        let p = multilevel_kway(&g, &KwayConfig::new(5));
        assert_eq!(p.k(), 5);
        assert_eq!(p.len(), 3);
    }

    #[test]
    fn deterministic_for_seed() {
        let g = generate::grid_graph(9, 9);
        let a = multilevel_kway(&g, &KwayConfig::new(4).with_seed(7));
        let b = multilevel_kway(&g, &KwayConfig::new(4).with_seed(7));
        assert_eq!(a, b);
    }

    #[test]
    fn restart_result_independent_of_worker_count() {
        // The tentpole determinism guarantee: same seed ⇒ bit-identical
        // partition with 1, 2, and 8 probe workers.
        let g = generate::grid_graph(10, 10);
        for restarts in [1usize, 3, 8] {
            let base = KwayConfig::new(4)
                .with_seed(13)
                .with_initial_restarts(restarts);
            let sequential = multilevel_kway(&g, &base.with_probe_workers(1));
            for workers in [2usize, 8] {
                let parallel = multilevel_kway(&g, &base.with_probe_workers(workers));
                assert_eq!(
                    sequential, parallel,
                    "restarts={restarts} workers={workers}"
                );
            }
        }
    }

    #[test]
    fn workspace_reuse_is_bit_identical() {
        let mut ws = KwayWorkspace::new();
        for dim in [6usize, 9, 8] {
            let g = generate::grid_graph(dim, dim);
            let csr = CsrGraph::from_graph(&g);
            let cfg = KwayConfig::new(3).with_seed(dim as u64);
            let fresh = multilevel_kway_csr(&csr, &cfg);
            let reused = multilevel_kway_csr_with(&csr, &cfg, &mut ws);
            assert_eq!(fresh, reused, "dim={dim}");
        }
    }

    #[test]
    fn csr_entry_point_matches_graph_entry_point() {
        let g = generate::grid_graph(8, 8);
        let csr = CsrGraph::from_graph(&g);
        let a = multilevel_kway(&g, &KwayConfig::new(4).with_seed(3));
        let b = multilevel_kway_csr(&csr, &KwayConfig::new(4).with_seed(3));
        assert_eq!(a, b);
    }

    #[test]
    fn relaxed_alpha_allows_smaller_cut() {
        // With α large the partitioner has at least as much freedom; the
        // cut should never get *worse* on a structured graph.
        let g = generate::grid_graph(8, 8);
        let tight = multilevel_kway(&g, &KwayConfig::new(4).with_alpha(1.01));
        let loose = multilevel_kway(&g, &KwayConfig::new(4).with_alpha(1.6));
        assert!(loose.cut_weight(&g) <= tight.cut_weight(&g) + 4);
    }

    #[test]
    fn fragment_count_ideal_on_grid() {
        let g = generate::grid_graph(8, 8);
        let p = multilevel_kway(&g, &KwayConfig::new(4));
        let frags = fragment_count(&g, &p);
        assert!(frags <= 6, "parts too fragmented: {frags}");
    }

    #[test]
    fn weighted_nodes_respected() {
        let mut g = generate::path_graph(10);
        g.set_node_weight(NodeId::new(0), 5);
        let p = multilevel_kway(&g, &KwayConfig::new(2).with_alpha(1.2));
        // total = 14, bound = ceil(1.2*7) = 9 ≥ every part.
        let w = p.part_weights(&g);
        assert!(w.iter().all(|&x| x <= 9), "{w:?}");
    }
}
