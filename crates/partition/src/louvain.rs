//! Louvain community detection (Blondel et al. 2008).
//!
//! The modularity-maximizing extreme of the paper's trade-off space:
//! community detection produces high-quality subgraph structure but
//! guarantees neither the number of parts nor balance (Section IV-A
//! discusses why neither pure approach suffices). Used here for
//! comparison/ablation against the adaptive algorithm.
//!
//! The local-move phase iterates CSR slices and accumulates
//! neighbor-community weights in a stamped scratch array (one allocation
//! per level, none per node visit) instead of the seed's per-node
//! `BTreeMap`; candidate communities are still examined in ascending
//! order, so the move choices are unchanged.

use mbqc_graph::{CsrGraph, Graph, NodeId};
use mbqc_util::Rng;

use crate::Partition;

/// Scratch state for one local-move phase: per-community accumulated
/// weight, with a stamp array marking which entries belong to the
/// current node visit.
struct NeighborWeights {
    weight_to: Vec<f64>,
    stamp: Vec<u32>,
    touched: Vec<usize>,
    visit: u32,
}

impl NeighborWeights {
    fn new(n: usize) -> Self {
        Self {
            weight_to: vec![0.0; n],
            stamp: vec![0; n],
            touched: Vec::with_capacity(64),
            visit: 0,
        }
    }

    /// Starts a new node visit, logically clearing all entries in O(1).
    fn begin_visit(&mut self) {
        self.visit = self.visit.wrapping_add(1);
        self.touched.clear();
    }

    #[inline]
    fn add(&mut self, community: usize, w: f64) {
        if self.stamp[community] == self.visit {
            self.weight_to[community] += w;
        } else {
            self.stamp[community] = self.visit;
            self.weight_to[community] = w;
            self.touched.push(community);
        }
    }

    #[inline]
    fn get(&self, community: usize) -> f64 {
        if self.stamp[community] == self.visit {
            self.weight_to[community]
        } else {
            0.0
        }
    }

    /// Sorts the touched-community list ascending (matching the
    /// `BTreeMap` iteration order of the reference implementation).
    fn sort_touched(&mut self) {
        self.touched.sort_unstable();
    }
}

/// One local-move phase of Louvain on `g`; returns the community
/// assignment and whether anything moved.
///
/// `self_loops[i]` carries the intra-weight a super-node absorbed during
/// aggregation (our [`Graph`] forbids literal self-loops); it contributes
/// `2·w` to the node's degree, exactly as a self-loop would.
fn local_moves(g: &CsrGraph, self_loops: &[i64], rng: &mut Rng) -> (Vec<usize>, bool) {
    let n = g.node_count();
    let m2 = (g.total_edge_weight() + self_loops.iter().sum::<i64>()) as f64 * 2.0; // 2m
    let mut community: Vec<usize> = (0..n).collect();
    // Σ_tot per community (sum of weighted degrees incl. self-loops).
    let mut sigma_tot: Vec<f64> = (0..n)
        .map(|i| (g.weighted_degree(NodeId::new(i)) + 2 * self_loops[i]) as f64)
        .collect();
    let mut improved_any = false;
    let mut order: Vec<usize> = (0..n).collect();
    let mut scratch = NeighborWeights::new(n);
    loop {
        let mut moved = false;
        rng.shuffle(&mut order);
        for &i in &order {
            let u = NodeId::new(i);
            let ki = (g.weighted_degree(u) + 2 * self_loops[i]) as f64;
            let own = community[i];
            // Weight from u to each adjacent community.
            scratch.begin_visit();
            for (v, w) in g.adj(u) {
                scratch.add(community[v.index()], w as f64);
            }
            let k_i_own = scratch.get(own);
            // Remove u from its community.
            sigma_tot[own] -= ki;
            // Best destination by modularity gain:
            // ΔQ ∝ k_{i,c} − k_i · Σ_tot(c) / 2m.
            let mut best = (own, k_i_own - ki * sigma_tot[own] / m2);
            scratch.sort_touched();
            for ti in 0..scratch.touched.len() {
                let c = scratch.touched[ti];
                if c == own {
                    continue;
                }
                let gain = scratch.get(c) - ki * sigma_tot[c] / m2;
                if gain > best.1 + 1e-12 {
                    best = (c, gain);
                }
            }
            sigma_tot[best.0] += ki;
            if best.0 != own {
                community[i] = best.0;
                moved = true;
                improved_any = true;
            }
        }
        if !moved {
            break;
        }
    }
    (community, improved_any)
}

/// Compacts community labels to `0..k` and returns `k`.
fn compact(labels: &mut [usize]) -> usize {
    let mut map = std::collections::HashMap::new();
    let mut next = 0usize;
    for l in labels.iter_mut() {
        let id = *map.entry(*l).or_insert_with(|| {
            let id = next;
            next += 1;
            id
        });
        *l = id;
    }
    next
}

/// Aggregates `current` by community labels: one coarse node per
/// community, intra-community weight folded into `self_loops`.
fn aggregate(
    current: &CsrGraph,
    labels: &[usize],
    self_loops: &[i64],
    k: usize,
) -> (CsrGraph, Vec<i64>) {
    let mut agg_weights = vec![0i64; k];
    let mut agg_loops = vec![0i64; k];
    for i in 0..current.node_count() {
        agg_weights[labels[i]] += current.node_weight(NodeId::new(i));
        agg_loops[labels[i]] += self_loops[i];
    }
    let mut builder =
        mbqc_graph::csr::CsrBuilder::with_edge_capacity(agg_weights, current.edge_count() / 2);
    for (a, b, w) in current.edges() {
        let (ca, cb) = (labels[a.index()], labels[b.index()]);
        if ca == cb {
            agg_loops[ca] += w;
        } else {
            builder.add_edge(NodeId::new(ca), NodeId::new(cb), w);
        }
    }
    (builder.build(), agg_loops)
}

/// Runs Louvain community detection to convergence.
///
/// Returns a [`Partition`] with a data-driven number of parts
/// (`k = number of communities found`). Deterministic given the seed.
///
/// # Examples
///
/// ```
/// use mbqc_graph::generate;
/// use mbqc_partition::louvain::louvain;
/// use mbqc_util::Rng;
///
/// let g = generate::grid_graph(8, 8);
/// let p = louvain(&g, &mut Rng::seed_from_u64(1));
/// assert!(p.k() >= 2);
/// ```
#[must_use]
pub fn louvain(g: &Graph, rng: &mut Rng) -> Partition {
    louvain_csr(&CsrGraph::from_graph(g), rng)
}

/// [`louvain`] on an already-frozen CSR view.
#[must_use]
pub fn louvain_csr(g: &CsrGraph, rng: &mut Rng) -> Partition {
    let n = g.node_count();
    if n == 0 {
        return Partition::new(Vec::new(), 1);
    }
    if g.edge_count() == 0 {
        return Partition::trivial(n);
    }
    // fine-node → community of the current (aggregated) level.
    let mut membership: Vec<usize> = (0..n).collect();
    let mut current = g.clone();
    let mut self_loops = vec![0i64; n];
    loop {
        let (mut labels, improved) = local_moves(&current, &self_loops, rng);
        let k = compact(&mut labels);
        // Fold into the fine membership.
        for m in membership.iter_mut() {
            *m = labels[*m];
        }
        if !improved || k == current.node_count() {
            break;
        }
        // Aggregate: one node per community. Intra-community weight
        // (including absorbed self-loops) becomes the super-node's
        // self-loop, which keeps degrees — and hence modularity gains —
        // exact at the next level.
        let (agg, agg_loops) = aggregate(&current, &labels, &self_loops, k);
        if agg.edge_count() == 0 {
            break;
        }
        current = agg;
        self_loops = agg_loops;
    }
    let k = compact(&mut membership);
    Partition::new(membership, k.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modularity::modularity;
    use mbqc_graph::generate;

    /// Ring of `c` cliques of size `s`, adjacent cliques joined by one
    /// edge — the classic community-detection benchmark.
    fn ring_of_cliques(c: usize, s: usize) -> Graph {
        let mut g = Graph::with_nodes(c * s);
        for q in 0..c {
            for i in 0..s {
                for j in (i + 1)..s {
                    g.add_edge(NodeId::new(q * s + i), NodeId::new(q * s + j));
                }
            }
        }
        for q in 0..c {
            let next = (q + 1) % c;
            g.add_edge(NodeId::new(q * s), NodeId::new(next * s + 1));
        }
        g
    }

    #[test]
    fn finds_cliques_in_ring() {
        let g = ring_of_cliques(6, 5);
        let mut rng = Rng::seed_from_u64(1);
        let p = louvain(&g, &mut rng);
        // Each clique should be one community (or occasionally merged
        // pairs); modularity must be high.
        let q = modularity(&g, &p);
        assert!(q > 0.6, "Q = {q}, k = {}", p.k());
        assert!((4..=7).contains(&p.k()), "k = {}", p.k());
        // Every clique is internally coherent: all nodes of clique 0
        // share a community.
        let c0 = p.part_of(NodeId::new(0));
        for i in 1..5 {
            assert_eq!(p.part_of(NodeId::new(i)), c0);
        }
    }

    #[test]
    fn beats_or_matches_naive_split_on_modularity() {
        let g = ring_of_cliques(4, 4);
        let mut rng = Rng::seed_from_u64(2);
        let p = louvain(&g, &mut rng);
        let naive = Partition::new((0..16).map(|i| i / 8).collect(), 2);
        assert!(modularity(&g, &p) >= modularity(&g, &naive));
    }

    #[test]
    fn edgeless_graph_is_one_community() {
        let g = Graph::with_nodes(5);
        let mut rng = Rng::seed_from_u64(3);
        let p = louvain(&g, &mut rng);
        assert_eq!(p.k(), 1);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::new();
        let mut rng = Rng::seed_from_u64(4);
        let p = louvain(&g, &mut rng);
        assert_eq!(p.len(), 0);
    }

    #[test]
    fn deterministic_for_seed() {
        let g = generate::grid_graph(7, 7);
        let a = louvain(&g, &mut Rng::seed_from_u64(9));
        let b = louvain(&g, &mut Rng::seed_from_u64(9));
        assert_eq!(a, b);
    }

    #[test]
    fn grid_communities_are_spatial() {
        let g = generate::grid_graph(10, 10);
        let mut rng = Rng::seed_from_u64(5);
        let p = louvain(&g, &mut rng);
        let q = modularity(&g, &p);
        assert!(q > 0.5, "grid Louvain modularity {q}");
    }
}
