//! Algorithm 2: adaptive graph partitioning.
//!
//! The paper's partitioner navigates the balance–modularity trade-off:
//! it starts from a perfectly balanced k-way partition (`α = 1`) and
//! iteratively relaxes the balance constraint by a multiplicative step
//! `γ`, accepting a new partition only while modularity keeps improving
//! by more than `ε_Q`, and stopping at stagnation or at the maximum
//! imbalance `α_max`.

use mbqc_graph::{CsrGraph, Graph};

use crate::kway::{multilevel_kway_csr_with, KwayConfig, KwayWorkspace};
use crate::modularity::modularity_csr;
use crate::Partition;

/// Parameters of Algorithm 2. Paper defaults: `ε_Q = 0.01`, `γ = 1.02`,
/// `α_max = 1.5`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveConfig {
    /// Number of parts (QPUs).
    pub k: usize,
    /// Modularity improvement threshold `ε_Q`.
    pub epsilon_q: f64,
    /// Balance relaxation step `γ > 1`.
    pub gamma: f64,
    /// Maximum imbalance factor `α_max`.
    pub alpha_max: f64,
    /// RNG seed forwarded to the k-way partitioner.
    pub seed: u64,
    /// Safety cap on probe iterations (the paper's loop has no explicit
    /// cap; a deterministic partitioner can oscillate between two α
    /// values, so we bound the search).
    pub max_iters: usize,
    /// Restart-probe workers forwarded to the k-way partitioner (`0` =
    /// one per available core). With more than one effective worker the
    /// adaptive walk also probes the two candidate successors `α·γ` and
    /// `α/γ` concurrently, discarding the loser. Worker count never
    /// changes the result.
    pub probe_workers: usize,
}

impl AdaptiveConfig {
    /// Paper-default configuration for `k` parts.
    #[must_use]
    pub fn new(k: usize) -> Self {
        Self {
            k,
            epsilon_q: 0.01,
            gamma: 1.02,
            alpha_max: 1.5,
            seed: 42,
            max_iters: 64,
            probe_workers: 0,
        }
    }

    /// Sets `α_max` (the Figure 9 sweep parameter).
    #[must_use]
    pub fn with_alpha_max(mut self, alpha_max: f64) -> Self {
        self.alpha_max = alpha_max;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the number of restart-probe workers (`0` = auto).
    #[must_use]
    pub fn with_probe_workers(mut self, workers: usize) -> Self {
        self.probe_workers = workers;
        self
    }
}

/// One probe of the adaptive search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AdaptiveStep {
    /// Imbalance factor probed.
    pub alpha: f64,
    /// Modularity achieved.
    pub modularity: f64,
    /// Cut weight achieved.
    pub cut: i64,
}

/// Result of [`adaptive_partition`].
#[derive(Debug, Clone)]
pub struct AdaptiveResult {
    /// The best partition found (highest modularity).
    pub partition: Partition,
    /// Modularity of the best partition.
    pub modularity: f64,
    /// Cut weight of the best partition.
    pub cut: i64,
    /// The α that produced the best partition.
    pub alpha: f64,
    /// Full probe history, in search order.
    pub history: Vec<AdaptiveStep>,
}

/// Runs Algorithm 2 of the paper: probes partitions under a relaxing
/// balance factor, keeping the highest-modularity one.
///
/// # Panics
///
/// Panics if `k == 0`, `γ ≤ 1`, or `α_max < 1`.
///
/// # Examples
///
/// ```
/// use mbqc_graph::generate;
/// use mbqc_partition::adaptive::{adaptive_partition, AdaptiveConfig};
///
/// let g = generate::grid_graph(8, 8);
/// let r = adaptive_partition(&g, &AdaptiveConfig::new(4));
/// // Parts stay within the probed bound (ceil granularity included).
/// let bound = (r.alpha * 64.0 / 4.0).ceil() as i64;
/// assert!(r.partition.part_weights(&g).iter().all(|&w| w <= bound));
/// assert!(!r.history.is_empty());
/// ```
#[must_use]
pub fn adaptive_partition(g: &Graph, config: &AdaptiveConfig) -> AdaptiveResult {
    adaptive_partition_csr(&CsrGraph::from_graph(g), config)
}

/// [`adaptive_partition`] on an already-frozen CSR view — the graph is
/// frozen once and shared by every α probe of the search.
///
/// # Panics
///
/// Panics if `k == 0`, `γ ≤ 1`, or `α_max < 1`.
#[must_use]
pub fn adaptive_partition_csr(g: &CsrGraph, config: &AdaptiveConfig) -> AdaptiveResult {
    adaptive_partition_csr_with(g, config, &mut KwayWorkspace::new())
}

/// [`adaptive_partition_csr`] with a caller-owned [`KwayWorkspace`]
/// shared by every α probe of the search (and across searches when the
/// caller keeps the workspace) — bit-identical results.
///
/// # Panics
///
/// Panics if `k == 0`, `γ ≤ 1`, or `α_max < 1`.
#[must_use]
pub fn adaptive_partition_csr_with(
    g: &CsrGraph,
    config: &AdaptiveConfig,
    ws: &mut KwayWorkspace,
) -> AdaptiveResult {
    assert!(config.k >= 1, "k must be positive");
    assert!(config.gamma > 1.0, "gamma must exceed 1");
    assert!(config.alpha_max >= 1.0, "alpha_max must be at least 1");

    let mut alpha = 1.0f64;
    let mut best: Option<(Partition, f64, f64)> = None; // (partition, Q, alpha)
    let mut prev_q = -1.0f64;
    let mut history = Vec::new();
    // The partitioner is deterministic per (α, seed): memoize probes so
    // an oscillating α·γ / α/γ walk terminates via ΔQ = 0 instead of
    // re-partitioning until the iteration cap.
    let mut memo: std::collections::HashMap<u64, (Partition, f64)> =
        std::collections::HashMap::new();
    // Speculative α-probing: with a second worker available, each
    // iteration probes both candidate successors (α·γ capped at α_max,
    // and α/γ) concurrently before the ΔQ decision picks one — the
    // winner is already memoized when the next iteration needs it, the
    // loser is discarded (it stays in the memo, where an oscillating
    // walk may still consume it). Probes are deterministic per
    // (α, seed) and workspace-independent, so speculation is
    // bit-identical to the sequential walk: the history records only
    // visited αs, in the same order, with the same partitions.
    let workers = if config.probe_workers == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        config.probe_workers
    };
    let speculative = workers > 1;
    let mut spec_ws: Option<KwayWorkspace> = None;
    let probe = |a: f64, ws: &mut KwayWorkspace| {
        let kcfg = KwayConfig::new(config.k)
            .with_alpha(a)
            .with_seed(config.seed)
            .with_probe_workers(config.probe_workers);
        let p = multilevel_kway_csr_with(g, &kcfg, ws);
        let q = modularity_csr(g, &p);
        (p, q)
    };

    for _ in 0..config.max_iters {
        // At most two missing probes run per iteration (one per
        // workspace): the current α always wins a slot, then the
        // successors in up-then-down order.
        let mut targets: Vec<u64> = Vec::new();
        let mut candidates = vec![alpha];
        if speculative {
            candidates.push((alpha * config.gamma).min(config.alpha_max));
            candidates.push(alpha / config.gamma);
        }
        for a in candidates {
            let bits = a.to_bits();
            if targets.len() < 2 && !memo.contains_key(&bits) && !targets.contains(&bits) {
                targets.push(bits);
            }
        }
        match *targets.as_slice() {
            [] => {}
            [a] => {
                let r = probe(f64::from_bits(a), ws);
                memo.insert(a, r);
            }
            [a, b] => {
                let sw = spec_ws.get_or_insert_with(KwayWorkspace::new);
                let (ra, rb) = std::thread::scope(|s| {
                    let hb = s.spawn(|| probe(f64::from_bits(b), sw));
                    let ra = probe(f64::from_bits(a), ws);
                    (ra, hb.join().expect("speculative probe panicked"))
                });
                memo.insert(a, ra);
                memo.insert(b, rb);
            }
            _ => unreachable!("targets capped at two"),
        }
        let (p, q) = memo[&alpha.to_bits()].clone();
        history.push(AdaptiveStep {
            alpha,
            modularity: q,
            cut: p.cut_weight_csr(g),
        });
        if best.as_ref().is_none_or(|(_, bq, _)| q > *bq) {
            best = Some((p, q, alpha));
        }
        let delta = q - prev_q;
        prev_q = q;
        if delta > config.epsilon_q && alpha < config.alpha_max {
            alpha = (alpha * config.gamma).min(config.alpha_max);
        } else if delta < -config.epsilon_q {
            alpha /= config.gamma;
        } else {
            break;
        }
    }

    let (partition, q, alpha) = best.expect("at least one probe ran");
    let cut = partition.cut_weight_csr(g);
    AdaptiveResult {
        partition,
        modularity: q,
        cut,
        alpha,
        history,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbqc_graph::{generate, NodeId};

    #[test]
    fn probes_start_balanced() {
        let g = generate::grid_graph(8, 8);
        let r = adaptive_partition(&g, &AdaptiveConfig::new(4));
        assert!((r.history[0].alpha - 1.0).abs() < 1e-12);
    }

    #[test]
    fn best_modularity_is_max_of_history() {
        let g = generate::grid_graph(9, 9);
        let r = adaptive_partition(&g, &AdaptiveConfig::new(4));
        let max_q = r
            .history
            .iter()
            .map(|s| s.modularity)
            .fold(f64::NEG_INFINITY, f64::max);
        assert!((r.modularity - max_q).abs() < 1e-12);
    }

    #[test]
    fn result_respects_alpha_max() {
        let g = generate::grid_graph(8, 8);
        let cfg = AdaptiveConfig::new(4).with_alpha_max(1.5);
        let r = adaptive_partition(&g, &cfg);
        for s in &r.history {
            assert!(s.alpha <= 1.5 + 1e-9);
        }
        assert!(r.partition.is_balanced(&g, 1.5 + 1e-6));
    }

    #[test]
    fn unbalanced_communities_benefit_from_relaxation() {
        // Two cliques of sizes 13 and 11 with a single bridge,
        // partitioned into 2 parts. At α = 1 the bound is 12, so one
        // clique node must defect (splitting a clique); the first
        // relaxation step (α = 1.02 ⇒ bound 13) already allows the
        // natural 13 | 11 split, giving a modularity jump that
        // Algorithm 2's ΔQ > ε_Q test detects. (A jump reachable only
        // after many plateau steps would stop the search early — exactly
        // the stagnation behaviour the paper reports in Figure 9.)
        let sizes = [13usize, 11];
        let mut g = Graph::with_nodes(24);
        let mut start = 0;
        let mut blocks = Vec::new();
        for &s in &sizes {
            for i in start..start + s {
                for j in (i + 1)..start + s {
                    g.add_edge(NodeId::new(i), NodeId::new(j));
                }
            }
            blocks.push((start, start + s));
            start += s;
        }
        g.add_edge(NodeId::new(0), NodeId::new(13));
        let cfg = AdaptiveConfig::new(2).with_alpha_max(1.5);
        let r = adaptive_partition(&g, &cfg);
        // The best partition must not split either clique.
        for &(lo, hi) in &blocks {
            let p0 = r.partition.part_of(NodeId::new(lo));
            for i in lo..hi {
                assert_eq!(
                    r.partition.part_of(NodeId::new(i)),
                    p0,
                    "clique [{lo},{hi}) split"
                );
            }
        }
        assert_eq!(r.cut, 1, "only the bridge may be cut");
        assert!(r.alpha > 1.0, "relaxation never engaged: α = {}", r.alpha);
    }

    #[test]
    fn terminates_within_cap() {
        let g = generate::grid_graph(6, 6);
        let cfg = AdaptiveConfig {
            max_iters: 5,
            ..AdaptiveConfig::new(3)
        };
        let r = adaptive_partition(&g, &cfg);
        assert!(r.history.len() <= 5);
    }

    #[test]
    fn speculative_probing_is_bit_identical() {
        let g = generate::grid_graph(9, 9);
        // One worker disables speculation; four force it on even on a
        // single-core host.
        let seq = adaptive_partition(&g, &AdaptiveConfig::new(4).with_probe_workers(1));
        let spec = adaptive_partition(&g, &AdaptiveConfig::new(4).with_probe_workers(4));
        assert_eq!(seq.partition, spec.partition);
        assert_eq!(seq.history.len(), spec.history.len());
        for (a, b) in seq.history.iter().zip(&spec.history) {
            assert_eq!(a.alpha.to_bits(), b.alpha.to_bits());
            assert_eq!(a.modularity.to_bits(), b.modularity.to_bits());
            assert_eq!(a.cut, b.cut);
        }
        assert_eq!(seq.modularity.to_bits(), spec.modularity.to_bits());
        assert_eq!(seq.alpha.to_bits(), spec.alpha.to_bits());
        assert_eq!(seq.cut, spec.cut);
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generate::grid_graph(7, 7);
        let a = adaptive_partition(&g, &AdaptiveConfig::new(4).with_seed(5));
        let b = adaptive_partition(&g, &AdaptiveConfig::new(4).with_seed(5));
        assert_eq!(a.partition, b.partition);
        assert_eq!(a.history.len(), b.history.len());
    }

    #[test]
    #[should_panic(expected = "gamma must exceed 1")]
    fn bad_gamma_panics() {
        let g = generate::path_graph(4);
        let cfg = AdaptiveConfig {
            gamma: 1.0,
            ..AdaptiveConfig::new(2)
        };
        let _ = adaptive_partition(&g, &cfg);
    }
}
