//! Graph partitioning for DC-MBQC.
//!
//! The paper's workload-distribution stage (Section IV-A) partitions the
//! MBQC computation graph across QPUs, co-optimizing two competing
//! objectives: *minimized communication* (cut edges are costly inter-QPU
//! connections) and *preserved local structure* (high-modularity
//! subgraphs compile better on a single QPU). Its Algorithm 2 searches
//! the imbalance–modularity trade-off by repeatedly calling a balanced
//! k-way partitioner (METIS in the paper) under a relaxing balance
//! factor `α`.
//!
//! This crate implements the whole stack from scratch:
//!
//! * [`partition`] — the [`Partition`] type with cut/balance accounting.
//! * [`modularity`] — Newman modularity `Q`.
//! * [`coarsen`] / [`refine`] / [`kway`] — a multilevel k-way
//!   partitioner in the Karypis–Kumar style (heavy-edge matching,
//!   greedy graph growing, boundary refinement) standing in for METIS.
//!   The hot paths iterate frozen [`CsrGraph`](mbqc_graph::CsrGraph)
//!   slices and maintain per-node gain state incrementally
//!   ([`refine::GainTable`]).
//! * [`louvain`] — Louvain community detection (the modularity-first
//!   extreme of the trade-off, used for comparison).
//! * [`adaptive`] — the paper's Algorithm 2.
//! * [`reference`] — the pre-optimization adjacency-list implementation,
//!   kept as the equivalence-test oracle and benchmark baseline. Gated
//!   behind the `reference-impls` feature (on by default) so release
//!   consumers can compile without it (`default-features = false`).
//!
//! # Kernel design
//!
//! ## Adaptive word-parallel heavy-edge matching
//!
//! The matching pass ([`coarsen::heavy_edge_matching`]) is the dominant
//! fraction of `multilevel_kway` runtime — it touches every CSR row of
//! every coarsening level. It picks one of two bit-identical strategies
//! by level size. Below the threshold the mate array is L1-resident and
//! a plain scalar `mate[v].is_none()` probe is already as fast as a
//! load can be, so the pass runs the direct scalar scan with zero side
//! structures. At or above the threshold (`2^16` nodes — measured
//! break-even on grid graphs: parity at ~90k nodes, 1.1–1.4× at ~360k
//! depending on measurement-window load)
//! the mate array spills out of cache and the liveness probe switches
//! to a packed `u64` bitset (bit `i` set ⇔ node `i` unmatched), so one
//! cached word answers the probe for 64 nodes instead of one
//! `Option<NodeId>` load per neighbor. Both branches make exactly the
//! max-weight-then-smallest-index decisions of the preserved scalar
//! loop ([`coarsen::heavy_edge_matching_reference`]) and are **pinned
//! bit-identical** to it by a 256-case proptest over random graphs
//! including wide-weight and isolated-node corners (the bitset branch
//! is exercised directly via `coarsen::heavy_edge_matching_bitset`) —
//! identical mates mean identical coarse graphs mean identical
//! partitions.
//!
//! ## Decision-invariant driver plumbing
//!
//! The rest of the `multilevel_kway` win comes from changes that are
//! *provably invisible* to the move sequence and RNG stream, so the
//! partitioning proptests pin them for free:
//!
//! * **Hash-free coarse rebuild** — the mirrored rebuild reproduces
//!   the oracle's `add_edge_weighted` insertion order with a 3-pass
//!   bucket scatter + per-node stamp dedup instead of a dedup hash
//!   table (order depends only on the fine-edge scan, not on how
//!   duplicates are detected).
//! * **Boundary-flag refinement** — greedy refinement skips nodes
//!   where no part's connectivity beats the home part's; such nodes
//!   can never yield a positive-gain move, and the flag is maintained
//!   exactly (recomputed for the mover and its neighbors only).
//! * **Active-candidate FM** — the FM selection scan walks a compact
//!   unlocked-boundary list with an explicit
//!   (gain, lowest-index, lowest-part) tie-break key, reproducing the
//!   ascending full-array scan's choice without its O(n)-per-move
//!   flag sweep.
//! * **Workspace reuse everywhere** — coarsening scratch, the
//!   connectivity [`refine::GainTable`], and the FM buffers live in
//!   [`kway::KwayWorkspace`] and survive across levels and calls.
//!
//! # Examples
//!
//! ```
//! use mbqc_graph::generate;
//! use mbqc_partition::{adaptive, kway};
//!
//! let g = generate::grid_graph(10, 10);
//! let cfg = adaptive::AdaptiveConfig::new(4);
//! let result = adaptive::adaptive_partition(&g, &cfg);
//! assert_eq!(result.partition.k(), 4);
//! assert!(result.modularity > 0.3);
//! ```

pub mod adaptive;
pub mod coarsen;
pub mod kway;
pub mod louvain;
pub mod modularity;
pub mod partition;
#[cfg(feature = "reference-impls")]
pub mod reference;
pub mod refine;

pub use adaptive::{
    adaptive_partition, adaptive_partition_csr, adaptive_partition_csr_with, AdaptiveConfig,
};
pub use kway::{
    multilevel_kway, multilevel_kway_csr, multilevel_kway_csr_with, resolve_workers, KwayConfig,
    KwayWorkspace,
};
pub use partition::{Partition, PartitionView};
