//! Graph partitioning for DC-MBQC.
//!
//! The paper's workload-distribution stage (Section IV-A) partitions the
//! MBQC computation graph across QPUs, co-optimizing two competing
//! objectives: *minimized communication* (cut edges are costly inter-QPU
//! connections) and *preserved local structure* (high-modularity
//! subgraphs compile better on a single QPU). Its Algorithm 2 searches
//! the imbalance–modularity trade-off by repeatedly calling a balanced
//! k-way partitioner (METIS in the paper) under a relaxing balance
//! factor `α`.
//!
//! This crate implements the whole stack from scratch:
//!
//! * [`partition`] — the [`Partition`] type with cut/balance accounting.
//! * [`modularity`] — Newman modularity `Q`.
//! * [`coarsen`] / [`refine`] / [`kway`] — a multilevel k-way
//!   partitioner in the Karypis–Kumar style (heavy-edge matching,
//!   greedy graph growing, boundary refinement) standing in for METIS.
//!   The hot paths iterate frozen [`CsrGraph`](mbqc_graph::CsrGraph)
//!   slices and maintain per-node gain state incrementally
//!   ([`refine::GainTable`]).
//! * [`louvain`] — Louvain community detection (the modularity-first
//!   extreme of the trade-off, used for comparison).
//! * [`adaptive`] — the paper's Algorithm 2.
//! * [`reference`] — the pre-optimization adjacency-list implementation,
//!   kept as the equivalence-test oracle and benchmark baseline. Gated
//!   behind the `reference-impls` feature (on by default) so release
//!   consumers can compile without it (`default-features = false`).
//!
//! # Examples
//!
//! ```
//! use mbqc_graph::generate;
//! use mbqc_partition::{adaptive, kway};
//!
//! let g = generate::grid_graph(10, 10);
//! let cfg = adaptive::AdaptiveConfig::new(4);
//! let result = adaptive::adaptive_partition(&g, &cfg);
//! assert_eq!(result.partition.k(), 4);
//! assert!(result.modularity > 0.3);
//! ```

pub mod adaptive;
pub mod coarsen;
pub mod kway;
pub mod louvain;
pub mod modularity;
pub mod partition;
#[cfg(feature = "reference-impls")]
pub mod reference;
pub mod refine;

pub use adaptive::{
    adaptive_partition, adaptive_partition_csr, adaptive_partition_csr_with, AdaptiveConfig,
};
pub use kway::{
    multilevel_kway, multilevel_kway_csr, multilevel_kway_csr_with, resolve_workers, KwayConfig,
    KwayWorkspace,
};
pub use partition::Partition;
