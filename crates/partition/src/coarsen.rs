//! Multilevel coarsening via heavy-edge matching (Karypis–Kumar).
//!
//! Two parallel implementations live here: the original [`Graph`]-based
//! one (kept for its tests and for callers holding a mutable graph), and
//! the CSR-native one the multilevel driver uses. Both produce identical
//! hierarchies for the same RNG: matching visits nodes in the same order,
//! and the coarse adjacency lists replicate the first-encounter insertion
//! order of `Graph::add_edge_weighted`. The CSR path fuses the visit-order
//! construction (shuffle, per-node key build, stable descending sort)
//! into a single pass over the candidate edges plus the Fisher–Yates
//! walk itself — pinned bit-identical to the separate-pass formulation.

use mbqc_graph::{CsrGraph, Graph, NodeId};
use mbqc_util::Rng;

/// One level of the coarsening hierarchy.
#[derive(Debug, Clone)]
pub struct CoarseLevel {
    /// The coarser graph (node weights are sums, edge weights merge).
    pub graph: Graph,
    /// Mapping fine node → coarse node.
    pub map: Vec<NodeId>,
}

/// Performs one round of heavy-edge matching: visits nodes in order of
/// decreasing heaviest incident edge (random tie-break), matching each
/// unmatched node with its unmatched neighbor of maximum edge weight;
/// matched pairs collapse into one coarse node.
///
/// Returns `None` when no edge could be matched (the graph cannot shrink
/// further this way).
#[must_use]
pub fn coarsen_once(g: &Graph, rng: &mut Rng) -> Option<CoarseLevel> {
    let n = g.node_count();
    let mut order: Vec<usize> = (0..n).collect();
    rng.shuffle(&mut order);
    // Heaviest-incident-edge-first visiting makes heavy edges reliably
    // collapse (the property that gives HEM its name and quality).
    let key: Vec<i64> = (0..n)
        .map(|i| {
            g.neighbors_weighted(NodeId::new(i))
                .iter()
                .map(|&(_, w)| w)
                .max()
                .unwrap_or(0)
        })
        .collect();
    order.sort_by_key(|&i| std::cmp::Reverse(key[i]));
    let mut mate: Vec<Option<NodeId>> = vec![None; n];
    let mut matched_any = false;
    for &i in &order {
        let u = NodeId::new(i);
        if mate[i].is_some() {
            continue;
        }
        let best = g
            .neighbors_weighted(u)
            .iter()
            .filter(|(v, _)| mate[v.index()].is_none() && *v != u)
            .max_by_key(|(v, w)| (*w, std::cmp::Reverse(v.index())));
        if let Some(&(v, _)) = best {
            mate[i] = Some(v);
            mate[v.index()] = Some(u);
            matched_any = true;
        }
    }
    if !matched_any {
        return None;
    }
    // Assign coarse ids: the lower-index endpoint of each pair owns it.
    let mut map = vec![NodeId::new(0); n];
    let mut coarse = Graph::new();
    for i in 0..n {
        let u = NodeId::new(i);
        match mate[i] {
            Some(v) if v.index() < i => {
                map[i] = map[v.index()]; // already created by the partner
            }
            Some(v) => {
                let id = coarse.add_node_weighted(g.node_weight(u) + g.node_weight(v));
                map[i] = id;
            }
            None => {
                let id = coarse.add_node_weighted(g.node_weight(u));
                map[i] = id;
            }
        }
    }
    for (a, b, w) in g.edges() {
        let (ca, cb) = (map[a.index()], map[b.index()]);
        if ca != cb {
            coarse.add_edge_weighted(ca, cb, w);
        }
    }
    Some(CoarseLevel { graph: coarse, map })
}

/// Coarsens until the graph has at most `target_nodes` nodes or no round
/// shrinks it by at least ~10%. Returns the hierarchy from finest to
/// coarsest (empty if the input is already small enough).
#[must_use]
pub fn coarsen_to(g: &Graph, target_nodes: usize, rng: &mut Rng) -> Vec<CoarseLevel> {
    let mut levels: Vec<CoarseLevel> = Vec::new();
    let mut current = g.clone();
    while current.node_count() > target_nodes {
        let Some(level) = coarsen_once(&current, rng) else {
            break;
        };
        let shrink = level.graph.node_count() as f64 / current.node_count() as f64;
        current = level.graph.clone();
        levels.push(level);
        if shrink > 0.9 {
            break; // diminishing returns (e.g. star graphs)
        }
    }
    levels
}

/// One level of the CSR coarsening hierarchy.
#[derive(Debug, Clone)]
pub struct CsrLevel {
    /// The coarser graph (node weights are sums, edge weights merge).
    pub graph: CsrGraph,
    /// Mapping fine node → coarse node.
    pub map: Vec<NodeId>,
}

/// How the coarse graph's adjacency is rebuilt after matching.
///
/// The two strategies produce the same coarse *edge set* with the same
/// merged weights; they differ only in per-node neighbor order, which
/// downstream random tie-breaks observe — so each is deterministic,
/// but they yield different (equal-quality) partitions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoarseRebuild {
    /// Replicate the first-encounter insertion order of
    /// `Graph::add_edge_weighted` with a hash-free bucket scatter —
    /// the order the `reference-impls` oracle produces, kept so the
    /// CSR hierarchy stays bit-identical to the adjacency-list
    /// reference.
    MirrorInsertion,
    /// Contract per coarse node: walk each coarse node's (at most two)
    /// fine members and accumulate their neighbors with a flat marker
    /// array, emitting the CSR arrays directly. No global dedup hash
    /// table, no second counting pass — the cheaper rebuild used when
    /// the oracle is compiled out and there is no insertion order left
    /// to mirror.
    Contracted,
}

impl CoarseRebuild {
    /// The build's default strategy: mirror the oracle's insertion
    /// order while `reference-impls` is compiled in (the equivalence
    /// proptests pin against it), contract directly once it is not.
    #[must_use]
    pub fn default_mode() -> Self {
        if cfg!(feature = "reference-impls") {
            CoarseRebuild::MirrorInsertion
        } else {
            CoarseRebuild::Contracted
        }
    }
}

/// Reusable scratch for the CSR coarsening hot path: the matching
/// buffers, the rebuild scatter arrays, and the contraction marker
/// arrays survive across levels and across whole partitioning calls,
/// so repeated compilations stop re-allocating the coarsening
/// hierarchy machinery.
#[derive(Debug, Default)]
pub struct CoarsenWorkspace {
    order: Vec<usize>,
    key: Vec<i64>,
    mate: Vec<Option<NodeId>>,
    /// Packed matched-state bitset for the word-parallel matching scan:
    /// bit `i` set ⇔ node `i` is still unmatched.
    unmatched: Vec<u64>,
    counts: Vec<u32>,
    sorted: Vec<usize>,
    /// Mirrored-rebuild scratch: surviving coarse edges `(ca, cb, w)` in
    /// fine-scan order.
    pairs: Vec<(u32, u32, i64)>,
    /// Mirrored-rebuild scratch: per-coarse-node bucket cursors.
    cursor: Vec<u32>,
    /// Mirrored-rebuild scratch: scattered half-edge targets.
    half_nb: Vec<u32>,
    /// Mirrored-rebuild scratch: scattered half-edge weights.
    half_w: Vec<i64>,
    /// Per-coarse-node fine members `(a, b)` (`b == u32::MAX` for
    /// singletons), rebuilt every round.
    fine_of: Vec<(u32, u32)>,
    /// Rebuild scratch: per-coarse-node last-visitor stamp.
    mark: Vec<u32>,
    /// Rebuild scratch: coarse neighbor → adjacency slot.
    pos: Vec<u32>,
}

impl CoarsenWorkspace {
    /// An empty workspace; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// CSR-native [`coarsen_once`]: one round of heavy-edge matching on a
/// frozen graph. Identical matching decisions to the `Graph` version for
/// the same RNG state.
///
/// Returns `None` when no edge could be matched.
#[must_use]
pub fn coarsen_once_csr(g: &CsrGraph, rng: &mut Rng) -> Option<CsrLevel> {
    coarsen_once_csr_with(g, rng, &mut CoarsenWorkspace::new())
}

/// [`coarsen_once_csr`] with caller-owned scratch buffers — bit-identical
/// results, zero steady-state allocation for the matching pass. Uses
/// the build's default [`CoarseRebuild`] strategy.
#[must_use]
pub fn coarsen_once_csr_with(
    g: &CsrGraph,
    rng: &mut Rng,
    ws: &mut CoarsenWorkspace,
) -> Option<CsrLevel> {
    coarsen_once_csr_rebuild(g, rng, ws, CoarseRebuild::default_mode())
}

/// [`coarsen_once_csr_with`] with an explicit coarse-graph rebuild
/// strategy (the default-mode entry points are what production callers
/// use; an explicit mode lets tests compare the strategies directly in
/// either feature configuration).
#[must_use]
pub fn coarsen_once_csr_rebuild(
    g: &CsrGraph,
    rng: &mut Rng,
    ws: &mut CoarsenWorkspace,
    rebuild: CoarseRebuild,
) -> Option<CsrLevel> {
    let n = g.node_count();
    // Heaviest-incident-edge-first visiting makes heavy edges reliably
    // collapse (the property that gives HEM its name and quality). The
    // shuffle (random tie-break), per-node key build, and stable
    // descending sort are fused: one pass over the candidate edges
    // computes every key *and* the counting-sort histogram, and the
    // Fisher–Yates walk scatters each slot into its bucket the moment
    // it is finalized — semantically `shuffle(order)` followed by
    // `order.sort_by_key(|&i| Reverse(key[i]))`, drawing the same RNG
    // values and producing the same order bit for bit.
    const COUNTING_MAX: i64 = 4096;
    let key = &mut ws.key;
    key.clear();
    let counts = &mut ws.counts;
    counts.clear();
    let mut countable = true;
    for i in 0..n {
        let k = g
            .neighbor_weights(NodeId::new(i))
            .iter()
            .copied()
            .max()
            .unwrap_or(0);
        key.push(k);
        if !(0..COUNTING_MAX).contains(&k) {
            countable = false;
        }
        if countable {
            let bucket = k as usize;
            if counts.len() <= bucket {
                counts.resize(bucket + 1, 0);
            }
            counts[bucket] += 1;
        }
    }
    let order = &mut ws.order;
    order.clear();
    order.extend(0..n);
    if countable {
        // Suffix sums turn per-key counts into descending-bucket *end*
        // offsets: counts[v] = #elements with key ≥ v.
        let mut acc = 0u32;
        for c in counts.iter_mut().rev() {
            acc += *c;
            *c = acc;
        }
        let sorted = &mut ws.sorted;
        sorted.clear();
        sorted.resize(n, 0);
        // Fisher–Yates finalizes order[i] at step i (i descending), so
        // each element scatters immediately; filling buckets back to
        // front while walking the shuffled order back to front keeps
        // equal keys in shuffled order — the stable-sort tie-break.
        let place = |e: usize, sorted: &mut Vec<usize>, counts: &mut Vec<u32>| {
            let slot = &mut counts[key[e] as usize];
            *slot -= 1;
            sorted[*slot as usize] = e;
        };
        for i in (1..n).rev() {
            let j = rng.range(i + 1);
            order.swap(i, j);
            place(order[i], sorted, counts);
        }
        if n > 0 {
            place(order[0], sorted, counts);
        }
        std::mem::swap(order, sorted);
    } else {
        // Key range too wide for counting buckets: plain shuffle +
        // stable comparison sort (identical semantics, rare path).
        rng.shuffle(order);
        order.sort_by_key(|&i| std::cmp::Reverse(key[i]));
    }
    let matched_any = heavy_edge_matching(g, &ws.order, &mut ws.mate, &mut ws.unmatched);
    let mate = &ws.mate;
    if !matched_any {
        return None;
    }
    // Assign coarse ids: the lower-index endpoint of each pair owns it.
    // `fine_of` records each coarse node's (≤ 2) fine members for the
    // contracted rebuild. `map` is built by pushing (each entry is
    // final when reached — a matched partner with a lower index was
    // already assigned), skipping the zero-fill an indexed write-out
    // would need; it is owned by the returned level, so it is the one
    // per-level allocation that cannot live in the workspace.
    let mut map: Vec<NodeId> = Vec::with_capacity(n);
    let mut coarse_weights: Vec<i64> = Vec::with_capacity(n);
    let fine_of = &mut ws.fine_of;
    fine_of.clear();
    for (i, &mate_i) in mate.iter().enumerate() {
        let u = NodeId::new(i);
        match mate_i {
            Some(v) if v.index() < i => {
                let c = map[v.index()]; // already created by the partner
                map.push(c);
                fine_of[c.index()].1 = i as u32;
            }
            Some(v) => {
                map.push(NodeId::new(coarse_weights.len()));
                coarse_weights.push(g.node_weight(u) + g.node_weight(v));
                fine_of.push((i as u32, u32::MAX));
            }
            None => {
                map.push(NodeId::new(coarse_weights.len()));
                coarse_weights.push(g.node_weight(u));
                fine_of.push((i as u32, u32::MAX));
            }
        }
    }
    let graph = match rebuild {
        CoarseRebuild::MirrorInsertion => rebuild_mirrored(g, &map, coarse_weights, ws),
        CoarseRebuild::Contracted => {
            let fine_of = std::mem::take(&mut ws.fine_of);
            let graph = rebuild_contracted(g, &map, &fine_of, coarse_weights, ws);
            ws.fine_of = fine_of;
            graph
        }
    };
    Some(CsrLevel { graph, map })
}

/// Node count at which [`heavy_edge_matching`] switches its liveness
/// probes from the `Option<NodeId>` mate array to the packed bitset.
/// Below it the mate array (8 bytes per node) is cache-resident and a
/// direct load beats the bitset's shift–mask chain; above it shuffled
/// visit orders turn every mate probe into a cache miss while the
/// bitset (1 *bit* per node — ~12 KiB per 100k nodes) stays hot.
/// Measured break-even on the tracked workloads: the bitset costs ~6%
/// on the QFT-36 levels (~3k nodes) and wins 1.1–1.4× on a 360k-node
/// grid (the spread is measurement-window load on the shared box).
const WORD_PARALLEL_MIN_NODES: usize = 1 << 16;

/// One round of heavy-edge matching over a frozen CSR graph, visiting
/// nodes in `order`: each still-unmatched node pairs with its unmatched
/// neighbor of maximum edge weight (smallest index on ties). Fills
/// `mate` (resized to the node count) and returns whether any pair
/// matched.
///
/// Adaptive probe strategy: levels below
/// [`WORD_PARALLEL_MIN_NODES`](self) scan with direct mate-array
/// probes (the scalar reference loop — fastest when the array is
/// cache-resident); larger levels take the word-parallel bitset pass
/// ([`heavy_edge_matching_bitset`]). Both branches make identical
/// max-weight-then-smallest-index decisions, so the output is
/// bit-identical to [`heavy_edge_matching_reference`] at every size —
/// pinned by proptest on both branches.
pub fn heavy_edge_matching(
    g: &CsrGraph,
    order: &[usize],
    mate: &mut Vec<Option<NodeId>>,
    unmatched: &mut Vec<u64>,
) -> bool {
    let n = g.node_count();
    if n >= WORD_PARALLEL_MIN_NODES {
        return heavy_edge_matching_bitset(g, order, mate, unmatched);
    }
    mate.clear();
    mate.resize(n, None);
    let mut matched_any = false;
    for &i in order {
        if mate[i].is_some() {
            continue;
        }
        let u = NodeId::new(i);
        let neighbors = g.neighbors(u);
        let weights = g.neighbor_weights(u);
        let mut bw = i64::MIN;
        let mut bv = usize::MAX;
        for (j, &v) in neighbors.iter().enumerate() {
            let vi = v.index();
            if vi == i || mate[vi].is_some() {
                continue;
            }
            let w = weights[j];
            if w > bw || (w == bw && vi < bv) {
                bw = w;
                bv = vi;
            }
        }
        if bv == usize::MAX {
            continue;
        }
        mate[i] = Some(NodeId::new(bv));
        mate[bv] = Some(u);
        matched_any = true;
    }
    matched_any
}

/// The word-parallel branch of [`heavy_edge_matching`]: the matched
/// state lives in `unmatched`, a packed `u64` bitset (bit `i` set ⇔
/// node `i` unmatched), so one cached word answers the liveness probe
/// for 64 nodes — the whole matching state for a 100k-node level is
/// ~12 KiB instead of the 800 KiB `Option<NodeId>` array the scalar
/// pass probes, which keeps shuffled-order probes inside L1/L2 on
/// levels where mate-array probes thrash. `mate` is write-only here;
/// every liveness read is a bitset word.
///
/// Exposed (hidden) so the equivalence proptest can pin this branch
/// directly on small random graphs, below the adaptive threshold.
#[doc(hidden)]
pub fn heavy_edge_matching_bitset(
    g: &CsrGraph,
    order: &[usize],
    mate: &mut Vec<Option<NodeId>>,
    unmatched: &mut Vec<u64>,
) -> bool {
    let n = g.node_count();
    mate.clear();
    mate.resize(n, None);
    unmatched.clear();
    unmatched.resize(n.div_ceil(64), !0u64);
    if !n.is_multiple_of(64) {
        // Clear the tail bits past node n-1 (never probed, kept zero so
        // the bitset is exactly the unmatched set).
        *unmatched.last_mut().unwrap() = (1u64 << (n % 64)) - 1;
    }
    let mut matched_any = false;
    for &i in order {
        if (unmatched[i >> 6] >> (i & 63)) & 1 == 0 {
            continue;
        }
        let u = NodeId::new(i);
        let neighbors = g.neighbors(u);
        let weights = g.neighbor_weights(u);
        // Same running (max weight, smallest index) scan as the scalar
        // branch; only the liveness probe differs. `usize::MAX` marks
        // "no live candidate yet"; any live index is smaller, so the
        // first live lane always takes over through the tie-break
        // compare.
        let mut bw = i64::MIN;
        let mut bv = usize::MAX;
        for (j, &v) in neighbors.iter().enumerate() {
            let vi = v.index();
            if vi == i || (unmatched[vi >> 6] >> (vi & 63)) & 1 == 0 {
                continue;
            }
            let w = weights[j];
            if w > bw || (w == bw && vi < bv) {
                bw = w;
                bv = vi;
            }
        }
        if bv == usize::MAX {
            continue;
        }
        let vi = bv;
        mate[i] = Some(NodeId::new(vi));
        mate[vi] = Some(u);
        unmatched[i >> 6] &= !(1u64 << (i & 63));
        unmatched[vi >> 6] &= !(1u64 << (vi & 63));
        matched_any = true;
    }
    matched_any
}

/// The scalar matching pass [`heavy_edge_matching`] replaced: probes a
/// per-node `Option<NodeId>` array and keeps the running best through a
/// branchy compare. Preserved as the bit-identity oracle for the
/// word-parallel pass.
#[cfg(any(test, feature = "reference-impls"))]
pub fn heavy_edge_matching_reference(
    g: &CsrGraph,
    order: &[usize],
    mate: &mut Vec<Option<NodeId>>,
) -> bool {
    let n = g.node_count();
    mate.clear();
    mate.resize(n, None);
    let mut matched_any = false;
    for &i in order {
        let u = NodeId::new(i);
        if mate[i].is_some() {
            continue;
        }
        // Unmatched neighbor of maximum edge weight, smallest index on
        // ties.
        let weights = g.neighbor_weights(u);
        let mut best: Option<(NodeId, i64)> = None;
        for (j, &v) in g.neighbors(u).iter().enumerate() {
            if v == u || mate[v.index()].is_some() {
                continue;
            }
            let w = weights[j];
            let better = match best {
                None => true,
                Some((bv, bw)) => w > bw || (w == bw && v < bv),
            };
            if better {
                best = Some((v, w));
            }
        }
        if let Some((v, _)) = best {
            mate[i] = Some(v);
            mate[v.index()] = Some(u);
            matched_any = true;
        }
    }
    matched_any
}

/// Coarse-graph rebuild that replicates the first-encounter insertion
/// order of `Graph::add_edge_weighted` — the order the
/// `reference-impls` oracle produces — without a dedup hash table.
///
/// `Graph::add_edge_weighted(ca, cb, w)` appends `cb` to `ca`'s
/// adjacency (and vice versa) on first encounter and accumulates the
/// weight afterwards, so each coarse node's final adjacency is its
/// distinct coarse neighbors in *global fine-edge scan order*. That
/// order is reproduced hash-free in three linear passes: collect the
/// surviving coarse edges in scan order, scatter both directed
/// half-edges into per-coarse-node buckets (bucket contents inherit the
/// scan order), then dedup each bucket with a stamp/slot pair while
/// emitting the CSR arrays.
fn rebuild_mirrored(
    g: &CsrGraph,
    map: &[NodeId],
    coarse_weights: Vec<i64>,
    ws: &mut CoarsenWorkspace,
) -> CsrGraph {
    let nc = coarse_weights.len();
    // Pass 1: surviving coarse edges in fine-scan order, plus
    // duplicate-inclusive coarse degrees (offset-shifted for the prefix
    // sum below).
    let pairs = &mut ws.pairs;
    pairs.clear();
    let cursor = &mut ws.cursor;
    cursor.clear();
    cursor.resize(nc + 1, 0);
    for a in g.nodes() {
        let ca = map[a.index()].index() as u32;
        let weights = g.neighbor_weights(a);
        for (j, &b) in g.neighbors(a).iter().enumerate() {
            // Each undirected edge once, in Graph::edges() order.
            if a < b {
                let cb = map[b.index()].index() as u32;
                if ca != cb {
                    pairs.push((ca, cb, weights[j]));
                    cursor[ca as usize + 1] += 1;
                    cursor[cb as usize + 1] += 1;
                }
            }
        }
    }
    for c in 0..nc {
        cursor[c + 1] += cursor[c];
    }
    // Pass 2: scatter both half-edges of every pair, in pair order, so
    // each bucket lists its neighbors in global scan order. `cursor[c]`
    // walks from the bucket start and ends at the bucket *end* (the
    // next bucket's start), which pass 3 unwinds with a running start.
    // Every slot in `0..half` is written exactly once (the counts sum
    // to `half`), so the scratch is only grown, never re-zeroed.
    let half = 2 * pairs.len();
    let half_nb = &mut ws.half_nb;
    if half_nb.len() < half {
        half_nb.resize(half, 0);
    }
    let half_w = &mut ws.half_w;
    if half_w.len() < half {
        half_w.resize(half, 0);
    }
    for &(ca, cb, w) in pairs.iter() {
        let ia = cursor[ca as usize] as usize;
        cursor[ca as usize] += 1;
        half_nb[ia] = cb;
        half_w[ia] = w;
        let ib = cursor[cb as usize] as usize;
        cursor[cb as usize] += 1;
        half_nb[ib] = ca;
        half_w[ib] = w;
    }
    // Pass 3: dedup each bucket in first-encounter order, accumulating
    // parallel-edge weights through the stamp/slot arrays.
    let mark = &mut ws.mark;
    mark.clear();
    mark.resize(nc, u32::MAX);
    let pos = &mut ws.pos;
    pos.clear();
    pos.resize(nc, 0);
    let mut offsets: Vec<u32> = Vec::with_capacity(nc + 1);
    offsets.push(0);
    let mut neighbors: Vec<NodeId> = Vec::with_capacity(half);
    let mut out_weights: Vec<i64> = Vec::with_capacity(half);
    let mut start = 0usize;
    for (c, &bucket_end) in cursor.iter().take(nc).enumerate() {
        let end = bucket_end as usize;
        for i in start..end {
            let cv = half_nb[i] as usize;
            if mark[cv] == c as u32 {
                out_weights[pos[cv] as usize] += half_w[i];
            } else {
                mark[cv] = c as u32;
                pos[cv] = neighbors.len() as u32;
                neighbors.push(NodeId::new(cv));
                out_weights.push(half_w[i]);
            }
        }
        start = end;
        offsets.push(neighbors.len() as u32);
    }
    CsrGraph::from_csr_parts(offsets, neighbors, out_weights, coarse_weights)
}

/// Coarse-graph rebuild by direct contraction: emits each coarse
/// node's adjacency in one pass over its fine members' edges, merging
/// parallel edges through a flat marker/slot pair instead of a dedup
/// hash table, and writes the CSR arrays in place. Neighbor order is
/// fine-member encounter order per coarse node — deterministic, but
/// *not* the oracle's insertion order.
fn rebuild_contracted(
    g: &CsrGraph,
    map: &[NodeId],
    fine_of: &[(u32, u32)],
    coarse_weights: Vec<i64>,
    ws: &mut CoarsenWorkspace,
) -> CsrGraph {
    let nc = coarse_weights.len();
    let mark = &mut ws.mark;
    mark.clear();
    mark.resize(nc, u32::MAX);
    let pos = &mut ws.pos;
    pos.clear();
    pos.resize(nc, 0);
    let mut offsets: Vec<u32> = Vec::with_capacity(nc + 1);
    offsets.push(0);
    let mut neighbors: Vec<NodeId> = Vec::with_capacity(2 * g.edge_count());
    let mut weights: Vec<i64> = Vec::with_capacity(2 * g.edge_count());
    for (c, &(a, b)) in fine_of.iter().enumerate() {
        for fine in [a, b] {
            if fine == u32::MAX {
                continue;
            }
            let u = NodeId::new(fine as usize);
            let edge_weights = g.neighbor_weights(u);
            for (j, &v) in g.neighbors(u).iter().enumerate() {
                let cv = map[v.index()].index();
                if cv == c {
                    continue; // collapsed (or self) edge
                }
                if mark[cv] == c as u32 {
                    weights[pos[cv] as usize] += edge_weights[j];
                } else {
                    mark[cv] = c as u32;
                    pos[cv] = neighbors.len() as u32;
                    neighbors.push(NodeId::new(cv));
                    weights.push(edge_weights[j]);
                }
            }
        }
        offsets.push(neighbors.len() as u32);
    }
    CsrGraph::from_csr_parts(offsets, neighbors, weights, coarse_weights)
}

/// CSR-native [`coarsen_to`]: coarsens until at most `target_nodes`
/// remain or a round shrinks the graph by less than ~10%.
#[must_use]
pub fn coarsen_to_csr(g: &CsrGraph, target_nodes: usize, rng: &mut Rng) -> Vec<CsrLevel> {
    coarsen_to_csr_with(g, target_nodes, rng, &mut CoarsenWorkspace::new())
}

/// [`coarsen_to_csr`] with a caller-owned [`CoarsenWorkspace`]; the
/// matching buffers and rebuild scratch are reused across every level of
/// the hierarchy (and across calls when the caller keeps the workspace).
/// Uses the build's default [`CoarseRebuild`] strategy.
#[must_use]
pub fn coarsen_to_csr_with(
    g: &CsrGraph,
    target_nodes: usize,
    rng: &mut Rng,
    ws: &mut CoarsenWorkspace,
) -> Vec<CsrLevel> {
    coarsen_to_csr_rebuild(g, target_nodes, rng, ws, CoarseRebuild::default_mode())
}

/// [`coarsen_to_csr_with`] with an explicit coarse-graph rebuild
/// strategy.
#[must_use]
pub fn coarsen_to_csr_rebuild(
    g: &CsrGraph,
    target_nodes: usize,
    rng: &mut Rng,
    ws: &mut CoarsenWorkspace,
    rebuild: CoarseRebuild,
) -> Vec<CsrLevel> {
    let mut levels: Vec<CsrLevel> = Vec::new();
    while levels
        .last()
        .map_or(g.node_count(), |l| l.graph.node_count())
        > target_nodes
    {
        let current: &CsrGraph = levels.last().map_or(g, |l| &l.graph);
        let before = current.node_count();
        let Some(level) = coarsen_once_csr_rebuild(current, rng, ws, rebuild) else {
            break;
        };
        let shrink = level.graph.node_count() as f64 / before as f64;
        levels.push(level);
        if shrink > 0.9 {
            break; // diminishing returns (e.g. star graphs)
        }
    }
    levels
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbqc_graph::generate;

    #[test]
    fn matching_halves_path() {
        let g = generate::path_graph(8);
        let mut rng = Rng::seed_from_u64(1);
        let level = coarsen_once(&g, &mut rng).unwrap();
        assert!(level.graph.node_count() >= 4);
        assert!(level.graph.node_count() < 8);
        // Total node weight is conserved.
        assert_eq!(level.graph.total_node_weight(), 8);
    }

    #[test]
    fn edge_weight_conserved_modulo_internal() {
        let g = generate::cycle_graph(10);
        let mut rng = Rng::seed_from_u64(2);
        let level = coarsen_once(&g, &mut rng).unwrap();
        // Every original edge is either internal to a coarse node (a
        // matched pair) or present in the coarse graph's weights.
        let matched_pairs = 10 - level.graph.node_count();
        assert_eq!(level.graph.total_edge_weight() + matched_pairs as i64, 10);
    }

    #[test]
    fn map_is_surjective_onto_coarse_nodes() {
        let g = generate::grid_graph(5, 5);
        let mut rng = Rng::seed_from_u64(3);
        let level = coarsen_once(&g, &mut rng).unwrap();
        let mut seen = vec![false; level.graph.node_count()];
        for &c in &level.map {
            seen[c.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn edgeless_graph_cannot_coarsen() {
        let g = Graph::with_nodes(5);
        let mut rng = Rng::seed_from_u64(4);
        assert!(coarsen_once(&g, &mut rng).is_none());
    }

    #[test]
    fn hierarchy_reaches_target() {
        let g = generate::grid_graph(12, 12);
        let mut rng = Rng::seed_from_u64(5);
        let levels = coarsen_to(&g, 20, &mut rng);
        assert!(!levels.is_empty());
        let coarsest = &levels.last().unwrap().graph;
        assert!(coarsest.node_count() <= 80, "got {}", coarsest.node_count());
        // Weight conserved at every level.
        for level in &levels {
            assert_eq!(level.graph.total_node_weight(), 144);
        }
    }

    #[test]
    fn small_graph_needs_no_coarsening() {
        let g = generate::path_graph(5);
        let mut rng = Rng::seed_from_u64(6);
        assert!(coarsen_to(&g, 10, &mut rng).is_empty());
    }

    /// Coarsens with the order-mirroring rebuild pinned (the
    /// Graph-hierarchy equivalence only holds for that mode; the
    /// build default switches to `Contracted` without
    /// `reference-impls`).
    fn coarsen_to_csr_mirrored(g: &CsrGraph, target: usize, rng: &mut Rng) -> Vec<CsrLevel> {
        coarsen_to_csr_rebuild(
            g,
            target,
            rng,
            &mut CoarsenWorkspace::new(),
            CoarseRebuild::MirrorInsertion,
        )
    }

    #[test]
    fn csr_hierarchy_identical_to_graph_hierarchy() {
        let g = generate::grid_graph(9, 9);
        let csr = CsrGraph::from_graph(&g);
        let mut rng_a = Rng::seed_from_u64(8);
        let mut rng_b = Rng::seed_from_u64(8);
        let adj_levels = coarsen_to(&g, 12, &mut rng_a);
        let csr_levels = coarsen_to_csr_mirrored(&csr, 12, &mut rng_b);
        assert_eq!(adj_levels.len(), csr_levels.len());
        for (a, b) in adj_levels.iter().zip(&csr_levels) {
            assert_eq!(a.map, b.map);
            assert_eq!(CsrGraph::from_graph(&a.graph), b.graph);
        }
    }

    #[test]
    fn reused_workspace_is_bit_identical() {
        // One workspace driven through hierarchies of different sizes
        // must reproduce the fresh-allocation path exactly.
        let mut ws = CoarsenWorkspace::new();
        for (dim, seed) in [(9usize, 8u64), (12, 9), (7, 10)] {
            let g = CsrGraph::from_graph(&generate::grid_graph(dim, dim));
            let mut rng_a = Rng::seed_from_u64(seed);
            let mut rng_b = Rng::seed_from_u64(seed);
            let fresh = coarsen_to_csr(&g, 12, &mut rng_a);
            let reused = coarsen_to_csr_with(&g, 12, &mut rng_b, &mut ws);
            assert_eq!(fresh.len(), reused.len());
            for (a, b) in fresh.iter().zip(&reused) {
                assert_eq!(a.map, b.map);
                assert_eq!(a.graph, b.graph);
            }
        }
    }

    #[test]
    fn wide_key_fallback_identical_to_graph_hierarchy() {
        // Edge weights ≥ 4096 push the fused counting path onto the
        // comparison-sort fallback; both must still mirror the Graph
        // oracle exactly.
        let mut g = generate::grid_graph(8, 8);
        let n: Vec<_> = g.nodes().collect();
        g.add_edge_weighted(n[0], n[9], 10_000);
        g.add_edge_weighted(n[20], n[28], 5_000);
        let csr = CsrGraph::from_graph(&g);
        let mut rng_a = Rng::seed_from_u64(11);
        let mut rng_b = Rng::seed_from_u64(11);
        let adj_levels = coarsen_to(&g, 10, &mut rng_a);
        let csr_levels = coarsen_to_csr_mirrored(&csr, 10, &mut rng_b);
        assert_eq!(adj_levels.len(), csr_levels.len());
        assert!(!adj_levels.is_empty());
        for (a, b) in adj_levels.iter().zip(&csr_levels) {
            assert_eq!(a.map, b.map);
            assert_eq!(CsrGraph::from_graph(&a.graph), b.graph);
        }
    }

    #[test]
    fn heavy_edges_matched_first() {
        // Star with one heavy edge: the heavy pair should merge.
        let mut g = Graph::with_nodes(4);
        let n: Vec<_> = g.nodes().collect();
        g.add_edge_weighted(n[0], n[1], 100);
        g.add_edge(n[0], n[2]);
        g.add_edge(n[0], n[3]);
        let mut rng = Rng::seed_from_u64(7);
        let level = coarsen_once(&g, &mut rng).unwrap();
        assert_eq!(level.map[0], level.map[1], "heavy edge must collapse");
    }
}
