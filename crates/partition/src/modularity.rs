//! Newman modularity.

use mbqc_graph::{CsrGraph, Graph};

use crate::Partition;

/// Newman modularity `Q` of a partition (edge-weight aware):
///
/// `Q = Σ_c [ e_c / m  −  (d_c / 2m)² ]`
///
/// where `m` is the total edge weight, `e_c` the intra-community edge
/// weight of community `c`, and `d_c` the total weighted degree of `c`.
/// `Q ∈ [−1/2, 1)`; higher means denser communities relative to a random
/// graph with the same degrees. The paper uses `Q` to quantify the
/// "preserved local structure" objective of its partitioner.
///
/// Returns 0 for graphs without edges.
///
/// # Panics
///
/// Panics if the partition size disagrees with the graph.
///
/// # Examples
///
/// ```
/// use mbqc_graph::generate;
/// use mbqc_partition::{modularity::modularity, Partition};
///
/// // Two triangles joined by one edge, split at the bridge.
/// let mut g = generate::complete_graph(3);
/// let n3 = g.add_node();
/// let n4 = g.add_node();
/// let n5 = g.add_node();
/// g.add_edge(n3, n4);
/// g.add_edge(n4, n5);
/// g.add_edge(n3, n5);
/// g.add_edge(mbqc_graph::NodeId::new(0), n3);
/// let p = Partition::new(vec![0, 0, 0, 1, 1, 1], 2);
/// assert!(modularity(&g, &p) > 0.35);
/// ```
#[must_use]
pub fn modularity(g: &Graph, p: &Partition) -> f64 {
    assert_eq!(g.node_count(), p.len(), "graph size mismatch");
    let m = g.total_edge_weight() as f64;
    if m == 0.0 {
        return 0.0;
    }
    let k = p.k();
    let mut intra = vec![0.0f64; k];
    let mut degree = vec![0.0f64; k];
    for (a, b, w) in g.edges() {
        let (pa, pb) = (p.part_of(a), p.part_of(b));
        if pa == pb {
            intra[pa] += w as f64;
        }
    }
    for n in g.nodes() {
        degree[p.part_of(n)] += g.weighted_degree(n) as f64;
    }
    (0..k)
        .map(|c| intra[c] / m - (degree[c] / (2.0 * m)).powi(2))
        .sum()
}

/// [`modularity`] computed from a frozen CSR view; one linear pass over
/// the flat adjacency arrays.
///
/// # Panics
///
/// Panics if the partition size disagrees with the graph.
#[must_use]
pub fn modularity_csr(g: &CsrGraph, p: &Partition) -> f64 {
    assert_eq!(g.node_count(), p.len(), "graph size mismatch");
    let m = g.total_edge_weight() as f64;
    if m == 0.0 {
        return 0.0;
    }
    let k = p.k();
    let mut intra2 = vec![0.0f64; k]; // counts each intra edge twice
    let mut degree = vec![0.0f64; k];
    for u in g.nodes() {
        let pu = p.part_of(u);
        let weights = g.neighbor_weights(u);
        let mut wd = 0i64;
        for (i, v) in g.neighbors(u).iter().enumerate() {
            wd += weights[i];
            if p.part_of(*v) == pu {
                intra2[pu] += weights[i] as f64;
            }
        }
        degree[pu] += wd as f64;
    }
    (0..k)
        .map(|c| intra2[c] / (2.0 * m) - (degree[c] / (2.0 * m)).powi(2))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbqc_graph::generate;

    #[test]
    fn single_part_modularity_is_zero() {
        // All intra: Q = m/m − (2m/2m)² = 0.
        let g = generate::complete_graph(5);
        let p = Partition::trivial(5);
        assert!(modularity(&g, &p).abs() < 1e-12);
    }

    #[test]
    fn empty_graph_is_zero() {
        let g = Graph::with_nodes(4);
        let p = Partition::new(vec![0, 1, 0, 1], 2);
        assert_eq!(modularity(&g, &p), 0.0);
    }

    #[test]
    fn disconnected_cliques_perfectly_split() {
        // Two disjoint triangles, each its own community:
        // Q = 2·(3/6 − (6/12)²) = 2·(0.5 − 0.25) = 0.5.
        let mut g = generate::complete_graph(3);
        let a = g.add_node();
        let b = g.add_node();
        let c = g.add_node();
        g.add_edge(a, b);
        g.add_edge(b, c);
        g.add_edge(a, c);
        let p = Partition::new(vec![0, 0, 0, 1, 1, 1], 2);
        assert!((modularity(&g, &p) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn bad_split_scores_worse() {
        let g = generate::complete_graph(6);
        let aligned = Partition::new(vec![0, 0, 0, 1, 1, 1], 2);
        let q = modularity(&g, &aligned);
        // Splitting a clique can never score well.
        assert!(q < 0.0);
    }

    #[test]
    fn modularity_in_valid_range() {
        let g = generate::grid_graph(6, 6);
        for k in 1..5 {
            let p = Partition::new((0..36).map(|i| i % k).collect(), k);
            let q = modularity(&g, &p);
            assert!((-0.5..1.0).contains(&q), "k={k}: Q={q}");
        }
    }

    #[test]
    fn csr_modularity_matches_graph_modularity() {
        let mut g = generate::grid_graph(6, 5);
        g.add_edge_weighted(mbqc_graph::NodeId::new(0), mbqc_graph::NodeId::new(29), 3);
        let csr = CsrGraph::from_graph(&g);
        for k in 1..5 {
            let p = Partition::new((0..30).map(|i| i % k).collect(), k);
            let a = modularity(&g, &p);
            let b = modularity_csr(&csr, &p);
            assert!((a - b).abs() < 1e-12, "k={k}: {a} vs {b}");
        }
    }

    #[test]
    fn weighted_edges_count() {
        // Heavy intra edge dominates the split quality.
        let mut g = Graph::with_nodes(4);
        let n: Vec<_> = g.nodes().collect();
        g.add_edge_weighted(n[0], n[1], 10);
        g.add_edge_weighted(n[2], n[3], 10);
        g.add_edge(n[1], n[2]);
        let good = Partition::new(vec![0, 0, 1, 1], 2);
        let bad = Partition::new(vec![0, 1, 0, 1], 2);
        assert!(modularity(&g, &good) > modularity(&g, &bad));
    }
}
