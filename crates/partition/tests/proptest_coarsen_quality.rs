//! The two coarse-graph rebuild strategies ([`CoarseRebuild`]) must be
//! interchangeable in everything but neighbor order: identical coarse
//! edge sets at each matched level, and — since neighbor order shifts
//! downstream random tie-breaks — *equal-quality* (not bit-identical)
//! partitions. This file runs under both feature configurations; CI
//! exercises it with `--no-default-features`, where `Contracted` is
//! the production default.

use mbqc_graph::{generate, CsrGraph, NodeId};
use mbqc_partition::coarsen::{coarsen_once_csr_rebuild, CoarseRebuild, CoarsenWorkspace};
use mbqc_partition::kway::multilevel_kway_csr_rebuild;
use mbqc_partition::{KwayConfig, KwayWorkspace};
use mbqc_util::Rng;
use proptest::prelude::*;

fn random_graph(n: usize, edge_factor: usize, seed: u64) -> CsrGraph {
    let p = (edge_factor as f64) / (n as f64);
    CsrGraph::from_graph(&generate::erdos_renyi_gnp(
        n,
        p.min(0.9),
        &mut Rng::seed_from_u64(seed),
    ))
}

/// Canonical edge set: sorted `(a, b, w)` with `a < b`.
fn edge_set(g: &CsrGraph) -> Vec<(usize, usize, i64)> {
    let mut edges: Vec<(usize, usize, i64)> = g
        .edges()
        .map(|(a, b, w)| (a.index(), b.index(), w))
        .collect();
    edges.sort_unstable();
    edges
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// One matching round rebuilt both ways: same matching (same RNG),
    /// same coarse node weights, same merged edge set — only neighbor
    /// order may differ.
    #[test]
    fn rebuilds_agree_on_the_coarse_graph(
        n in 8usize..150,
        edge_factor in 1usize..6,
        seed in 0u64..10_000,
    ) {
        let g = random_graph(n, edge_factor, seed);
        let run = |rebuild| {
            let mut rng = Rng::seed_from_u64(seed ^ 0xc0a3);
            coarsen_once_csr_rebuild(&g, &mut rng, &mut CoarsenWorkspace::new(), rebuild)
        };
        let mirrored = run(CoarseRebuild::MirrorInsertion);
        let contracted = run(CoarseRebuild::Contracted);
        match (mirrored, contracted) {
            (None, None) => {}
            (Some(a), Some(b)) => {
                prop_assert_eq!(&a.map, &b.map, "matching must not depend on the rebuild");
                prop_assert_eq!(a.graph.node_count(), b.graph.node_count());
                prop_assert_eq!(a.graph.total_node_weight(), b.graph.total_node_weight());
                prop_assert_eq!(a.graph.total_edge_weight(), b.graph.total_edge_weight());
                prop_assert_eq!(edge_set(&a.graph), edge_set(&b.graph));
                for u in 0..a.graph.node_count() {
                    let u = NodeId::new(u);
                    prop_assert_eq!(a.graph.node_weight(u), b.graph.node_weight(u));
                    prop_assert_eq!(a.graph.degree(u), b.graph.degree(u));
                }
            }
            (a, b) => {
                prop_assert!(false, "one rebuild coarsened, the other did not: {:?} vs {:?}",
                    a.is_some(), b.is_some());
            }
        }
    }

    /// Full-pipeline sanity per graph: the contracted rebuild's
    /// partition stays balanced and its cut is never *catastrophically*
    /// worse than the mirrored one (the tight aggregate bound lives in
    /// `contracted_cut_no_worse_over_200_random_graphs`).
    #[test]
    fn contracted_partition_balanced_and_sane(
        n in 16usize..120,
        edge_factor in 2usize..6,
        k in 2usize..5,
        seed in 0u64..10_000,
    ) {
        let g = random_graph(n, edge_factor, seed);
        let cfg = KwayConfig::new(k).with_seed(seed).with_probe_workers(1);
        let run = |rebuild| {
            multilevel_kway_csr_rebuild(&g, &cfg, &mut KwayWorkspace::new(), rebuild)
        };
        let mirrored = run(CoarseRebuild::MirrorInsertion);
        let contracted = run(CoarseRebuild::Contracted);
        prop_assert_eq!(contracted.k(), k);
        prop_assert_eq!(contracted.len(), g.node_count());
        // Both runs face the same bound; neither may be less balanced
        // than the other beyond the bound itself.
        prop_assert!(
            contracted.is_balanced_csr(&g, 1.5) || !mirrored.is_balanced_csr(&g, 1.5),
            "contracted rebuild lost balance: {} vs {}",
            contracted.imbalance_csr(&g),
            mirrored.imbalance_csr(&g)
        );
        let (cm, cc) = (mirrored.cut_weight_csr(&g), contracted.cut_weight_csr(&g));
        prop_assert!(
            cc <= cm * 2 + 8,
            "contracted cut collapsed: {} vs mirrored {}",
            cc,
            cm
        );
    }
}

/// The satellite acceptance bound: over 200 random graphs, the
/// contracted rebuild's total cut is no worse than the mirrored
/// rebuild's (random tie-breaks swing individual graphs both ways; the
/// aggregate must not regress).
#[test]
fn contracted_cut_no_worse_over_200_random_graphs() {
    let mut total_mirrored = 0i64;
    let mut total_contracted = 0i64;
    let mut ws_m = KwayWorkspace::new();
    let mut ws_c = KwayWorkspace::new();
    for seed in 0u64..200 {
        let n = 16 + (seed as usize * 7) % 100;
        let edge_factor = 2 + (seed as usize) % 4;
        let k = 2 + (seed as usize) % 3;
        let g = random_graph(n, edge_factor, seed * 31 + 1);
        let cfg = KwayConfig::new(k).with_seed(seed).with_probe_workers(1);
        total_mirrored +=
            multilevel_kway_csr_rebuild(&g, &cfg, &mut ws_m, CoarseRebuild::MirrorInsertion)
                .cut_weight_csr(&g);
        total_contracted +=
            multilevel_kway_csr_rebuild(&g, &cfg, &mut ws_c, CoarseRebuild::Contracted)
                .cut_weight_csr(&g);
    }
    // "No worse": within 2% in aggregate (both directions are pure
    // tie-break noise; this is deterministic, so a pass is stable).
    assert!(
        total_contracted as f64 <= total_mirrored as f64 * 1.02,
        "contracted rebuild degrades cut quality: {total_contracted} vs {total_mirrored}"
    );
}
