//! Property-based tests for the partitioning stack.

use mbqc_graph::{generate, CsrGraph, Graph, NodeId};
use mbqc_partition::adaptive::{adaptive_partition, AdaptiveConfig};
use mbqc_partition::kway::{multilevel_kway, multilevel_kway_csr, KwayConfig};
use mbqc_partition::louvain::louvain;
use mbqc_partition::modularity::{modularity, modularity_csr};
#[cfg(feature = "reference-impls")]
use mbqc_partition::reference;
use mbqc_util::Rng;
use proptest::prelude::*;

fn random_connected_graph(n: usize, extra_edges: usize, seed: u64) -> Graph {
    let mut rng = Rng::seed_from_u64(seed);
    // Spanning path + random extra edges keeps it connected.
    let mut g = generate::path_graph(n.max(2));
    for _ in 0..extra_edges {
        let a = rng.range(g.node_count());
        let b = rng.range(g.node_count());
        if a != b && !g.has_edge(NodeId::new(a), NodeId::new(b)) {
            g.add_edge(NodeId::new(a), NodeId::new(b));
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn kway_covers_all_nodes(n in 8usize..80, extra in 0usize..60, k in 2usize..6, seed in 0u64..200) {
        let g = random_connected_graph(n, extra, seed);
        let p = multilevel_kway(&g, &KwayConfig::new(k).with_seed(seed));
        prop_assert_eq!(p.len(), g.node_count());
        prop_assert!(p.assignment().iter().all(|&c| c < k));
    }

    #[test]
    fn kway_balance_bound_holds(n in 12usize..80, extra in 0usize..40, k in 2usize..5, seed in 0u64..200) {
        let g = random_connected_graph(n, extra, seed);
        let alpha = 1.1;
        let p = multilevel_kway(&g, &KwayConfig::new(k).with_alpha(alpha).with_seed(seed));
        // Bound: ceil(α · total / k) plus one-node granularity slack.
        let bound = (alpha * g.total_node_weight() as f64 / k as f64).ceil() as i64 + 1;
        for w in p.part_weights(&g) {
            prop_assert!(w <= bound, "part weight {} exceeds {}", w, bound);
        }
    }

    #[test]
    fn cut_plus_internal_equals_total(n in 8usize..60, extra in 0usize..50, k in 2usize..5, seed in 0u64..200) {
        let g = random_connected_graph(n, extra, seed);
        let p = multilevel_kway(&g, &KwayConfig::new(k).with_seed(seed));
        let cut = p.cut_weight(&g);
        let internal: i64 = g
            .edges()
            .filter(|(a, b, _)| p.part_of(*a) == p.part_of(*b))
            .map(|(_, _, w)| w)
            .sum();
        prop_assert_eq!(cut + internal, g.total_edge_weight());
    }

    #[test]
    fn modularity_bounds(n in 6usize..60, extra in 0usize..60, seed in 0u64..200) {
        let g = random_connected_graph(n, extra, seed);
        let mut rng = Rng::seed_from_u64(seed);
        let p = louvain(&g, &mut rng);
        let q = modularity(&g, &p);
        prop_assert!((-0.5..=1.0).contains(&q), "Q = {}", q);
    }

    #[test]
    fn louvain_no_worse_than_singletons(n in 6usize..50, extra in 0usize..40, seed in 0u64..200) {
        let g = random_connected_graph(n, extra, seed);
        let mut rng = Rng::seed_from_u64(seed);
        let p = louvain(&g, &mut rng);
        // Singleton partition has Q = −Σ(d_i/2m)² < 0; Louvain must be ≥.
        let singles = mbqc_partition::Partition::new((0..g.node_count()).collect(), g.node_count());
        prop_assert!(modularity(&g, &p) >= modularity(&g, &singles) - 1e-9);
    }

    #[test]
    fn parallel_restarts_independent_of_worker_count(
        n in 8usize..80,
        extra in 0usize..60,
        k in 2usize..6,
        restarts in 1usize..10,
        seed in 0u64..300,
    ) {
        // Same seed ⇒ bit-identical partition for every probe worker
        // count (the deterministic-parallelism guarantee).
        let g = random_connected_graph(n, extra, seed);
        let base = KwayConfig::new(k)
            .with_seed(seed)
            .with_initial_restarts(restarts);
        let one = multilevel_kway(&g, &base.with_probe_workers(1));
        let two = multilevel_kway(&g, &base.with_probe_workers(2));
        let eight = multilevel_kway(&g, &base.with_probe_workers(8));
        prop_assert_eq!(&one, &two);
        prop_assert_eq!(&one, &eight);
    }

    #[cfg(feature = "reference-impls")]
    #[test]
    fn csr_partitioning_identical_to_seed_adjacency_path(
        n in 8usize..90,
        extra in 0usize..70,
        k in 2usize..6,
        seed in 0u64..500,
    ) {
        // The tentpole guarantee: the CSR + incremental-gain partitioner
        // is a pure representation change. Same graph, same config, same
        // seed ⇒ bit-identical partition (hence identical cuts) to the
        // pre-optimization adjacency-list implementation.
        let g = random_connected_graph(n, extra, seed);
        let cfg = KwayConfig::new(k).with_seed(seed);
        let optimized = multilevel_kway(&g, &cfg);
        let baseline = reference::multilevel_kway(&g, &cfg);
        prop_assert_eq!(optimized.assignment(), baseline.assignment());
        prop_assert_eq!(optimized.cut_weight(&g), baseline.cut_weight(&g));
    }

    #[test]
    fn csr_entry_point_and_metrics_match(
        n in 8usize..60,
        extra in 0usize..40,
        k in 2usize..5,
        seed in 0u64..200,
    ) {
        let g = random_connected_graph(n, extra, seed);
        let csr = CsrGraph::from_graph(&g);
        let cfg = KwayConfig::new(k).with_seed(seed);
        let a = multilevel_kway(&g, &cfg);
        let b = multilevel_kway_csr(&csr, &cfg);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(a.cut_weight(&g), a.cut_weight_csr(&csr));
        prop_assert_eq!(a.part_weights(&g), a.part_weights_csr(&csr));
        let (qa, qb) = (modularity(&g, &a), modularity_csr(&csr, &a));
        prop_assert!((qa - qb).abs() < 1e-9, "Q {} vs {}", qa, qb);
    }

    #[cfg(feature = "reference-impls")]
    #[test]
    fn weighted_graphs_also_identical(
        n in 8usize..50,
        extra in 0usize..40,
        k in 2usize..5,
        seed in 0u64..200,
    ) {
        // Node and edge weights exercise the balance bound and
        // heavy-edge-matching tie-breaks.
        let mut g = random_connected_graph(n, extra, seed);
        let mut rng = Rng::seed_from_u64(seed ^ 0xabcd);
        for u in 0..g.node_count() {
            g.set_node_weight(NodeId::new(u), 1 + rng.range(4) as i64);
        }
        let heavy: Vec<(NodeId, NodeId)> = g.edges().map(|(a, b, _)| (a, b)).collect();
        for (a, b) in heavy {
            if rng.bernoulli(0.3) {
                g.add_edge_weighted(a, b, 1 + rng.range(5) as i64);
            }
        }
        let cfg = KwayConfig::new(k).with_seed(seed);
        let optimized = multilevel_kway(&g, &cfg);
        let baseline = reference::multilevel_kway(&g, &cfg);
        prop_assert_eq!(optimized, baseline);
    }

    #[test]
    fn adaptive_history_monotone_alpha_until_break(n in 12usize..60, k in 2usize..5, seed in 0u64..100) {
        let g = random_connected_graph(n, n / 2, seed);
        let r = adaptive_partition(&g, &AdaptiveConfig::new(k).with_seed(seed));
        // α never exceeds α_max.
        for s in &r.history {
            prop_assert!(s.alpha <= 1.5 + 1e-9);
            prop_assert!(s.alpha >= 1.0 / 1.02 - 1e-9);
        }
        // Best modularity equals max of history.
        let max_q = r.history.iter().map(|s| s.modularity).fold(f64::NEG_INFINITY, f64::max);
        prop_assert!((r.modularity - max_q).abs() < 1e-12);
    }
}

proptest! {
    // The matching pin runs many more cases than the partition-level
    // properties: it is the per-level decision procedure every
    // hierarchy test sits on, and single rounds are cheap.
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[cfg(feature = "reference-impls")]
    #[test]
    fn word_parallel_matching_bit_identical(
        n in 1usize..90,
        edges in 0usize..160,
        isolated in 0usize..8,
        wide in 0u64..2,
        seed in 0u64..10_000,
    ) {
        // The matching-pass pin, both adaptive branches: the
        // word-parallel bitset pass (called directly — these graphs sit
        // below the adaptive threshold) and the public entry (the
        // scalar branch at these sizes) must make exactly the decisions
        // of the scalar reference — including isolated tail nodes
        // (never matched, bit stays set) and weights past the 4096
        // counting-sort ceiling (the wide-key tie-break classes).
        use mbqc_partition::coarsen::{
            heavy_edge_matching, heavy_edge_matching_bitset, heavy_edge_matching_reference,
        };
        let mut rng = Rng::seed_from_u64(seed);
        let total = n + isolated;
        let mut g = Graph::with_nodes(total);
        for _ in 0..edges {
            let a = rng.range(n);
            let b = rng.range(n);
            if a != b && !g.has_edge(NodeId::new(a), NodeId::new(b)) {
                let w = if wide == 1 && rng.bernoulli(0.3) {
                    4096 + rng.range(100_000) as i64
                } else {
                    1 + rng.range(7) as i64
                };
                g.add_edge_weighted(NodeId::new(a), NodeId::new(b), w);
            }
        }
        let csr = CsrGraph::from_graph(&g);
        let mut order: Vec<usize> = (0..total).collect();
        rng.shuffle(&mut order);
        let mut fast_mate = Vec::new();
        let mut unmatched = Vec::new();
        let fast_any = heavy_edge_matching_bitset(&csr, &order, &mut fast_mate, &mut unmatched);
        let mut ref_mate = Vec::new();
        let ref_any = heavy_edge_matching_reference(&csr, &order, &mut ref_mate);
        prop_assert_eq!(fast_any, ref_any);
        prop_assert_eq!(&fast_mate, &ref_mate);
        // The bitset must finish as exactly the unmatched set.
        for i in 0..total {
            let bit = (unmatched[i >> 6] >> (i & 63)) & 1 == 1;
            prop_assert_eq!(bit, ref_mate[i].is_none());
        }
        // The public adaptive entry (scalar branch at these sizes).
        let mut adaptive_mate = Vec::new();
        let mut scratch = Vec::new();
        let adaptive_any = heavy_edge_matching(&csr, &order, &mut adaptive_mate, &mut scratch);
        prop_assert_eq!(adaptive_any, ref_any);
        prop_assert_eq!(&adaptive_mate, &ref_mate);
    }
}
