//! The gate set of the circuit IR.

use std::fmt;

/// A qubit index within a [`Circuit`](crate::Circuit).
pub type Qubit = usize;

/// A rotation angle in radians.
pub type Angle = f64;

/// A quantum gate.
///
/// The set covers everything the four benchmark generators need. Rotation
/// conventions: `Rz(θ) = exp(−iθZ/2)`, `Rx(θ) = exp(−iθX/2)`,
/// `Ry(θ) = exp(−iθY/2)`, `Phase(θ) = diag(1, e^{iθ})`,
/// `CPhase(θ) = diag(1, 1, 1, e^{iθ})`, `Rzz(θ) = exp(−iθ Z⊗Z / 2)`.
///
/// # Examples
///
/// ```
/// use mbqc_circuit::Gate;
///
/// let g = Gate::Cnot { control: 0, target: 1 };
/// assert!(g.is_two_qubit());
/// assert_eq!(g.qubits(), vec![0, 1]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Gate {
    /// Hadamard.
    H(Qubit),
    /// Pauli-X.
    X(Qubit),
    /// Pauli-Y.
    Y(Qubit),
    /// Pauli-Z.
    Z(Qubit),
    /// Phase gate S = diag(1, i).
    S(Qubit),
    /// Inverse phase gate S† = diag(1, −i).
    Sdg(Qubit),
    /// T = diag(1, e^{iπ/4}).
    T(Qubit),
    /// T† = diag(1, e^{−iπ/4}).
    Tdg(Qubit),
    /// X-rotation exp(−iθX/2).
    Rx(Qubit, Angle),
    /// Y-rotation exp(−iθY/2).
    Ry(Qubit, Angle),
    /// Z-rotation exp(−iθZ/2).
    Rz(Qubit, Angle),
    /// Phase rotation diag(1, e^{iθ}) (equal to Rz up to global phase).
    Phase(Qubit, Angle),
    /// Controlled-Z (symmetric).
    Cz(Qubit, Qubit),
    /// Controlled-X.
    Cnot {
        /// Control qubit.
        control: Qubit,
        /// Target qubit.
        target: Qubit,
    },
    /// Swap of two qubits.
    Swap(Qubit, Qubit),
    /// Controlled phase diag(1, 1, 1, e^{iθ}) (symmetric).
    CPhase(Qubit, Qubit, Angle),
    /// Ising interaction exp(−iθ Z⊗Z / 2) (symmetric); QAOA's cost gate.
    Rzz(Qubit, Qubit, Angle),
    /// Toffoli (CCX).
    Toffoli {
        /// First control qubit.
        c0: Qubit,
        /// Second control qubit.
        c1: Qubit,
        /// Target qubit.
        target: Qubit,
    },
}

impl Gate {
    /// The qubits this gate acts on, in declaration order.
    #[must_use]
    pub fn qubits(&self) -> Vec<Qubit> {
        match *self {
            Gate::H(q)
            | Gate::X(q)
            | Gate::Y(q)
            | Gate::Z(q)
            | Gate::S(q)
            | Gate::Sdg(q)
            | Gate::T(q)
            | Gate::Tdg(q)
            | Gate::Rx(q, _)
            | Gate::Ry(q, _)
            | Gate::Rz(q, _)
            | Gate::Phase(q, _) => vec![q],
            Gate::Cz(a, b) | Gate::Swap(a, b) | Gate::CPhase(a, b, _) | Gate::Rzz(a, b, _) => {
                vec![a, b]
            }
            Gate::Cnot { control, target } => vec![control, target],
            Gate::Toffoli { c0, c1, target } => vec![c0, c1, target],
        }
    }

    /// `true` for gates acting on exactly one qubit.
    #[must_use]
    pub fn is_single_qubit(&self) -> bool {
        self.qubits().len() == 1
    }

    /// `true` for gates acting on exactly two qubits.
    #[must_use]
    pub fn is_two_qubit(&self) -> bool {
        self.qubits().len() == 2
    }

    /// `true` only for [`Gate::Cz`].
    #[must_use]
    pub fn is_cz(&self) -> bool {
        matches!(self, Gate::Cz(_, _))
    }

    /// Short mnemonic name (lowercase, OpenQASM-style).
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            Gate::H(_) => "h",
            Gate::X(_) => "x",
            Gate::Y(_) => "y",
            Gate::Z(_) => "z",
            Gate::S(_) => "s",
            Gate::Sdg(_) => "sdg",
            Gate::T(_) => "t",
            Gate::Tdg(_) => "tdg",
            Gate::Rx(_, _) => "rx",
            Gate::Ry(_, _) => "ry",
            Gate::Rz(_, _) => "rz",
            Gate::Phase(_, _) => "p",
            Gate::Cz(_, _) => "cz",
            Gate::Cnot { .. } => "cx",
            Gate::Swap(_, _) => "swap",
            Gate::CPhase(_, _, _) => "cp",
            Gate::Rzz(_, _, _) => "rzz",
            Gate::Toffoli { .. } => "ccx",
        }
    }
}

impl fmt::Display for Gate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let qubits: Vec<String> = self.qubits().iter().map(|q| format!("q{q}")).collect();
        let angle = match self {
            Gate::Rx(_, a)
            | Gate::Ry(_, a)
            | Gate::Rz(_, a)
            | Gate::Phase(_, a)
            | Gate::CPhase(_, _, a)
            | Gate::Rzz(_, _, a) => format!("({a:.4})"),
            _ => String::new(),
        };
        write!(f, "{}{} {}", self.name(), angle, qubits.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qubit_arity() {
        assert!(Gate::H(0).is_single_qubit());
        assert!(Gate::Rz(1, 0.5).is_single_qubit());
        assert!(Gate::Cz(0, 1).is_two_qubit());
        assert!(Gate::Rzz(2, 3, 1.0).is_two_qubit());
        assert!(!Gate::Toffoli {
            c0: 0,
            c1: 1,
            target: 2
        }
        .is_two_qubit());
        assert_eq!(
            Gate::Toffoli {
                c0: 0,
                c1: 1,
                target: 2
            }
            .qubits(),
            vec![0, 1, 2]
        );
    }

    #[test]
    fn cz_detection() {
        assert!(Gate::Cz(0, 1).is_cz());
        assert!(!Gate::Cnot {
            control: 0,
            target: 1
        }
        .is_cz());
    }

    #[test]
    fn display_format() {
        assert_eq!(Gate::H(3).to_string(), "h q3");
        assert_eq!(
            Gate::Cnot {
                control: 0,
                target: 1
            }
            .to_string(),
            "cx q0,q1"
        );
        let rz = Gate::Rz(2, std::f64::consts::PI).to_string();
        assert!(rz.starts_with("rz(3.1416)"), "{rz}");
    }

    #[test]
    fn names_are_distinct_per_kind() {
        let gates = [
            Gate::H(0),
            Gate::X(0),
            Gate::S(0),
            Gate::T(0),
            Gate::Cz(0, 1),
            Gate::Swap(0, 1),
            Gate::CPhase(0, 1, 0.1),
        ];
        let names: std::collections::HashSet<&str> = gates.iter().map(Gate::name).collect();
        assert_eq!(names.len(), gates.len());
    }
}
