//! Quantum-circuit IR and the DC-MBQC benchmark programs.
//!
//! MBQC programs start life as circuit-model programs (Section V-A of the
//! paper): the Quantum Approximate Optimization Algorithm (QAOA) on random
//! Max-Cut instances, the Variational Quantum Eigensolver (VQE) with a
//! hardware-efficient fully-entangled ansatz, the Quantum Fourier
//! Transform (QFT), and the Cuccaro Ripple-Carry Adder (RCA). This crate
//! provides:
//!
//! * [`Gate`] / [`Circuit`] — a small circuit IR with one-, two-, and
//!   three-qubit gates and angle parameters.
//! * [`decompose`] — rewriting passes down to the photonic-friendly
//!   `{1-qubit, CZ}` basis that the MBQC transpiler consumes
//!   (`mbqc-pattern`).
//! * [`bench`] — deterministic generators for the paper's four benchmark
//!   families, reproducing Table II's program statistics.
//!
//! # Examples
//!
//! ```
//! use mbqc_circuit::{bench, decompose};
//!
//! let qft = bench::qft(16);
//! assert_eq!(qft.num_qubits(), 16);
//! assert_eq!(qft.two_qubit_gate_count(), 120); // Table II row QFT-16
//!
//! let cz = decompose::to_cz_basis(&qft);
//! assert!(cz.gates().iter().all(|g| g.is_single_qubit() || g.is_cz()));
//! ```

pub mod bench;
pub mod circuit;
pub mod decompose;
pub mod gate;

pub use circuit::Circuit;
pub use gate::Gate;
