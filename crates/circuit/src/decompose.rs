//! Gate-decomposition passes.
//!
//! The photonic MBQC transpiler (`mbqc-pattern`) consumes circuits in the
//! `{single-qubit, CZ}` basis, because a CZ between two graph-state qubits
//! is exactly one entangling edge. These passes lower the richer benchmark
//! gate set step by step:
//!
//! 1. [`decompose_three_qubit`] — Toffoli → 6-CNOT + T network
//!    (the textbook decomposition; Table II's RCA row depends on this
//!    choice, see EXPERIMENTS.md).
//! 2. [`decompose_to_cnot`] — SWAP/CPhase/Rzz → CNOT + rotations.
//! 3. [`to_cz_basis`] — CNOT → H·CZ·H; everything else untouched.

use crate::{Circuit, Gate};

/// Rewrites all three-qubit gates into one- and two-qubit gates.
///
/// Toffoli uses the standard 6-CNOT, 7-T decomposition (Nielsen & Chuang
/// Fig. 4.9).
#[must_use]
pub fn decompose_three_qubit(circuit: &Circuit) -> Circuit {
    let mut out = Circuit::new(circuit.num_qubits());
    for &gate in circuit.gates() {
        match gate {
            Gate::Toffoli { c0, c1, target } => {
                out.h(target)
                    .cnot(c1, target)
                    .tdg(target)
                    .cnot(c0, target)
                    .t(target)
                    .cnot(c1, target)
                    .tdg(target)
                    .cnot(c0, target)
                    .t(c1)
                    .t(target)
                    .h(target)
                    .cnot(c0, c1)
                    .t(c0)
                    .tdg(c1)
                    .cnot(c0, c1);
            }
            g => {
                out.push(g).expect("gate valid in same register");
            }
        }
    }
    out
}

/// Rewrites SWAP, CPhase and Rzz into CNOT plus single-qubit rotations,
/// after first removing three-qubit gates.
///
/// * `SWAP(a,b)      = CNOT(a,b)·CNOT(b,a)·CNOT(a,b)`
/// * `CPhase(a,b,θ)  = Rz_a(θ/2)·CNOT(a,b)·Rz_b(−θ/2)·CNOT(a,b)·Rz_b(θ/2)`
///   (up to global phase)
/// * `Rzz(a,b,θ)     = CNOT(a,b)·Rz_b(θ)·CNOT(a,b)` (exact)
#[must_use]
pub fn decompose_to_cnot(circuit: &Circuit) -> Circuit {
    let lowered = decompose_three_qubit(circuit);
    let mut out = Circuit::new(lowered.num_qubits());
    for &gate in lowered.gates() {
        match gate {
            Gate::Swap(a, b) => {
                out.cnot(a, b).cnot(b, a).cnot(a, b);
            }
            Gate::CPhase(a, b, theta) => {
                // Program order (left-to-right application).
                out.rz(b, theta / 2.0)
                    .cnot(a, b)
                    .rz(b, -theta / 2.0)
                    .cnot(a, b)
                    .rz(a, theta / 2.0);
            }
            Gate::Rzz(a, b, theta) => {
                out.cnot(a, b).rz(b, theta).cnot(a, b);
            }
            g => {
                out.push(g).expect("gate valid in same register");
            }
        }
    }
    out
}

/// Fully lowers a circuit to the `{single-qubit, CZ}` basis consumed by
/// the MBQC transpiler: `CNOT(c,t) = H_t · CZ(c,t) · H_t`.
///
/// # Examples
///
/// ```
/// use mbqc_circuit::{decompose, Circuit};
///
/// let mut c = Circuit::new(3);
/// c.toffoli(0, 1, 2);
/// let cz = decompose::to_cz_basis(&c);
/// assert!(cz.gates().iter().all(|g| g.is_single_qubit() || g.is_cz()));
/// ```
#[must_use]
pub fn to_cz_basis(circuit: &Circuit) -> Circuit {
    let lowered = decompose_to_cnot(circuit);
    let mut out = Circuit::new(lowered.num_qubits());
    for &gate in lowered.gates() {
        match gate {
            Gate::Cnot { control, target } => {
                out.h(target).cz(control, target).h(target);
            }
            Gate::Cz(a, b) => {
                out.cz(a, b);
            }
            g if g.is_single_qubit() => {
                out.push(g).expect("gate valid in same register");
            }
            g => unreachable!("decompose_to_cnot left a non-CNOT multi-qubit gate: {g}"),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toffoli_expansion_counts() {
        let mut c = Circuit::new(3);
        c.toffoli(0, 1, 2);
        let d = decompose_three_qubit(&c);
        assert_eq!(d.two_qubit_gate_count(), 6);
        // 2 H + 7 T/Tdg single-qubit gates.
        assert_eq!(d.single_qubit_gate_count(), 9);
    }

    #[test]
    fn swap_is_three_cnots() {
        let mut c = Circuit::new(2);
        c.swap(0, 1);
        let d = decompose_to_cnot(&c);
        assert_eq!(d.two_qubit_gate_count(), 3);
        assert!(d.gates().iter().all(|g| matches!(g, Gate::Cnot { .. })));
    }

    #[test]
    fn cphase_is_two_cnots_three_rz() {
        let mut c = Circuit::new(2);
        c.cphase(0, 1, 0.7);
        let d = decompose_to_cnot(&c);
        assert_eq!(d.two_qubit_gate_count(), 2);
        let rz: Vec<f64> = d
            .gates()
            .iter()
            .filter_map(|g| match g {
                Gate::Rz(_, a) => Some(*a),
                _ => None,
            })
            .collect();
        assert_eq!(rz.len(), 3);
        assert!((rz.iter().sum::<f64>() - 0.35).abs() < 1e-12);
    }

    #[test]
    fn rzz_is_exact_sandwich() {
        let mut c = Circuit::new(2);
        c.rzz(0, 1, 1.3);
        let d = decompose_to_cnot(&c);
        assert_eq!(d.gate_count(), 3);
        assert!(matches!(d.gates()[0], Gate::Cnot { .. }));
        assert!(matches!(d.gates()[1], Gate::Rz(1, a) if (a - 1.3).abs() < 1e-12));
        assert!(matches!(d.gates()[2], Gate::Cnot { .. }));
    }

    #[test]
    fn cz_basis_is_pure() {
        let mut c = Circuit::new(4);
        c.h(0)
            .cnot(0, 1)
            .swap(1, 2)
            .cphase(2, 3, 0.4)
            .rzz(0, 3, 0.9)
            .toffoli(0, 1, 2);
        let d = to_cz_basis(&c);
        assert!(d.gates().iter().all(|g| g.is_single_qubit() || g.is_cz()));
        assert!(d.two_qubit_gate_count() > 0);
    }

    #[test]
    fn cz_basis_preserves_cz_count_for_cnot() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1).cnot(1, 0);
        let d = to_cz_basis(&c);
        let czs = d.gates().iter().filter(|g| g.is_cz()).count();
        assert_eq!(czs, 2);
        let hs = d.gates().iter().filter(|g| matches!(g, Gate::H(_))).count();
        assert_eq!(hs, 4);
    }

    #[test]
    fn single_qubit_gates_pass_through() {
        let mut c = Circuit::new(1);
        c.h(0).t(0).rz(0, 0.2).x(0);
        let d = to_cz_basis(&c);
        assert_eq!(d.gates(), c.gates());
    }
}
