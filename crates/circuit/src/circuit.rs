//! The circuit container.

use std::fmt;

use crate::gate::{Angle, Gate, Qubit};

/// Error produced when a gate references an out-of-range or repeated
/// qubit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidGateError {
    /// Index of the offending gate in the circuit.
    pub gate_index: usize,
    /// Human-readable reason.
    pub reason: String,
}

impl fmt::Display for InvalidGateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid gate at index {}: {}",
            self.gate_index, self.reason
        )
    }
}

impl std::error::Error for InvalidGateError {}

/// An ordered list of gates over a fixed qubit register.
///
/// The builder methods (`h`, `cnot`, …) return `&mut Self` for chaining
/// and panic on malformed qubit indices, following the "validate your
/// arguments" guideline; [`Circuit::push`] is the non-panicking fallible
/// entry point.
///
/// # Examples
///
/// ```
/// use mbqc_circuit::Circuit;
///
/// let mut c = Circuit::new(2);
/// c.h(0).cnot(0, 1);
/// assert_eq!(c.gate_count(), 2);
/// assert_eq!(c.two_qubit_gate_count(), 1);
/// assert_eq!(c.depth(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Circuit {
    num_qubits: usize,
    gates: Vec<Gate>,
}

impl Circuit {
    /// Creates an empty circuit over `num_qubits` qubits.
    #[must_use]
    pub fn new(num_qubits: usize) -> Self {
        Self {
            num_qubits,
            gates: Vec::new(),
        }
    }

    /// Number of qubits in the register.
    #[must_use]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The gate list in program order.
    #[must_use]
    pub fn gates(&self) -> &[Gate] {
        &self.gates
    }

    /// Total number of gates.
    #[must_use]
    pub fn gate_count(&self) -> usize {
        self.gates.len()
    }

    /// Returns `true` if the circuit contains no gates.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.gates.is_empty()
    }

    /// Number of two-qubit gates (three-qubit gates are *not* counted;
    /// decompose them first if you want Table II-style statistics).
    #[must_use]
    pub fn two_qubit_gate_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_two_qubit()).count()
    }

    /// Number of single-qubit gates.
    #[must_use]
    pub fn single_qubit_gate_count(&self) -> usize {
        self.gates.iter().filter(|g| g.is_single_qubit()).count()
    }

    /// Circuit depth: length of the longest chain of gates sharing qubits.
    #[must_use]
    pub fn depth(&self) -> usize {
        let mut frontier = vec![0usize; self.num_qubits];
        let mut depth = 0;
        for gate in &self.gates {
            let level = gate
                .qubits()
                .iter()
                .map(|&q| frontier[q])
                .max()
                .unwrap_or(0)
                + 1;
            for q in gate.qubits() {
                frontier[q] = level;
            }
            depth = depth.max(level);
        }
        depth
    }

    /// Validates a gate against the register without inserting it.
    fn validate(&self, gate: &Gate) -> Result<(), String> {
        let qs = gate.qubits();
        for &q in &qs {
            if q >= self.num_qubits {
                return Err(format!(
                    "qubit q{q} out of range (register has {} qubits)",
                    self.num_qubits
                ));
            }
        }
        for i in 0..qs.len() {
            for j in (i + 1)..qs.len() {
                if qs[i] == qs[j] {
                    return Err(format!("repeated qubit q{} in {gate}", qs[i]));
                }
            }
        }
        Ok(())
    }

    /// Appends a gate after validation.
    ///
    /// # Errors
    ///
    /// Returns [`InvalidGateError`] if the gate references an out-of-range
    /// or repeated qubit.
    pub fn push(&mut self, gate: Gate) -> Result<(), InvalidGateError> {
        self.validate(&gate).map_err(|reason| InvalidGateError {
            gate_index: self.gates.len(),
            reason,
        })?;
        self.gates.push(gate);
        Ok(())
    }

    fn push_expect(&mut self, gate: Gate) -> &mut Self {
        self.push(gate).expect("builder gate must be valid");
        self
    }

    /// Appends all gates from `other`.
    ///
    /// # Panics
    ///
    /// Panics if `other` uses more qubits than this circuit.
    pub fn append(&mut self, other: &Circuit) -> &mut Self {
        assert!(
            other.num_qubits <= self.num_qubits,
            "appended circuit uses more qubits"
        );
        for g in &other.gates {
            self.push_expect(*g);
        }
        self
    }

    // --- chained builder methods -----------------------------------------

    /// Appends a Hadamard. # Panics — on invalid qubit.
    pub fn h(&mut self, q: Qubit) -> &mut Self {
        self.push_expect(Gate::H(q))
    }
    /// Appends a Pauli-X. # Panics — on invalid qubit.
    pub fn x(&mut self, q: Qubit) -> &mut Self {
        self.push_expect(Gate::X(q))
    }
    /// Appends a Pauli-Y. # Panics — on invalid qubit.
    pub fn y(&mut self, q: Qubit) -> &mut Self {
        self.push_expect(Gate::Y(q))
    }
    /// Appends a Pauli-Z. # Panics — on invalid qubit.
    pub fn z(&mut self, q: Qubit) -> &mut Self {
        self.push_expect(Gate::Z(q))
    }
    /// Appends an S gate. # Panics — on invalid qubit.
    pub fn s(&mut self, q: Qubit) -> &mut Self {
        self.push_expect(Gate::S(q))
    }
    /// Appends an S† gate. # Panics — on invalid qubit.
    pub fn sdg(&mut self, q: Qubit) -> &mut Self {
        self.push_expect(Gate::Sdg(q))
    }
    /// Appends a T gate. # Panics — on invalid qubit.
    pub fn t(&mut self, q: Qubit) -> &mut Self {
        self.push_expect(Gate::T(q))
    }
    /// Appends a T† gate. # Panics — on invalid qubit.
    pub fn tdg(&mut self, q: Qubit) -> &mut Self {
        self.push_expect(Gate::Tdg(q))
    }
    /// Appends an Rx rotation. # Panics — on invalid qubit.
    pub fn rx(&mut self, q: Qubit, theta: Angle) -> &mut Self {
        self.push_expect(Gate::Rx(q, theta))
    }
    /// Appends an Ry rotation. # Panics — on invalid qubit.
    pub fn ry(&mut self, q: Qubit, theta: Angle) -> &mut Self {
        self.push_expect(Gate::Ry(q, theta))
    }
    /// Appends an Rz rotation. # Panics — on invalid qubit.
    pub fn rz(&mut self, q: Qubit, theta: Angle) -> &mut Self {
        self.push_expect(Gate::Rz(q, theta))
    }
    /// Appends a phase gate diag(1, e^{iθ}). # Panics — on invalid qubit.
    pub fn phase(&mut self, q: Qubit, theta: Angle) -> &mut Self {
        self.push_expect(Gate::Phase(q, theta))
    }
    /// Appends a CZ. # Panics — on invalid qubits.
    pub fn cz(&mut self, a: Qubit, b: Qubit) -> &mut Self {
        self.push_expect(Gate::Cz(a, b))
    }
    /// Appends a CNOT. # Panics — on invalid qubits.
    pub fn cnot(&mut self, control: Qubit, target: Qubit) -> &mut Self {
        self.push_expect(Gate::Cnot { control, target })
    }
    /// Appends a SWAP. # Panics — on invalid qubits.
    pub fn swap(&mut self, a: Qubit, b: Qubit) -> &mut Self {
        self.push_expect(Gate::Swap(a, b))
    }
    /// Appends a controlled phase. # Panics — on invalid qubits.
    pub fn cphase(&mut self, a: Qubit, b: Qubit, theta: Angle) -> &mut Self {
        self.push_expect(Gate::CPhase(a, b, theta))
    }
    /// Appends an Rzz interaction. # Panics — on invalid qubits.
    pub fn rzz(&mut self, a: Qubit, b: Qubit, theta: Angle) -> &mut Self {
        self.push_expect(Gate::Rzz(a, b, theta))
    }
    /// Appends a Toffoli. # Panics — on invalid qubits.
    pub fn toffoli(&mut self, c0: Qubit, c1: Qubit, target: Qubit) -> &mut Self {
        self.push_expect(Gate::Toffoli { c0, c1, target })
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "circuit[{} qubits, {} gates]",
            self.num_qubits,
            self.gates.len()
        )?;
        for g in &self.gates {
            writeln!(f, "  {g}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let mut c = Circuit::new(3);
        c.h(0).cnot(0, 1).cz(1, 2).rz(2, 0.25);
        assert_eq!(c.gate_count(), 4);
        assert_eq!(c.two_qubit_gate_count(), 2);
        assert_eq!(c.single_qubit_gate_count(), 2);
    }

    #[test]
    fn push_rejects_out_of_range() {
        let mut c = Circuit::new(2);
        let err = c.push(Gate::H(5)).unwrap_err();
        assert_eq!(err.gate_index, 0);
        assert!(err.to_string().contains("out of range"));
        assert!(c.is_empty());
    }

    #[test]
    fn push_rejects_repeated_qubit() {
        let mut c = Circuit::new(2);
        let err = c.push(Gate::Cz(1, 1)).unwrap_err();
        assert!(err.to_string().contains("repeated qubit"));
        let err = c
            .push(Gate::Toffoli {
                c0: 0,
                c1: 1,
                target: 0,
            })
            .unwrap_err();
        assert!(err.to_string().contains("repeated qubit"));
    }

    #[test]
    #[should_panic(expected = "builder gate must be valid")]
    fn builder_panics_on_invalid() {
        Circuit::new(1).cnot(0, 1);
    }

    #[test]
    fn depth_parallel_vs_serial() {
        let mut parallel = Circuit::new(4);
        parallel.h(0).h(1).h(2).h(3);
        assert_eq!(parallel.depth(), 1);

        let mut serial = Circuit::new(1);
        serial.h(0).t(0).h(0);
        assert_eq!(serial.depth(), 3);

        let mut mixed = Circuit::new(3);
        mixed.h(0).cnot(0, 1).cnot(1, 2);
        assert_eq!(mixed.depth(), 3);
    }

    #[test]
    fn depth_empty_is_zero() {
        assert_eq!(Circuit::new(5).depth(), 0);
    }

    #[test]
    fn append_copies_gates() {
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(2);
        b.cnot(0, 1);
        a.append(&b);
        assert_eq!(a.gate_count(), 2);
        assert_eq!(
            a.gates()[1],
            Gate::Cnot {
                control: 0,
                target: 1
            }
        );
    }

    #[test]
    #[should_panic(expected = "more qubits")]
    fn append_larger_register_panics() {
        let mut a = Circuit::new(1);
        let b = Circuit::new(2);
        a.append(&b);
    }

    #[test]
    fn display_lists_gates() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let s = c.to_string();
        assert!(s.contains("circuit[2 qubits, 2 gates]"));
        assert!(s.contains("h q0"));
        assert!(s.contains("cx q0,q1"));
    }
}
