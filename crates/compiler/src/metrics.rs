//! Algorithm 1: required photon lifetime.
//!
//! The paper's key metric (Section III): the maximum number of clock
//! cycles any photon must survive in a delay line. Three photon roles
//! contribute:
//!
//! * **fusees** wait for their fusion partner:
//!   `τ = |LayerIndex(u) − LayerIndex(v)|` per fusion pair;
//! * **measurees** wait for the classical signals determining their
//!   basis: a topological sweep of the real-time dependency DAG
//!   computes each photon's earliest measurable time `MTime`;
//! * **removees** (Z-measured) contribute nothing — signal shifting
//!   pushes their dependencies to classical post-processing.

use mbqc_graph::DiGraph;

/// Breakdown of the required photon lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LifetimeReport {
    /// Longest fusee wait (Part 1 of Algorithm 1).
    pub fusee: usize,
    /// Longest measuree wait (Part 2 of Algorithm 1).
    pub measuree: usize,
}

impl LifetimeReport {
    /// The required photon lifetime: `max(τ_fusee, τ_measuree)`.
    #[must_use]
    pub fn photon_lifetime(&self) -> usize {
        self.fusee.max(self.measuree)
    }
}

/// Algorithm 1 of the paper.
///
/// * `times[u]` — `LayerIndex(u)`: the execution-layer index (single
///   QPU) or scheduled start time (distributed) of photon `u`'s layer.
/// * `fusee_pairs` — `(time_u, time_v)` per realized fusion.
/// * `deps` — the real-time dependency DAG `G` (X-dependencies after
///   signal shifting).
///
/// # Panics
///
/// Panics if `deps` has a different node count than `times`, or contains
/// a cycle.
///
/// # Examples
///
/// ```
/// use mbqc_compiler::required_photon_lifetime;
/// use mbqc_graph::{DiGraph, NodeId};
///
/// // Two photons fused across 3 layers; a dependency chain 0 → 1.
/// let mut deps = DiGraph::with_nodes(2);
/// deps.add_edge(NodeId::new(0), NodeId::new(1));
/// let r = required_photon_lifetime(&[0, 3], &[(0, 3)], &deps);
/// assert_eq!(r.fusee, 3);
/// assert_eq!(r.photon_lifetime(), 3);
/// ```
#[must_use]
pub fn required_photon_lifetime(
    times: &[usize],
    fusee_pairs: &[(usize, usize)],
    deps: &DiGraph,
) -> LifetimeReport {
    assert_eq!(
        deps.node_count(),
        times.len(),
        "dependency graph and time table disagree"
    );
    // Part 1: fusee lifetime.
    let fusee = fusee_pairs
        .iter()
        .map(|&(a, b)| a.abs_diff(b))
        .max()
        .unwrap_or(0);

    // Part 2: measuree lifetime. MTime[u] = LayerIndex(u) + 1 (photon
    // reaches the measurement device one cycle after generation), pushed
    // later by parents' MTime + 1 (one cycle to compute the basis).
    let order = deps.topological_sort().expect("dependency graph is cyclic");
    let mut mtime = vec![0usize; times.len()];
    let mut measuree = 0usize;
    for u in order {
        let mut m = times[u.index()] + 1;
        for &p in deps.predecessors(u) {
            m = m.max(mtime[p.index()] + 1);
        }
        mtime[u.index()] = m;
        measuree = measuree.max(m - times[u.index()]);
    }
    LifetimeReport { fusee, measuree }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbqc_graph::NodeId;

    fn chain_deps(n: usize) -> DiGraph {
        let mut d = DiGraph::with_nodes(n);
        for i in 1..n {
            d.add_edge(NodeId::new(i - 1), NodeId::new(i));
        }
        d
    }

    #[test]
    fn no_photons_no_lifetime() {
        let r = required_photon_lifetime(&[], &[], &DiGraph::new());
        assert_eq!(r.photon_lifetime(), 0);
    }

    #[test]
    fn fusee_is_max_span() {
        let d = DiGraph::with_nodes(4);
        let r = required_photon_lifetime(&[0, 1, 5, 9], &[(0, 1), (5, 9), (1, 5)], &d);
        assert_eq!(r.fusee, 4);
    }

    #[test]
    fn measuree_trivial_when_no_deps() {
        // Without parents every photon is measurable one cycle after
        // generation: τ_measuree = 1.
        let d = DiGraph::with_nodes(3);
        let r = required_photon_lifetime(&[0, 2, 7], &[], &d);
        assert_eq!(r.measuree, 1);
    }

    #[test]
    fn measuree_chain_in_one_layer() {
        // All photons in layer 0 with a 4-chain of dependencies: the
        // last photon waits for the whole feed-forward cascade.
        let d = chain_deps(4);
        let r = required_photon_lifetime(&[0; 4], &[], &d);
        // MTime: 1, 2, 3, 4 → τ = 4 for the last photon.
        assert_eq!(r.measuree, 4);
    }

    #[test]
    fn measuree_absorbed_by_later_layers() {
        // Dependencies pointing forward in time cost nothing extra when
        // layers already serialize them.
        let d = chain_deps(4);
        let r = required_photon_lifetime(&[0, 1, 2, 3], &[], &d);
        assert_eq!(r.measuree, 1);
    }

    #[test]
    fn backward_dependency_is_expensive() {
        // Photon 1 generated at layer 0, but its basis depends on photon
        // 0 generated at layer 9: it waits ~10 cycles.
        let mut d = DiGraph::with_nodes(2);
        d.add_edge(NodeId::new(0), NodeId::new(1));
        let r = required_photon_lifetime(&[9, 0], &[], &d);
        assert_eq!(r.measuree, 11); // MTime[1] = max(1, 10+1) = 11
    }

    #[test]
    fn photon_lifetime_is_max_of_parts() {
        let d = chain_deps(2);
        let r = required_photon_lifetime(&[0, 8], &[(0, 8)], &d);
        assert_eq!(r.fusee, 8);
        assert!(r.photon_lifetime() >= 8);
    }

    #[test]
    fn shift_invariance() {
        // Shifting all times by a constant changes nothing.
        let d = chain_deps(3);
        let a = required_photon_lifetime(&[0, 4, 5], &[(0, 4), (4, 5)], &d);
        let b = required_photon_lifetime(&[100, 104, 105], &[(100, 104), (104, 105)], &d);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "cyclic")]
    fn cyclic_deps_panic() {
        let mut d = DiGraph::with_nodes(2);
        d.add_edge(NodeId::new(0), NodeId::new(1));
        d.add_edge(NodeId::new(1), NodeId::new(0));
        let _ = required_photon_lifetime(&[0, 0], &[], &d);
    }

    #[test]
    #[should_panic(expected = "disagree")]
    fn size_mismatch_panics() {
        let d = DiGraph::with_nodes(3);
        let _ = required_photon_lifetime(&[0, 1], &[], &d);
    }
}
