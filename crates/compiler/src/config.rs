//! Compiler configuration and errors.

use std::fmt;

use mbqc_hardware::ResourceStateKind;

/// Configuration of the single-QPU grid mapper.
///
/// # Examples
///
/// ```
/// use mbqc_compiler::CompilerConfig;
/// use mbqc_hardware::ResourceStateKind;
///
/// let cfg = CompilerConfig::new(7, ResourceStateKind::FIVE_STAR);
/// assert_eq!(cfg.usable_width(), 7);
/// let reserved = cfg.with_boundary_reservation(true);
/// assert_eq!(reserved.usable_width(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CompilerConfig {
    /// RSG grid side length.
    pub grid_width: usize,
    /// Resource state produced by every RSG.
    pub resource_state: ResourceStateKind,
    /// Seed for deterministic tie-breaking.
    pub seed: u64,
    /// OneAdapt-style dynamic refresh: wires older than this many layers
    /// are re-injected, bounding storage time. `None` disables refresh.
    pub refresh_interval: Option<usize>,
    /// Reserve the grid perimeter as communication interface
    /// (the Table V protocol: usable grid shrinks by 2 per dimension).
    pub boundary_reservation: bool,
    /// Candidate placement sites tried per node before deferring it to
    /// the next layer.
    pub placement_candidates: usize,
    /// Consecutive placement failures after which the current layer is
    /// considered congested and closed.
    pub congestion_limit: usize,
}

impl CompilerConfig {
    /// A default configuration for the given grid and resource state.
    #[must_use]
    pub fn new(grid_width: usize, resource_state: ResourceStateKind) -> Self {
        Self {
            grid_width,
            resource_state,
            seed: 42,
            refresh_interval: None,
            boundary_reservation: false,
            placement_candidates: 4,
            congestion_limit: 24,
        }
    }

    /// Sets the tie-breaking seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables OneAdapt-style dynamic refresh with the given bound.
    #[must_use]
    pub fn with_refresh(mut self, interval: usize) -> Self {
        self.refresh_interval = Some(interval);
        self
    }

    /// Enables or disables boundary reservation.
    #[must_use]
    pub fn with_boundary_reservation(mut self, on: bool) -> Self {
        self.boundary_reservation = on;
        self
    }

    /// Grid side length actually available for computation.
    #[must_use]
    pub fn usable_width(&self) -> usize {
        if self.boundary_reservation {
            self.grid_width.saturating_sub(2)
        } else {
            self.grid_width
        }
    }
}

/// Errors from [`GridMapper::compile`](crate::GridMapper::compile).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CompileError {
    /// The usable grid is empty (width 0 after reservation).
    EmptyGrid,
    /// The placement order misses or duplicates nodes.
    InvalidOrder(String),
    /// A node could not be placed within the retry budget — the grid is
    /// too small for the program's frontier.
    PlacementStuck {
        /// The node that failed to place.
        node: usize,
        /// Layers attempted.
        attempts: usize,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::EmptyGrid => write!(f, "usable grid is empty"),
            CompileError::InvalidOrder(msg) => write!(f, "invalid placement order: {msg}"),
            CompileError::PlacementStuck { node, attempts } => write!(
                f,
                "node n{node} could not be placed after {attempts} layers; grid too small for program frontier"
            ),
        }
    }
}

impl std::error::Error for CompileError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn usable_width_with_reservation() {
        let cfg = CompilerConfig::new(7, ResourceStateKind::FIVE_STAR);
        assert_eq!(cfg.usable_width(), 7);
        assert_eq!(cfg.with_boundary_reservation(true).usable_width(), 5);
        let tiny =
            CompilerConfig::new(1, ResourceStateKind::FIVE_STAR).with_boundary_reservation(true);
        assert_eq!(tiny.usable_width(), 0);
    }

    #[test]
    fn builder_chain() {
        let cfg = CompilerConfig::new(9, ResourceStateKind::FOUR_RING)
            .with_seed(7)
            .with_refresh(20);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.refresh_interval, Some(20));
    }

    #[test]
    fn error_display() {
        let e = CompileError::PlacementStuck {
            node: 3,
            attempts: 50,
        };
        assert!(e.to_string().contains("n3"));
        assert!(CompileError::EmptyGrid.to_string().contains("empty"));
    }
}
