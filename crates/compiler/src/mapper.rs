//! The spacetime grid mapper.
//!
//! Places computation-graph nodes onto a time-ordered sequence of RSG
//! grid layers (Section II-C's "second stage"): each node occupies one
//! resource state at one site of one layer; an edge is *realized* by an
//! intra-layer routing chain between its endpoints' sites the moment the
//! later endpoint is placed, with the earlier endpoint kept alive as a
//! *wire* (a chain of inter-layer fusions at its site). Edges that
//! cannot be routed through a congested layer are deferred: both wires
//! stay alive and the edge retries on later layers.

use std::collections::HashMap;

use mbqc_graph::{DiGraph, Graph, NodeId};
use mbqc_util::codec::{CodecError, Decoder, Encoder, UsizeSliceView};
use mbqc_util::Rng;

use crate::config::{CompileError, CompilerConfig};
use crate::grid::{LayerGrid, SiteState};
use crate::metrics::{required_photon_lifetime, LifetimeReport};

/// A realized fusion pair: edge `(a, b)` with the storage-epoch times of
/// both photons at realization (Algorithm 1's fusee inputs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuseePair {
    /// Earlier-placed endpoint.
    pub a: NodeId,
    /// Later-placed endpoint.
    pub b: NodeId,
    /// Storage epoch of `a` when the fusion happened (placement layer,
    /// or last refresh under dynamic refresh).
    pub time_a: usize,
    /// Layer at which the fusion happened (= `b`'s placement layer).
    pub time_b: usize,
}

/// Result of single-QPU compilation: execution layers plus the
/// bookkeeping needed for the required-photon-lifetime metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompiledProgram {
    /// Number of execution layers (= execution time in clock cycles at
    /// the logical-layer abstraction).
    pub num_layers: usize,
    /// Placement layer per node.
    pub layer_of: Vec<usize>,
    /// Storage epoch per node: placement layer, advanced by dynamic
    /// refresh events.
    pub effective_layer: Vec<usize>,
    /// Site index per node (within the usable grid).
    pub site_of: Vec<usize>,
    /// Realized fusion pairs with their times.
    pub fusee_pairs: Vec<FuseePair>,
    /// Total fusions: edge realizations (chain length + 1 each) plus
    /// wire inter-layer fusions.
    pub fusion_count: usize,
    /// Fusions spent on intra-layer routing chains only.
    pub routing_fusions: usize,
    /// Inter-layer wire fusions.
    pub wire_fusions: usize,
    /// Dynamic-refresh events (0 when refresh is disabled).
    pub refresh_events: usize,
}

impl CompiledProgram {
    /// Execution time in logical layers.
    #[must_use]
    pub fn execution_time(&self) -> usize {
        self.num_layers
    }

    /// Serializes the program with the hand-rolled binary codec (the
    /// per-QPU payload of the `Mapped` stage artifact in
    /// `mbqc-service`). The round trip is exact: every field, including
    /// fusee-pair order, is preserved.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.usize(self.num_layers);
        e.usize_slice(&self.layer_of);
        e.usize_slice(&self.effective_layer);
        e.usize_slice(&self.site_of);
        e.usize(self.fusee_pairs.len());
        for p in &self.fusee_pairs {
            e.usize(p.a.index());
            e.usize(p.b.index());
            e.usize(p.time_a);
            e.usize(p.time_b);
        }
        e.usize(self.fusion_count);
        e.usize(self.routing_fusions);
        e.usize(self.wire_fusions);
        e.usize(self.refresh_events);
        e.into_bytes()
    }

    /// Decodes a program written by [`CompiledProgram::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncated input or side tables whose
    /// lengths disagree.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut d = Decoder::new(bytes);
        let num_layers = d.usize()?;
        let layer_of = d.usize_vec()?;
        let effective_layer = d.usize_vec()?;
        let site_of = d.usize_vec()?;
        if effective_layer.len() != layer_of.len() || site_of.len() != layer_of.len() {
            return Err(CodecError::Invalid("per-node table lengths disagree"));
        }
        let pairs = d.len_hint()?;
        let mut fusee_pairs = Vec::with_capacity(pairs);
        for _ in 0..pairs {
            let a = d.usize()?;
            let b = d.usize()?;
            if a >= layer_of.len() || b >= layer_of.len() {
                return Err(CodecError::Invalid("fusee node out of range"));
            }
            fusee_pairs.push(FuseePair {
                a: NodeId::new(a),
                b: NodeId::new(b),
                time_a: d.usize()?,
                time_b: d.usize()?,
            });
        }
        let program = Self {
            num_layers,
            layer_of,
            effective_layer,
            site_of,
            fusee_pairs,
            fusion_count: d.usize()?,
            routing_fusions: d.usize()?,
            wire_fusions: d.usize()?,
            refresh_events: d.usize()?,
        };
        d.finish()?;
        Ok(program)
    }

    /// Validates `bytes` as a program artifact and returns a lazy
    /// [`CompiledProgramView`] over it. See the view's docs.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`CompiledProgram::from_bytes`] on the
    /// same bytes.
    pub fn view(bytes: &[u8]) -> Result<CompiledProgramView<'_>, CodecError> {
        CompiledProgramView::new(bytes)
    }

    /// Algorithm 1 on this compilation: required photon lifetime from
    /// the realized fusee pairs and the real-time dependency DAG.
    ///
    /// # Panics
    ///
    /// Panics if `deps` does not match the node count or is cyclic.
    #[must_use]
    pub fn lifetime(&self, deps: &DiGraph) -> LifetimeReport {
        let pairs: Vec<(usize, usize)> = self
            .fusee_pairs
            .iter()
            .map(|p| (p.time_a, p.time_b))
            .collect();
        required_photon_lifetime(&self.effective_layer, &pairs, deps)
    }
}

/// A zero-allocation lazy view over [`CompiledProgram::to_bytes`]
/// output.
///
/// [`CompiledProgramView::new`] performs the *complete* validation of
/// [`CompiledProgram::from_bytes`] — structure, side-table length
/// agreement, fusee node ranges — without materializing any vector;
/// field access afterwards decodes on demand and cannot fail. Property
/// tests pin the view's accept/reject classification and decoded values
/// bit-identical to the eager decoder on the full corruption corpus.
#[derive(Debug, Clone, Copy)]
pub struct CompiledProgramView<'a> {
    num_layers: usize,
    layer_of: UsizeSliceView<'a>,
    effective_layer: UsizeSliceView<'a>,
    site_of: UsizeSliceView<'a>,
    fusee_raw: &'a [u8],
    num_pairs: usize,
    fusion_count: usize,
    routing_fusions: usize,
    wire_fusions: usize,
    refresh_events: usize,
}

impl<'a> CompiledProgramView<'a> {
    /// Validates `bytes` and returns the lazy view.
    ///
    /// # Errors
    ///
    /// Exactly the errors of [`CompiledProgram::from_bytes`] on the
    /// same bytes: truncation, disagreeing table lengths, out-of-range
    /// fusee nodes, trailing bytes.
    pub fn new(bytes: &'a [u8]) -> Result<Self, CodecError> {
        let mut d = Decoder::new(bytes);
        let num_layers = d.usize()?;
        let layer_of = d.usize_slice_view()?;
        layer_of.validate_elements()?;
        let effective_layer = d.usize_slice_view()?;
        effective_layer.validate_elements()?;
        let site_of = d.usize_slice_view()?;
        site_of.validate_elements()?;
        if effective_layer.len() != layer_of.len() || site_of.len() != layer_of.len() {
            return Err(CodecError::Invalid("per-node table lengths disagree"));
        }
        let num_pairs = d.len_hint()?;
        let fusee_start = bytes.len() - d.remaining();
        // Walk the pairs in the eager decoder's order so truncation and
        // range errors classify identically, but keep only the raw
        // region — fields decode on demand.
        for _ in 0..num_pairs {
            let a = d.usize()?;
            let b = d.usize()?;
            if a >= layer_of.len() || b >= layer_of.len() {
                return Err(CodecError::Invalid("fusee node out of range"));
            }
            d.usize()?;
            d.usize()?;
        }
        let fusee_raw = &bytes[fusee_start..bytes.len() - d.remaining()];
        let fusion_count = d.usize()?;
        let routing_fusions = d.usize()?;
        let wire_fusions = d.usize()?;
        let refresh_events = d.usize()?;
        d.finish()?;
        Ok(Self {
            num_layers,
            layer_of,
            effective_layer,
            site_of,
            fusee_raw,
            num_pairs,
            fusion_count,
            routing_fusions,
            wire_fusions,
            refresh_events,
        })
    }

    /// Number of execution layers.
    #[must_use]
    pub fn num_layers(&self) -> usize {
        self.num_layers
    }

    /// Number of nodes (length of the per-node tables).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.layer_of.len()
    }

    /// Placement layer per node (lazy).
    #[must_use]
    pub fn layer_of(&self) -> UsizeSliceView<'a> {
        self.layer_of
    }

    /// Storage epoch per node (lazy).
    #[must_use]
    pub fn effective_layer(&self) -> UsizeSliceView<'a> {
        self.effective_layer
    }

    /// Site index per node (lazy).
    #[must_use]
    pub fn site_of(&self) -> UsizeSliceView<'a> {
        self.site_of
    }

    /// Number of realized fusion pairs.
    #[must_use]
    pub fn num_fusee_pairs(&self) -> usize {
        self.num_pairs
    }

    /// Decodes fusee pair `i` (`None` out of range). Validated at view
    /// construction, so the decode cannot fail.
    #[must_use]
    pub fn fusee_pair(&self, i: usize) -> Option<FuseePair> {
        if i >= self.num_pairs {
            return None;
        }
        let mut d = Decoder::new(&self.fusee_raw[i * 32..i * 32 + 32]);
        let pair = FuseePair {
            a: NodeId::new(d.usize().expect("validated at construction")),
            b: NodeId::new(d.usize().expect("validated at construction")),
            time_a: d.usize().expect("validated at construction"),
            time_b: d.usize().expect("validated at construction"),
        };
        Some(pair)
    }

    /// Total fusion count.
    #[must_use]
    pub fn fusion_count(&self) -> usize {
        self.fusion_count
    }

    /// Routing-chain fusions.
    #[must_use]
    pub fn routing_fusions(&self) -> usize {
        self.routing_fusions
    }

    /// Inter-layer wire fusions.
    #[must_use]
    pub fn wire_fusions(&self) -> usize {
        self.wire_fusions
    }

    /// Dynamic-refresh events.
    #[must_use]
    pub fn refresh_events(&self) -> usize {
        self.refresh_events
    }

    /// Materializes the eager [`CompiledProgram`].
    #[must_use]
    pub fn materialize(&self) -> CompiledProgram {
        CompiledProgram {
            num_layers: self.num_layers,
            layer_of: self.layer_of.to_vec().expect("validated at construction"),
            effective_layer: self
                .effective_layer
                .to_vec()
                .expect("validated at construction"),
            site_of: self.site_of.to_vec().expect("validated at construction"),
            fusee_pairs: (0..self.num_pairs)
                .map(|i| self.fusee_pair(i).expect("index in range"))
                .collect(),
            fusion_count: self.fusion_count,
            routing_fusions: self.routing_fusions,
            wire_fusions: self.wire_fusions,
            refresh_events: self.refresh_events,
        }
    }
}

/// The single-QPU compiler.
///
/// # Examples
///
/// ```
/// use mbqc_compiler::{CompilerConfig, GridMapper};
/// use mbqc_graph::generate;
/// use mbqc_hardware::ResourceStateKind;
///
/// let g = generate::path_graph(12);
/// let order: Vec<_> = g.nodes().collect();
/// let mapper = GridMapper::new(CompilerConfig::new(5, ResourceStateKind::FIVE_STAR));
/// let compiled = mapper.compile(&g, &order).unwrap();
/// assert_eq!(compiled.fusee_pairs.len(), g.edge_count());
/// ```
#[derive(Debug, Clone)]
pub struct GridMapper {
    config: CompilerConfig,
}

impl GridMapper {
    /// Creates a mapper with the given configuration.
    #[must_use]
    pub fn new(config: CompilerConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &CompilerConfig {
        &self.config
    }

    /// Compiles `graph` with the given placement `order` (a permutation
    /// of all nodes; a flow-respecting topological order for MBQC
    /// patterns).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] when the usable grid is empty, the order
    /// is not a permutation, or the live frontier exceeds grid capacity
    /// (no progress for several consecutive layers).
    pub fn compile(
        &self,
        graph: &Graph,
        order: &[NodeId],
    ) -> Result<CompiledProgram, CompileError> {
        self.compile_with(graph, order, &mut MapperWorkspace::new())
    }

    /// [`GridMapper::compile`] with a caller-owned [`MapperWorkspace`]:
    /// identical results, and repeated compilations (a batch service, a
    /// per-QPU worker) reuse the placement-state buffers instead of
    /// re-allocating them. Only the buffers that escape into the
    /// returned [`CompiledProgram`] are freshly allocated per call.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError`] when the usable grid is empty, the order
    /// is not a permutation, or the live frontier exceeds grid capacity
    /// (no progress for several consecutive layers).
    pub fn compile_with(
        &self,
        graph: &Graph,
        order: &[NodeId],
        ws: &mut MapperWorkspace,
    ) -> Result<CompiledProgram, CompileError> {
        let n = graph.node_count();
        let width = self.config.usable_width();
        if width == 0 && n > 0 {
            return Err(CompileError::EmptyGrid);
        }
        // Validate the order.
        {
            let seen = &mut ws.seen;
            seen.clear();
            seen.resize(n, false);
            for &u in order {
                if u.index() >= n || seen[u.index()] {
                    return Err(CompileError::InvalidOrder(format!(
                        "node {u} out of range or duplicated"
                    )));
                }
                seen[u.index()] = true;
            }
            if order.len() != n {
                return Err(CompileError::InvalidOrder(format!(
                    "order covers {} of {} nodes",
                    order.len(),
                    n
                )));
            }
        }
        if n == 0 {
            return Ok(CompiledProgram {
                num_layers: 0,
                layer_of: Vec::new(),
                effective_layer: Vec::new(),
                site_of: Vec::new(),
                fusee_pairs: Vec::new(),
                fusion_count: 0,
                routing_fusions: 0,
                wire_fusions: 0,
                refresh_events: 0,
            });
        }

        let kind = self.config.resource_state;
        let route_cap = kind.routing_capacity();
        // Spare photons a wire's fresh per-layer state offers for
        // lateral attachments (two photons maintain the chain itself).
        let wire_attach_cap = kind.photons().saturating_sub(2).max(1);
        // Pass-throughs a wire site can bridge per layer (two spare
        // photons each); prevents enclosed wires from deadlocking.
        let wire_pass_cap = (kind.photons().saturating_sub(2) / 2).max(1);
        // Fusion arms on a freshly placed node's state.
        let node_arms = kind.degree_capacity();

        let mut rng = Rng::seed_from_u64(self.config.seed);
        let MapperWorkspace {
            state: st,
            pending,
            pending_edges,
            still_pending,
            ..
        } = ws;
        st.reset(n, graph);
        pending.clear();
        pending.extend_from_slice(order);
        pending_edges.clear();
        let mut t = 0usize;
        let mut stagnant_layers = 0usize;
        let mut spread_cursor = 0usize;

        while !pending.is_empty() || !pending_edges.is_empty() {
            // --- open layer t: wires occupy their sites -----------------
            let mut grid = LayerGrid::new(width);
            for &u in &st.live_wires {
                grid.set(st.site_of[u.index()], SiteState::Wire(u));
                st.wire_fusions += 1;
            }
            // Per-layer attachment budgets (wires and fresh nodes) and
            // per-site wire pass-through usage.
            let mut attach_used: HashMap<NodeId, usize> = HashMap::new();
            let mut wire_pass_used: HashMap<usize, usize> = HashMap::new();
            let mut placed_this_layer: Vec<NodeId> = Vec::new();
            let mut progressed = false;

            // --- 1. retry deferred edges --------------------------------
            still_pending.clear();
            for (u, v) in pending_edges.drain(..) {
                if Self::try_realize_edge(
                    u,
                    v,
                    &mut grid,
                    st,
                    &mut attach_used,
                    &mut wire_pass_used,
                    (wire_attach_cap, wire_pass_cap, node_arms, route_cap),
                    t,
                    &placed_this_layer,
                ) {
                    progressed = true;
                } else {
                    still_pending.push((u, v));
                }
            }
            std::mem::swap(pending_edges, still_pending);

            // --- 2. place new nodes in order -----------------------------
            let mut failures = 0usize;
            let mut i = 0usize;
            while i < pending.len() {
                if grid.free_count() == 0 || failures >= self.config.congestion_limit {
                    break;
                }
                let u = pending[i];
                match self.try_place(
                    u,
                    &mut grid,
                    st,
                    &mut attach_used,
                    &mut wire_pass_used,
                    pending_edges,
                    (wire_attach_cap, wire_pass_cap, node_arms, route_cap),
                    t,
                    &placed_this_layer,
                    &mut spread_cursor,
                    &mut rng,
                ) {
                    true => {
                        placed_this_layer.push(u);
                        pending.remove(i);
                        progressed = true;
                        failures = 0;
                    }
                    false => {
                        failures += 1;
                        i += 1;
                    }
                }
            }

            // --- close layer t -------------------------------------------
            // Wire lifecycle: newly placed nodes with open edges start
            // wires; realized-out wires die.
            for &u in &placed_this_layer {
                if st.open_edges[u.index()] > 0 {
                    st.live_wires.push(u);
                }
            }
            st.live_wires.retain(|&u| st.open_edges[u.index()] > 0);

            // Dynamic refresh.
            if let Some(d) = self.config.refresh_interval {
                for &u in &st.live_wires {
                    if t + 1 >= st.effective_layer[u.index()] + d {
                        st.effective_layer[u.index()] = t + 1;
                        st.refresh_events += 1;
                    }
                }
            }

            if progressed {
                stagnant_layers = 0;
            } else {
                stagnant_layers += 1;
                if stagnant_layers > 3 {
                    let node = pending
                        .first()
                        .map_or_else(|| pending_edges[0].0.index(), |u| u.index());
                    return Err(CompileError::PlacementStuck {
                        node,
                        attempts: t + 1,
                    });
                }
            }
            t += 1;
        }

        Ok(CompiledProgram {
            num_layers: t,
            layer_of: std::mem::take(&mut st.layer_of),
            effective_layer: std::mem::take(&mut st.effective_layer),
            site_of: std::mem::take(&mut st.site_of),
            fusee_pairs: std::mem::take(&mut st.fusee_pairs),
            fusion_count: st.edge_fusions + st.routing_fusions + st.wire_fusions,
            routing_fusions: st.routing_fusions,
            wire_fusions: st.wire_fusions,
            refresh_events: st.refresh_events,
        })
    }

    /// Attempts to place node `u` in the open layer, routing as many
    /// edges to already-placed neighbors as budgets allow (the rest are
    /// deferred). Returns `false` only when no free site exists.
    ///
    /// `caps = (wire_attach_cap, wire_pass_cap, node_arms, route_cap)`.
    #[allow(clippy::too_many_arguments)]
    fn try_place(
        &self,
        u: NodeId,
        grid: &mut LayerGrid,
        st: &mut MapperState,
        attach_used: &mut HashMap<NodeId, usize>,
        wire_pass_used: &mut HashMap<usize, usize>,
        pending_edges: &mut Vec<(NodeId, NodeId)>,
        caps: (usize, usize, usize, usize),
        t: usize,
        placed_this_layer: &[NodeId],
        spread_cursor: &mut usize,
        rng: &mut Rng,
    ) -> bool {
        let node_arms = caps.2;
        let free = grid.free_sites();
        if free.is_empty() {
            return false;
        }
        // Placed neighbors whose edge to u is still unrealized.
        let nbr_endpoints: Vec<(NodeId, usize)> = st
            .graph_neighbors(u)
            .iter()
            .filter(|v| st.placed[v.index()] && !st.edge_realized(u, **v))
            .map(|&v| (v, st.site_of[v.index()]))
            .collect();

        // Candidate sites: nearest to the neighbor endpoints, or a
        // spread-out pick for isolated placements.
        let site = if nbr_endpoints.is_empty() {
            *spread_cursor = (*spread_cursor + 7 + (rng.next_u64() % 3) as usize) % free.len();
            free[*spread_cursor % free.len()]
        } else {
            let mut best = free[0];
            let mut best_cost = usize::MAX;
            for &s in &free {
                let cost: usize = nbr_endpoints
                    .iter()
                    .map(|&(_, e)| grid.distance(s, e))
                    .sum();
                if cost < best_cost {
                    best_cost = cost;
                    best = s;
                }
            }
            best
        };

        grid.set(site, SiteState::Node(u));
        st.placed[u.index()] = true;
        st.site_of[u.index()] = site;
        st.layer_of[u.index()] = t;
        st.effective_layer[u.index()] = t;

        // Route to neighbors, nearest first, within u's arm budget.
        let mut ordered = nbr_endpoints;
        ordered.sort_by_key(|&(_, e)| grid.distance(site, e));
        for (v, _) in ordered {
            let arms_for_wire = usize::from(st.open_edges[u.index()] > 1);
            let budget = node_arms.saturating_sub(arms_for_wire);
            if attach_used.get(&u).copied().unwrap_or(0) >= budget {
                pending_edges.push((u, v));
                continue;
            }
            if !Self::try_realize_edge(
                v,
                u,
                grid,
                st,
                attach_used,
                wire_pass_used,
                caps,
                t,
                placed_this_layer,
            ) {
                pending_edges.push((u, v));
            }
        }
        true
    }

    /// Attempts to realize edge `(a, b)` (both placed) by routing between
    /// their current sites in the open layer. Returns `true` on success.
    ///
    /// `caps = (wire_attach_cap, wire_pass_cap, node_arms, route_cap)`.
    #[allow(clippy::too_many_arguments)]
    fn try_realize_edge(
        a: NodeId,
        b: NodeId,
        grid: &mut LayerGrid,
        st: &mut MapperState,
        attach_used: &mut HashMap<NodeId, usize>,
        wire_pass_used: &mut HashMap<usize, usize>,
        caps: (usize, usize, usize, usize),
        t: usize,
        placed_this_layer: &[NodeId],
    ) -> bool {
        let (wire_attach_cap, wire_pass_cap, node_arms, route_cap) = caps;
        if !st.placed[a.index()] || !st.placed[b.index()] || st.edge_realized(a, b) {
            return false;
        }
        // Per-endpoint attachment budget: fresh nodes use their state's
        // arms; wires use the spare photons of this layer's chain state.
        let budget = |x: NodeId| -> usize {
            if placed_this_layer.contains(&x) {
                node_arms
            } else {
                wire_attach_cap
            }
        };
        for x in [a, b] {
            if attach_used.get(&x).copied().unwrap_or(0) >= budget(x) {
                return false;
            }
        }
        let sa = st.site_of[a.index()];
        let sb = st.site_of[b.index()];
        let path = {
            let capacity_of = |s: usize| -> usize {
                match grid.state(s) {
                    SiteState::Free => route_cap,
                    SiteState::Route { remaining } => remaining,
                    // A wire's spare photons can bridge routes through
                    // its site (two spare photons per pass-through).
                    SiteState::Wire(_) => {
                        wire_pass_cap.saturating_sub(wire_pass_used.get(&s).copied().unwrap_or(0))
                    }
                    SiteState::Node(_) => 0,
                }
            };
            grid.route(sa, sb, capacity_of)
        };
        let Some(path) = path else {
            return false;
        };
        // Commit the path.
        for &s in &path {
            match grid.state(s) {
                SiteState::Free => grid.set(
                    s,
                    SiteState::Route {
                        remaining: route_cap - 1,
                    },
                ),
                SiteState::Route { remaining } => grid.set(
                    s,
                    SiteState::Route {
                        remaining: remaining - 1,
                    },
                ),
                SiteState::Wire(_) => {
                    *wire_pass_used.entry(s).or_insert(0) += 1;
                }
                SiteState::Node(_) => unreachable!("route traverses only passable sites"),
            }
        }
        *attach_used.entry(a).or_insert(0) += 1;
        *attach_used.entry(b).or_insert(0) += 1;
        st.mark_edge_realized(a, b);
        st.routing_fusions += path.len();
        st.edge_fusions += 1;
        let (first, second) = if st.layer_of[a.index()] <= st.layer_of[b.index()] {
            (a, b)
        } else {
            (b, a)
        };
        st.fusee_pairs.push(FuseePair {
            a: first,
            b: second,
            time_a: st.effective_layer[first.index()],
            time_b: t.max(st.effective_layer[second.index()]),
        });
        true
    }
}

/// Reusable placement-state buffers for [`GridMapper::compile_with`].
/// One workspace serves any sequence of graphs (buffers are resized per
/// call); a compile session keeps one per mapping worker.
#[derive(Debug, Default)]
pub struct MapperWorkspace {
    state: MapperState,
    pending: Vec<NodeId>,
    pending_edges: Vec<(NodeId, NodeId)>,
    still_pending: Vec<(NodeId, NodeId)>,
    seen: Vec<bool>,
}

impl MapperWorkspace {
    /// An empty workspace; buffers grow on first use.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

/// Mutable compilation state.
#[derive(Debug, Default)]
struct MapperState {
    placed: Vec<bool>,
    site_of: Vec<usize>,
    layer_of: Vec<usize>,
    effective_layer: Vec<usize>,
    open_edges: Vec<usize>,
    live_wires: Vec<NodeId>,
    realized: std::collections::HashSet<(u32, u32)>,
    adjacency: Vec<Vec<NodeId>>,
    fusee_pairs: Vec<FuseePair>,
    edge_fusions: usize,
    routing_fusions: usize,
    wire_fusions: usize,
    refresh_events: usize,
}

impl MapperState {
    /// Rearms the state for an `n`-node graph, reusing every buffer.
    fn reset(&mut self, n: usize, graph: &Graph) {
        self.placed.clear();
        self.placed.resize(n, false);
        self.site_of.clear();
        self.site_of.resize(n, 0);
        self.layer_of.clear();
        self.layer_of.resize(n, 0);
        self.effective_layer.clear();
        self.effective_layer.resize(n, 0);
        self.open_edges.clear();
        self.open_edges
            .extend((0..n).map(|i| graph.degree(NodeId::new(i))));
        self.live_wires.clear();
        self.realized.clear();
        self.adjacency.truncate(n);
        for list in &mut self.adjacency {
            list.clear();
        }
        self.adjacency.resize_with(n, Vec::new);
        for (i, list) in self.adjacency.iter_mut().enumerate() {
            list.extend(graph.neighbors(NodeId::new(i)));
        }
        self.fusee_pairs.clear();
        self.edge_fusions = 0;
        self.routing_fusions = 0;
        self.wire_fusions = 0;
        self.refresh_events = 0;
    }

    fn graph_neighbors(&self, u: NodeId) -> &[NodeId] {
        &self.adjacency[u.index()]
    }

    fn edge_key(a: NodeId, b: NodeId) -> (u32, u32) {
        let (x, y) = (a.index() as u32, b.index() as u32);
        if x < y {
            (x, y)
        } else {
            (y, x)
        }
    }

    fn edge_realized(&self, a: NodeId, b: NodeId) -> bool {
        self.realized.contains(&Self::edge_key(a, b))
    }

    fn mark_edge_realized(&mut self, a: NodeId, b: NodeId) {
        let inserted = self.realized.insert(Self::edge_key(a, b));
        debug_assert!(inserted, "edge realized twice");
        self.open_edges[a.index()] -= 1;
        self.open_edges[b.index()] -= 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbqc_graph::generate;
    use mbqc_hardware::ResourceStateKind;

    fn compile(
        g: &Graph,
        width: usize,
        kind: ResourceStateKind,
    ) -> Result<CompiledProgram, CompileError> {
        let order: Vec<NodeId> = g.nodes().collect();
        GridMapper::new(CompilerConfig::new(width, kind)).compile(g, &order)
    }

    #[test]
    fn empty_graph_compiles_trivially() {
        let g = Graph::new();
        let c = compile(&g, 3, ResourceStateKind::FIVE_STAR).unwrap();
        assert_eq!(c.num_layers, 0);
        assert_eq!(c.fusion_count, 0);
    }

    #[test]
    fn codec_round_trips_real_compilations() {
        for g in [
            Graph::new(),
            generate::path_graph(20),
            generate::grid_graph(5, 5),
        ] {
            let c = compile(&g, 5, ResourceStateKind::FIVE_STAR).unwrap();
            let back = CompiledProgram::from_bytes(&c.to_bytes()).unwrap();
            assert_eq!(back, c);
        }
        // Truncation is an error, not a garbage program.
        let c = compile(&generate::path_graph(6), 5, ResourceStateKind::FIVE_STAR).unwrap();
        let bytes = c.to_bytes();
        assert!(CompiledProgram::from_bytes(&bytes[..bytes.len() - 1]).is_err());
    }

    #[test]
    fn path_graph_all_edges_realized() {
        let g = generate::path_graph(20);
        let c = compile(&g, 5, ResourceStateKind::FIVE_STAR).unwrap();
        assert_eq!(c.fusee_pairs.len(), g.edge_count());
        assert!(c.num_layers >= 1);
        // Every node placed exactly once; layer within range.
        for u in g.nodes() {
            assert!(c.layer_of[u.index()] < c.num_layers);
        }
    }

    #[test]
    fn fusee_pair_times_match_layers_without_refresh() {
        let g = generate::cycle_graph(12);
        let c = compile(&g, 4, ResourceStateKind::FIVE_STAR).unwrap();
        for p in &c.fusee_pairs {
            assert_eq!(p.time_a, c.layer_of[p.a.index()]);
            assert!(p.time_b >= p.time_a);
        }
    }

    #[test]
    fn bigger_grid_is_no_slower() {
        let g = generate::grid_graph(6, 6);
        let small = compile(&g, 4, ResourceStateKind::FIVE_STAR).unwrap();
        let large = compile(&g, 9, ResourceStateKind::FIVE_STAR).unwrap();
        assert!(
            large.num_layers <= small.num_layers,
            "large {} vs small {}",
            large.num_layers,
            small.num_layers
        );
    }

    #[test]
    fn high_degree_hub_defers_edges() {
        // A 12-leaf star: the hub's state has only deg_capacity arms, so
        // leaves beyond the budget realize via the hub's wire on later
        // layers.
        let g = generate::star_graph(13);
        let c = compile(&g, 5, ResourceStateKind::FOUR_RING).unwrap();
        assert_eq!(c.fusee_pairs.len(), 12);
        assert!(c.num_layers >= 2, "deferral must span layers");
    }

    #[test]
    fn six_ring_routes_congested_layers_better() {
        // Dense random-ish graph on a small grid: pass-through capacity 2
        // (6-ring) should not be slower than capacity 1 at equal photon
        // count comparisons aside.
        let g = generate::complete_graph(10);
        let five = compile(&g, 4, ResourceStateKind::FIVE_STAR).unwrap();
        let six = compile(&g, 4, ResourceStateKind::SIX_RING).unwrap();
        assert!(six.num_layers <= five.num_layers + 1);
    }

    #[test]
    fn boundary_reservation_shrinks_grid() {
        let g = generate::grid_graph(5, 5);
        let order: Vec<NodeId> = g.nodes().collect();
        let plain = GridMapper::new(CompilerConfig::new(6, ResourceStateKind::FIVE_STAR))
            .compile(&g, &order)
            .unwrap();
        let reserved = GridMapper::new(
            CompilerConfig::new(6, ResourceStateKind::FIVE_STAR).with_boundary_reservation(true),
        )
        .compile(&g, &order)
        .unwrap();
        assert!(reserved.num_layers >= plain.num_layers);
    }

    #[test]
    fn refresh_bounds_long_wire_epochs() {
        // A long chain plus a chord from node 0 to the far end keeps
        // node 0's wire alive for many layers; refresh must advance its
        // epoch so the realized fusee span stays bounded.
        let mut g = generate::path_graph(40);
        g.add_edge(NodeId::new(0), NodeId::new(39));
        let order: Vec<NodeId> = g.nodes().collect();
        let no_refresh = GridMapper::new(CompilerConfig::new(3, ResourceStateKind::FIVE_STAR))
            .compile(&g, &order)
            .unwrap();
        let with_refresh =
            GridMapper::new(CompilerConfig::new(3, ResourceStateKind::FIVE_STAR).with_refresh(3))
                .compile(&g, &order)
                .unwrap();
        let span = |c: &CompiledProgram| {
            c.fusee_pairs
                .iter()
                .map(|p| p.time_b - p.time_a)
                .max()
                .unwrap()
        };
        assert!(with_refresh.refresh_events > 0);
        assert!(
            span(&with_refresh) <= 4,
            "refresh span {} (no-refresh span {})",
            span(&with_refresh),
            span(&no_refresh)
        );
        assert!(span(&no_refresh) > 4);
    }

    #[test]
    fn stuck_frontier_reports_error() {
        // K9 on a 2×2 grid: wires saturate the four sites and nothing
        // can ever complete.
        let g = generate::complete_graph(9);
        let err = compile(&g, 2, ResourceStateKind::FOUR_RING).unwrap_err();
        assert!(matches!(err, CompileError::PlacementStuck { .. }));
    }

    #[test]
    fn empty_grid_error() {
        let g = generate::path_graph(2);
        let order: Vec<NodeId> = g.nodes().collect();
        let err = GridMapper::new(
            CompilerConfig::new(2, ResourceStateKind::FIVE_STAR).with_boundary_reservation(true),
        )
        .compile(&g, &order)
        .unwrap_err();
        assert_eq!(err, CompileError::EmptyGrid);
    }

    #[test]
    fn invalid_order_detected() {
        let g = generate::path_graph(3);
        let mapper = GridMapper::new(CompilerConfig::new(3, ResourceStateKind::FIVE_STAR));
        let dup = vec![NodeId::new(0), NodeId::new(0), NodeId::new(1)];
        assert!(matches!(
            mapper.compile(&g, &dup),
            Err(CompileError::InvalidOrder(_))
        ));
        let short = vec![NodeId::new(0)];
        assert!(matches!(
            mapper.compile(&g, &short),
            Err(CompileError::InvalidOrder(_))
        ));
    }

    #[test]
    fn deterministic_given_seed() {
        let g = generate::grid_graph(5, 5);
        let order: Vec<NodeId> = g.nodes().collect();
        let cfg = CompilerConfig::new(4, ResourceStateKind::FIVE_STAR).with_seed(9);
        let a = GridMapper::new(cfg).compile(&g, &order).unwrap();
        let b = GridMapper::new(cfg).compile(&g, &order).unwrap();
        assert_eq!(a.layer_of, b.layer_of);
        assert_eq!(a.num_layers, b.num_layers);
        assert_eq!(a.fusion_count, b.fusion_count);
    }

    #[test]
    fn workspace_reuse_is_bit_identical() {
        // One workspace driven through graphs of different sizes and
        // shapes must reproduce the fresh-allocation path exactly.
        let mut ws = MapperWorkspace::new();
        let graphs = [
            generate::grid_graph(5, 5),
            generate::path_graph(30),
            generate::star_graph(9),
            generate::grid_graph(4, 7),
        ];
        let mapper = GridMapper::new(CompilerConfig::new(5, ResourceStateKind::FIVE_STAR));
        for (i, g) in graphs.iter().enumerate() {
            let order: Vec<NodeId> = g.nodes().collect();
            let fresh = mapper.compile(g, &order).unwrap();
            let reused = mapper.compile_with(g, &order, &mut ws).unwrap();
            assert_eq!(fresh.layer_of, reused.layer_of, "graph {i}");
            assert_eq!(fresh.site_of, reused.site_of, "graph {i}");
            assert_eq!(fresh.fusee_pairs, reused.fusee_pairs, "graph {i}");
            assert_eq!(fresh.fusion_count, reused.fusion_count, "graph {i}");
        }
    }

    #[test]
    fn fusion_count_decomposition() {
        let g = generate::grid_graph(4, 4);
        let c = compile(&g, 4, ResourceStateKind::FIVE_STAR).unwrap();
        assert_eq!(
            c.fusion_count,
            g.edge_count() + c.routing_fusions + c.wire_fusions
        );
    }
}
