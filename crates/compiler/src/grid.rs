//! One logical layer of the RSG grid.

use std::collections::VecDeque;

use mbqc_graph::NodeId;

/// What a site's resource state is consumed by within one layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SiteState {
    /// Unused this layer.
    Free,
    /// Hosts a freshly placed computation node.
    Node(NodeId),
    /// Carries a live wire (inter-layer fusion chain) of a placed node.
    Wire(NodeId),
    /// Part of one or more intra-layer routing chains; `remaining` is
    /// the pass-through capacity left (the 6-ring starts at 2, others
    /// at 1).
    Route {
        /// Pass-throughs still available on this state.
        remaining: usize,
    },
}

/// A `width × width` layer of resource-state sites.
#[derive(Debug, Clone)]
pub struct LayerGrid {
    width: usize,
    sites: Vec<SiteState>,
}

impl LayerGrid {
    /// An all-free layer.
    #[must_use]
    pub fn new(width: usize) -> Self {
        Self {
            width,
            sites: vec![SiteState::Free; width * width],
        }
    }

    /// Grid side length.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Number of sites.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sites.len()
    }

    /// `true` for zero-size grids.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sites.is_empty()
    }

    /// State at linear site index `s`.
    #[must_use]
    pub fn state(&self, s: usize) -> SiteState {
        self.sites[s]
    }

    /// Sets the state at site `s`.
    pub fn set(&mut self, s: usize, state: SiteState) {
        self.sites[s] = state;
    }

    /// `(row, col)` of a linear index.
    #[must_use]
    pub fn coords(&self, s: usize) -> (usize, usize) {
        (s / self.width, s % self.width)
    }

    /// Linear index of `(row, col)`.
    #[must_use]
    pub fn index(&self, row: usize, col: usize) -> usize {
        row * self.width + col
    }

    /// Manhattan distance between two sites.
    #[must_use]
    pub fn distance(&self, a: usize, b: usize) -> usize {
        let (ar, ac) = self.coords(a);
        let (br, bc) = self.coords(b);
        ar.abs_diff(br) + ac.abs_diff(bc)
    }

    /// 4-neighborhood of a site.
    pub fn neighbors(&self, s: usize) -> impl Iterator<Item = usize> + '_ {
        let (r, c) = self.coords(s);
        let w = self.width;
        [
            (r > 0).then(|| self.index(r - 1, c)),
            (r + 1 < w).then(|| self.index(r + 1, c)),
            (c > 0).then(|| self.index(r, c - 1)),
            (c + 1 < w).then(|| self.index(r, c + 1)),
        ]
        .into_iter()
        .flatten()
    }

    /// Linear indices of all free sites.
    #[must_use]
    pub fn free_sites(&self) -> Vec<usize> {
        (0..self.sites.len())
            .filter(|&s| self.sites[s] == SiteState::Free)
            .collect()
    }

    /// Number of free sites.
    #[must_use]
    pub fn free_count(&self) -> usize {
        self.sites.iter().filter(|s| **s == SiteState::Free).count()
    }

    /// Finds a shortest routing path from a site adjacent to `from` to
    /// `to`. `capacity_of(site)` reports the *remaining* pass-through
    /// capacity of each site (0 = blocked); `from` and `to` themselves
    /// are endpoints (any state) and are not traversed.
    ///
    /// Returns the intermediate sites of the path (possibly empty when
    /// `from` and `to` are grid-adjacent), or `None` if no path exists.
    #[must_use]
    pub fn route<F>(&self, from: usize, to: usize, capacity_of: F) -> Option<Vec<usize>>
    where
        F: Fn(usize) -> usize,
    {
        if from == to {
            return Some(Vec::new());
        }
        let passable = |s: usize| -> bool { capacity_of(s) > 0 };
        let mut prev: Vec<Option<usize>> = vec![None; self.sites.len()];
        let mut seen = vec![false; self.sites.len()];
        let mut queue = VecDeque::new();
        seen[from] = true;
        queue.push_back(from);
        while let Some(s) = queue.pop_front() {
            for nb in self.neighbors(s).collect::<Vec<_>>() {
                if seen[nb] {
                    continue;
                }
                if nb == to {
                    // Reconstruct intermediate path (exclusive of ends).
                    let mut path = Vec::new();
                    let mut cur = s;
                    while cur != from {
                        path.push(cur);
                        cur = prev[cur].expect("visited nodes have parents");
                    }
                    path.reverse();
                    return Some(path);
                }
                if passable(nb) {
                    seen[nb] = true;
                    prev[nb] = Some(s);
                    queue.push_back(nb);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coords_roundtrip() {
        let g = LayerGrid::new(5);
        for s in 0..25 {
            let (r, c) = g.coords(s);
            assert_eq!(g.index(r, c), s);
        }
        assert_eq!(g.distance(0, 24), 8);
    }

    #[test]
    fn neighbors_edge_cases() {
        let g = LayerGrid::new(3);
        assert_eq!(g.neighbors(0).count(), 2); // corner
        assert_eq!(g.neighbors(1).count(), 3); // edge
        assert_eq!(g.neighbors(4).count(), 4); // center
    }

    #[test]
    fn free_tracking() {
        let mut g = LayerGrid::new(2);
        assert_eq!(g.free_count(), 4);
        g.set(1, SiteState::Wire(NodeId::new(0)));
        assert_eq!(g.free_count(), 3);
        assert!(!g.free_sites().contains(&1));
    }

    /// Capacity function treating only `Free` sites as passable once.
    fn free_once(g: &LayerGrid) -> impl Fn(usize) -> usize + '_ {
        |s| usize::from(g.state(s) == SiteState::Free)
    }

    #[test]
    fn route_adjacent_is_empty_path() {
        let g = LayerGrid::new(3);
        let path = g.route(0, 1, free_once(&g)).unwrap();
        assert!(path.is_empty());
    }

    #[test]
    fn route_across_grid() {
        let g = LayerGrid::new(3);
        // 0 → 8 must pass through 2 intermediate sites.
        let path = g.route(0, 8, free_once(&g)).unwrap();
        assert_eq!(path.len(), 3);
    }

    #[test]
    fn route_blocked_by_wall() {
        let mut g = LayerGrid::new(3);
        // Wall across the middle row.
        for c in 0..3 {
            g.set(g.index(1, c), SiteState::Node(NodeId::new(c)));
        }
        assert!(g.route(0, 8, free_once(&g)).is_none());
    }

    #[test]
    fn route_respects_capacity_function() {
        let mut g = LayerGrid::new(3);
        // Corridor: only the middle column is open in the middle row.
        g.set(g.index(1, 0), SiteState::Node(NodeId::new(0)));
        g.set(g.index(1, 2), SiteState::Node(NodeId::new(1)));
        g.set(g.index(1, 1), SiteState::Route { remaining: 2 });
        let cap = |s: usize| match g.state(s) {
            SiteState::Free => 1,
            SiteState::Route { remaining } => remaining,
            _ => 0,
        };
        // A path 0 → (2,0) must squeeze through (1,1).
        let path = g.route(0, g.index(2, 0), cap).unwrap();
        assert!(path.contains(&g.index(1, 1)));
        // A zero-capacity corridor closes.
        let closed = |s: usize| match g.state(s) {
            SiteState::Free => 1,
            _ => 0,
        };
        assert!(g.route(0, g.index(2, 0), closed).is_none());
    }

    #[test]
    fn route_through_wire_when_capacity_allows() {
        let mut g = LayerGrid::new(3);
        g.set(g.index(1, 0), SiteState::Node(NodeId::new(0)));
        g.set(g.index(1, 2), SiteState::Node(NodeId::new(1)));
        g.set(g.index(1, 1), SiteState::Wire(NodeId::new(2)));
        // Wires passable with capacity 1 (spare photons bridge through).
        let cap = |s: usize| match g.state(s) {
            SiteState::Free => 1,
            SiteState::Wire(_) => 1,
            _ => 0,
        };
        let path = g.route(0, g.index(2, 0), cap).unwrap();
        assert!(path.contains(&g.index(1, 1)));
    }
}
