//! Single-QPU photonic MBQC compiler.
//!
//! The OneQ-style baseline the paper builds on (Section II-C): map a
//! computation graph onto the 3D resource grid — a time-ordered sequence
//! of 2D logical layers, one resource state per RSG site per cycle —
//! such that every computation edge is realized by fusions. Supported
//! mechanisms follow the architecture of Section II-B:
//!
//! * **intra-layer fusion** between neighboring sites of one layer
//!   (used for placement-adjacent edges and routing chains),
//! * **inter-layer fusion** between consecutive layers at one site
//!   (used for *wires*: photons kept alive while later partners arrive),
//! * **routing** (Figure 4(c)): BFS chains through free sites, with
//!   per-state pass-through capacity (the 6-ring routes twice),
//! * **dynamic refresh** (OneAdapt, Section V-C): wires older than a
//!   bound are re-injected, trading grid work for bounded storage,
//! * **boundary reservation** (Table V protocol): the grid perimeter is
//!   reserved for communication interfaces.
//!
//! The output [`CompiledProgram`] carries per-node layer indices and
//! per-edge realization times, from which [`metrics`] computes the
//! paper's **required photon lifetime** (Algorithm 1).

pub mod config;
pub mod grid;
pub mod mapper;
pub mod metrics;

pub use config::{CompileError, CompilerConfig};
pub use mapper::{CompiledProgram, CompiledProgramView, GridMapper, MapperWorkspace};
pub use metrics::{required_photon_lifetime, LifetimeReport};
