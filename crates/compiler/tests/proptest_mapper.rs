//! Property-based tests for the grid mapper and Algorithm 1.

use mbqc_compiler::{required_photon_lifetime, CompilerConfig, GridMapper};
use mbqc_graph::{generate, DiGraph, Graph, NodeId};
use mbqc_hardware::ResourceStateKind;
use mbqc_util::Rng;
use proptest::prelude::*;

fn sparse_graph(n: usize, extra: usize, seed: u64) -> Graph {
    let mut rng = Rng::seed_from_u64(seed);
    let mut g = generate::path_graph(n.max(2));
    for _ in 0..extra {
        let a = rng.range(g.node_count());
        let b = rng.range(g.node_count());
        if a != b && !g.has_edge(NodeId::new(a), NodeId::new(b)) {
            g.add_edge(NodeId::new(a), NodeId::new(b));
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn all_edges_realized_exactly_once(n in 4usize..60, extra in 0usize..20, seed in 0u64..200) {
        let g = sparse_graph(n, extra, seed);
        let order: Vec<NodeId> = g.nodes().collect();
        let mapper = GridMapper::new(CompilerConfig::new(7, ResourceStateKind::FIVE_STAR));
        let c = mapper.compile(&g, &order).unwrap();
        prop_assert_eq!(c.fusee_pairs.len(), g.edge_count());
        // Each pair corresponds to a distinct graph edge.
        let mut seen = std::collections::HashSet::new();
        for p in &c.fusee_pairs {
            prop_assert!(g.has_edge(p.a, p.b));
            let key = (p.a.min(p.b), p.a.max(p.b));
            prop_assert!(seen.insert(key), "edge realized twice");
        }
    }

    #[test]
    fn layers_and_sites_within_bounds(n in 4usize..50, extra in 0usize..15, seed in 0u64..100) {
        let g = sparse_graph(n, extra, seed);
        let order: Vec<NodeId> = g.nodes().collect();
        let width = 6;
        let c = GridMapper::new(CompilerConfig::new(width, ResourceStateKind::FIVE_STAR))
            .compile(&g, &order)
            .unwrap();
        for u in g.nodes() {
            prop_assert!(c.layer_of[u.index()] < c.num_layers);
            prop_assert!(c.effective_layer[u.index()] >= c.layer_of[u.index()]);
            prop_assert!(c.site_of[u.index()] < width * width);
        }
    }

    #[test]
    fn per_layer_site_占用_is_unique(n in 4usize..40, seed in 0u64..100) {
        // No two nodes placed in the same layer may share a site.
        let g = sparse_graph(n, n / 2, seed);
        let order: Vec<NodeId> = g.nodes().collect();
        let c = GridMapper::new(CompilerConfig::new(6, ResourceStateKind::FIVE_STAR))
            .compile(&g, &order)
            .unwrap();
        let mut seen = std::collections::HashSet::new();
        for u in g.nodes() {
            prop_assert!(
                seen.insert((c.layer_of[u.index()], c.site_of[u.index()])),
                "two nodes share a spacetime slot"
            );
        }
    }

    #[test]
    fn fusee_times_bound_lifetime(n in 4usize..40, seed in 0u64..100) {
        let g = sparse_graph(n, n / 3, seed);
        let order: Vec<NodeId> = g.nodes().collect();
        let c = GridMapper::new(CompilerConfig::new(6, ResourceStateKind::FIVE_STAR))
            .compile(&g, &order)
            .unwrap();
        let deps = DiGraph::with_nodes(g.node_count());
        let report = c.lifetime(&deps);
        let max_span = c.fusee_pairs.iter().map(|p| p.time_b - p.time_a).max().unwrap_or(0);
        prop_assert_eq!(report.fusee, max_span);
        prop_assert!(report.photon_lifetime() < c.num_layers.max(2));
    }

    #[test]
    fn refresh_never_lengthens_epoch_spans(n in 10usize..40, seed in 0u64..60) {
        let g = sparse_graph(n, 4, seed);
        let order: Vec<NodeId> = g.nodes().collect();
        let plain = GridMapper::new(CompilerConfig::new(4, ResourceStateKind::FIVE_STAR))
            .compile(&g, &order)
            .unwrap();
        let refreshed = GridMapper::new(
            CompilerConfig::new(4, ResourceStateKind::FIVE_STAR).with_refresh(4),
        )
        .compile(&g, &order)
        .unwrap();
        let span = |c: &mbqc_compiler::CompiledProgram| {
            c.fusee_pairs.iter().map(|p| p.time_b - p.time_a).max().unwrap_or(0)
        };
        prop_assert!(span(&refreshed) <= span(&plain));
    }

    #[test]
    fn algorithm1_monotone_under_time_dilation(times in prop::collection::vec(0usize..50, 2..30), seed in 0u64..50) {
        // Stretching all times by 2 scales fusee span and cannot shrink
        // the measuree term.
        let n = times.len();
        let mut rng = Rng::seed_from_u64(seed);
        let mut deps = DiGraph::with_nodes(n);
        for _ in 0..n {
            let a = rng.range(n);
            let b = rng.range(n);
            if a < b {
                deps.add_edge(NodeId::new(a), NodeId::new(b));
            }
        }
        let pairs: Vec<(usize, usize)> = (1..n).map(|i| (times[i - 1], times[i])).collect();
        let r1 = required_photon_lifetime(&times, &pairs, &deps);
        let doubled: Vec<usize> = times.iter().map(|&t| 2 * t).collect();
        let pairs2: Vec<(usize, usize)> = (1..n).map(|i| (doubled[i - 1], doubled[i])).collect();
        let r2 = required_photon_lifetime(&doubled, &pairs2, &deps);
        prop_assert_eq!(r2.fusee, 2 * r1.fusee);
    }
}
