//! Stable 128-bit content fingerprinting.
//!
//! The artifact cache of `mbqc-service` addresses stage outputs by a
//! fingerprint of their inputs. [`Fingerprint`] must therefore be
//! *stable* — the same bytes hash the same across processes, platforms,
//! and releases — which rules out `std::hash` (`RandomState` is
//! per-process, and `Hasher` output is explicitly not portable). This is
//! a hand-rolled two-lane mix built from the SplitMix64 finalizer: not
//! cryptographic, just well-distributed. Exact-match correctness never
//! rests on it — cache lookups compare the full key bytes — so a
//! collision can only cost a disk-tier miss, never a wrong artifact.
//!
//! # Examples
//!
//! ```
//! use mbqc_util::fingerprint::Fingerprint;
//!
//! let a = Fingerprint::of(b"pattern bytes");
//! let b = Fingerprint::of(b"pattern bytes");
//! assert_eq!(a, b);
//! assert_ne!(a, Fingerprint::of(b"other bytes"));
//! assert_eq!(a.to_hex().len(), 32);
//! ```

/// A 128-bit stable content fingerprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Fingerprint(pub u128);

/// The SplitMix64 output finalizer (Steele, Lea, Flood 2014): a strong
/// 64-bit bijective mixer.
#[inline]
pub(crate) fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Fingerprint {
    /// Hashes `bytes` into a 128-bit fingerprint.
    #[must_use]
    pub fn of(bytes: &[u8]) -> Self {
        // Two independent lanes over 8-byte chunks, each absorbing the
        // chunk with a distinct odd multiplier before re-mixing; the
        // length is folded in at the end so prefixes don't collide with
        // their zero-padded extensions.
        let mut a = 0x9E37_79B9_7F4A_7C15u64;
        let mut b = 0xC2B2_AE3D_27D4_EB4Fu64;
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let v = u64::from_le_bytes(c.try_into().expect("8-byte chunk"));
            a = mix(a ^ v.wrapping_mul(0xA076_1D64_78BD_642F));
            b = mix(b.rotate_left(23) ^ v.wrapping_mul(0xE703_7ED1_A0B4_28DB));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut tail = [0u8; 8];
            tail[..rest.len()].copy_from_slice(rest);
            let v = u64::from_le_bytes(tail);
            a = mix(a ^ v.wrapping_mul(0xA076_1D64_78BD_642F));
            b = mix(b.rotate_left(23) ^ v.wrapping_mul(0xE703_7ED1_A0B4_28DB));
        }
        a = mix(a ^ bytes.len() as u64);
        b = mix(b ^ (bytes.len() as u64).rotate_left(32));
        Self((u128::from(a) << 64) | u128::from(b))
    }

    /// Lowercase 32-character hex rendering (safe as a file name).
    #[must_use]
    pub fn to_hex(self) -> String {
        format!("{:032x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_length_sensitive() {
        assert_eq!(Fingerprint::of(b""), Fingerprint::of(b""));
        // A prefix must not collide with its zero-extended form.
        assert_ne!(Fingerprint::of(b"ab"), Fingerprint::of(b"ab\0\0"));
        assert_ne!(Fingerprint::of(b""), Fingerprint::of(b"\0"));
    }

    #[test]
    fn single_bit_flips_change_both_lanes() {
        let base = Fingerprint::of(&[0u8; 16]);
        for byte in 0..16 {
            for bit in 0..8 {
                let mut v = [0u8; 16];
                v[byte] = 1 << bit;
                let fp = Fingerprint::of(&v);
                assert_ne!(fp, base);
                assert_ne!(fp.0 >> 64, base.0 >> 64, "lane a at {byte}:{bit}");
                assert_ne!(
                    fp.0 & u128::from(u64::MAX),
                    base.0 & u128::from(u64::MAX),
                    "lane b at {byte}:{bit}"
                );
            }
        }
    }

    #[test]
    fn no_collisions_over_small_inputs() {
        let mut seen = std::collections::HashSet::new();
        seen.insert(Fingerprint::of(b""));
        for len in 1..64usize {
            for fill in 0..=255u8 {
                let v = vec![fill; len];
                assert!(
                    seen.insert(Fingerprint::of(&v)),
                    "collision at {len}/{fill}"
                );
            }
        }
    }

    #[test]
    fn hex_is_stable_and_padded() {
        let h = Fingerprint(0xab).to_hex();
        assert_eq!(h.len(), 32);
        assert!(h.starts_with("000000"));
        assert!(h.ends_with("ab"));
    }
}
