//! Poison-recovering synchronization helpers.
//!
//! `std::sync::Mutex` poisons itself when a thread panics while
//! holding the guard, and every later `lock()` returns `Err` forever.
//! For the service crates that is exactly the wrong failure mode: the
//! data under the lock is plain bookkeeping (cache indexes, counters,
//! free lists) whose invariants are re-established by construction on
//! every operation, so one panicking worker must degrade to *its own*
//! failure — a cache miss, a lost workspace — not cascade a poisoned
//! lock through every other worker's `.expect("lock")`.
//!
//! [`lock`] (and the matching [`wait`] / [`wait_timeout`] condvar
//! helpers) therefore recover the guard from a [`PoisonError`] instead
//! of panicking: the poisoned flag is acknowledged and the inner data
//! is used as-is. Callers remain responsible for keeping their
//! critical sections simple enough that "as-is" is safe — which is the
//! standing idiom in this workspace: locks guard small index/counter
//! updates, never multi-step invariants spanning an unwind edge.
//!
//! # Examples
//!
//! ```
//! use std::sync::Mutex;
//!
//! let m = Mutex::new(0u64);
//! // A panic while holding the guard poisons the mutex…
//! let _ = std::panic::catch_unwind(|| {
//!     let _guard = m.lock().unwrap();
//!     panic!("worker died mid-update");
//! });
//! assert!(m.lock().is_err(), "std lock stays poisoned");
//! // …but the recovering helper still hands out the data.
//! *mbqc_util::sync::lock(&m) += 1;
//! assert_eq!(*mbqc_util::sync::lock(&m), 1);
//! ```

use std::sync::{Condvar, Mutex, MutexGuard, PoisonError, WaitTimeoutResult};
use std::time::Duration;

/// Locks `mutex`, recovering the guard when the lock is poisoned (a
/// previous holder panicked). See the [module docs](self) for when
/// that is the right call.
pub fn lock<T: ?Sized>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Blocks on `condvar` with the given guard, recovering from poison on
/// wake-up (same policy as [`lock`]).
pub fn wait<'a, T>(condvar: &Condvar, guard: MutexGuard<'a, T>) -> MutexGuard<'a, T> {
    condvar.wait(guard).unwrap_or_else(PoisonError::into_inner)
}

/// Blocks on `condvar` for at most `timeout`, recovering from poison
/// on wake-up (same policy as [`lock`]).
pub fn wait_timeout<'a, T>(
    condvar: &Condvar,
    guard: MutexGuard<'a, T>,
    timeout: Duration,
) -> (MutexGuard<'a, T>, WaitTimeoutResult) {
    condvar
        .wait_timeout(guard, timeout)
        .unwrap_or_else(PoisonError::into_inner)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_recovers_from_poison() {
        let m = Mutex::new(vec![1, 2, 3]);
        let _ = std::panic::catch_unwind(|| {
            let _g = m.lock().unwrap();
            panic!("poison it");
        });
        assert!(m.is_poisoned());
        lock(&m).push(4);
        assert_eq!(*lock(&m), vec![1, 2, 3, 4]);
    }

    #[test]
    fn wait_timeout_times_out_on_a_poisoned_pair() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let _ = std::panic::catch_unwind(|| {
            let _g = m.lock().unwrap();
            panic!("poison it");
        });
        let (guard, result) = wait_timeout(&cv, lock(&m), Duration::from_millis(1));
        assert!(result.timed_out());
        drop(guard);
    }
}
