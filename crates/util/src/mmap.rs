//! Read-only memory-mapped byte buffers.
//!
//! [`MappedBytes`] gives the artifact store zero-copy access to files on
//! disk: a warm hit served from a mapping costs a checksum walk over the
//! mapped pages plus pointer fixups, not a `read(2)` into a fresh `Vec`.
//! The build box is offline (no `memmap2`), so on Unix the mapping is a
//! direct `mmap(2)` through a minimal `extern "C"` shim against the libc
//! that `std` already links; everywhere else — and whenever the syscall
//! fails — it degrades to an owned heap buffer read with [`std::fs::read`].
//! Callers never observe the difference except through
//! [`is_mapped`](MappedBytes::is_mapped).
//!
//! # Safety contract
//!
//! The mapping is `PROT_READ` + `MAP_PRIVATE`: writes through other file
//! descriptors do not tear pages we already read, and the store only ever
//! replaces artifact files via atomic rename, which leaves the old inode
//! (and thus this mapping) intact. Truncating a mapped file *in place*
//! from outside the process is outside the contract — as with every
//! mmap-based reader, faulting a page past the new EOF would raise
//! `SIGBUS`. The store never truncates in place.
//!
//! # Examples
//!
//! ```
//! use mbqc_util::mmap::MappedBytes;
//!
//! let dir = std::env::temp_dir().join(format!("mbqc-mmap-doc-{}", std::process::id()));
//! std::fs::create_dir_all(&dir).unwrap();
//! let path = dir.join("blob.bin");
//! std::fs::write(&path, b"hello mmap").unwrap();
//!
//! let bytes = MappedBytes::open(&path).unwrap();
//! assert_eq!(&bytes[..], b"hello mmap");
//!
//! std::fs::remove_dir_all(&dir).ok();
//! ```

use std::io;
use std::ops::Deref;
use std::path::Path;

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;
    pub const MAP_FAILED: *mut c_void = usize::MAX as *mut c_void;

    // The workspace has no libc crate; std already links libc on every
    // Unix target, so these two symbols resolve at link time.
    unsafe extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

/// An immutable byte buffer backed by a memory-mapped file when the
/// platform allows it, or an owned heap allocation otherwise.
#[derive(Debug)]
pub struct MappedBytes {
    inner: Inner,
}

#[derive(Debug)]
enum Inner {
    #[cfg(unix)]
    Mapped {
        ptr: *const u8,
        len: usize,
    },
    Heap(Vec<u8>),
}

// SAFETY: the mapping is read-only and private; the pointer is never
// mutated after construction and `munmap` runs exactly once in `Drop`.
// Shared `&self` access from any thread only reads the mapped pages.
unsafe impl Send for MappedBytes {}
unsafe impl Sync for MappedBytes {}

impl MappedBytes {
    /// Opens `path` and maps its current contents read-only. Empty files
    /// and platforms without `mmap` fall back to an owned read; so does a
    /// failing `mmap` call.
    ///
    /// # Errors
    ///
    /// Propagates the I/O error when the file cannot be opened or (on the
    /// fallback path) read.
    pub fn open(path: &Path) -> io::Result<Self> {
        #[cfg(unix)]
        {
            use std::os::unix::io::AsRawFd;

            let file = std::fs::File::open(path)?;
            let len = usize::try_from(file.metadata()?.len())
                .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
            if len == 0 {
                return Ok(Self::from_vec(Vec::new()));
            }
            // SAFETY: len is the file's current size and non-zero; the fd
            // is open for reading; a failed map is checked before use.
            let ptr = unsafe {
                sys::mmap(
                    std::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr == sys::MAP_FAILED {
                return Ok(Self::from_vec(std::fs::read(path)?));
            }
            Ok(Self {
                inner: Inner::Mapped {
                    ptr: ptr.cast_const().cast::<u8>(),
                    len,
                },
            })
        }
        #[cfg(not(unix))]
        {
            Ok(Self::from_vec(std::fs::read(path)?))
        }
    }

    /// Wraps an owned buffer (no mapping involved).
    #[must_use]
    pub fn from_vec(bytes: Vec<u8>) -> Self {
        Self {
            inner: Inner::Heap(bytes),
        }
    }

    /// `true` when the bytes are served straight from a kernel mapping
    /// rather than an owned copy.
    #[must_use]
    pub fn is_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { .. } => true,
            Inner::Heap(_) => false,
        }
    }

    /// The bytes.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            Inner::Mapped { ptr, len } => {
                // SAFETY: the mapping stays valid for `self`'s lifetime
                // (unmapped only in Drop) and is never written.
                unsafe { std::slice::from_raw_parts(*ptr, *len) }
            }
            Inner::Heap(v) => v,
        }
    }
}

impl Deref for MappedBytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl Drop for MappedBytes {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Inner::Mapped { ptr, len } = self.inner {
            // SAFETY: ptr/len came from a successful mmap of exactly this
            // length and are unmapped exactly once.
            unsafe {
                sys::munmap(ptr.cast_mut().cast(), len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("mbqc-mmap-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn maps_file_contents_exactly() {
        let path = temp_path("exact.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::write(&path, &payload).unwrap();
        let m = MappedBytes::open(&path).unwrap();
        assert_eq!(&m[..], &payload[..]);
        #[cfg(unix)]
        assert!(m.is_mapped());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_uses_heap_fallback() {
        let path = temp_path("empty.bin");
        std::fs::write(&path, b"").unwrap();
        let m = MappedBytes::open(&path).unwrap();
        assert!(m.is_empty());
        assert!(!m.is_mapped());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let path = temp_path("never-written.bin");
        assert!(MappedBytes::open(&path).is_err());
    }

    #[test]
    fn rename_replace_leaves_old_mapping_intact() {
        let old = temp_path("replace-old.bin");
        let new = temp_path("replace-new.bin");
        std::fs::write(&old, vec![0xAB; 4096]).unwrap();
        let m = MappedBytes::open(&old).unwrap();
        std::fs::write(&new, vec![0xCD; 4096]).unwrap();
        std::fs::rename(&new, &old).unwrap();
        // The mapping pins the old inode: bytes are unchanged.
        assert!(m.iter().all(|&b| b == 0xAB));
        std::fs::remove_file(&old).ok();
    }

    #[test]
    fn from_vec_round_trips() {
        let m = MappedBytes::from_vec(vec![1, 2, 3]);
        assert_eq!(&m[..], &[1, 2, 3]);
        assert!(!m.is_mapped());
    }
}
