//! A minimal hand-rolled binary codec.
//!
//! The build environment is offline (no serde), so the stage-artifact
//! persistence of `mbqc-service` uses this fixed-width little-endian
//! format instead: each crate encodes its own types with [`Encoder`] and
//! decodes them with [`Decoder`]. The format is deliberately boring —
//! no varints, no compression — because the artifacts it carries must
//! round-trip *bit-identically* (cache-restored compilations are
//! property-tested equal to fresh ones) and a simple format is easy to
//! audit for that property.
//!
//! # Examples
//!
//! ```
//! use mbqc_util::codec::{Decoder, Encoder};
//!
//! let mut e = Encoder::new();
//! e.usize(3);
//! e.f64(0.25);
//! e.bytes(b"abc");
//! let buf = e.into_bytes();
//!
//! let mut d = Decoder::new(&buf);
//! assert_eq!(d.usize().unwrap(), 3);
//! assert_eq!(d.f64().unwrap(), 0.25);
//! assert_eq!(d.bytes().unwrap(), b"abc");
//! assert!(d.finish().is_ok());
//! ```

use std::fmt;

/// Decoding failure: the buffer does not hold what the caller expects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the requested value.
    UnexpectedEof,
    /// A decoded value violates an invariant of the target type.
    Invalid(&'static str),
    /// [`Decoder::finish`] found unread bytes.
    TrailingBytes,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of buffer"),
            CodecError::Invalid(what) => write!(f, "invalid encoding: {what}"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after decode"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only binary writer.
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// The encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (portable across word sizes).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` by bit pattern (exact round trip, NaN included).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Writes a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed `usize` slice.
    pub fn usize_slice(&mut self, v: &[usize]) {
        self.usize(v.len());
        for &x in v {
            self.usize(x);
        }
    }

    /// Writes an `Option<usize>` as a presence byte plus the value.
    pub fn opt_usize(&mut self, v: Option<usize>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.usize(x);
            }
            None => self.bool(false),
        }
    }
}

/// Sequential binary reader over a borrowed buffer.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder positioned at the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::UnexpectedEof)?;
        if end > self.buf.len() {
            return Err(CodecError::UnexpectedEof);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Reads a `usize` (encoded as `u64`; errors if it does not fit).
    pub fn usize(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.u64()?).map_err(|_| CodecError::Invalid("usize overflow"))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Reads an `f64` by bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool`; any byte other than 0/1 is invalid.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid("bool byte")),
        }
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.usize()?;
        self.take(len)
    }

    /// Reads a length-prefixed `usize` vector.
    pub fn usize_vec(&mut self) -> Result<Vec<usize>, CodecError> {
        let len = self.len_hint()?;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(self.usize()?);
        }
        Ok(v)
    }

    /// Reads an `Option<usize>` written by [`Encoder::opt_usize`].
    pub fn opt_usize(&mut self) -> Result<Option<usize>, CodecError> {
        if self.bool()? {
            Ok(Some(self.usize()?))
        } else {
            Ok(None)
        }
    }

    /// Reads a collection length, bounded by the bytes actually left so
    /// a corrupt length cannot trigger a huge allocation.
    pub fn len_hint(&mut self) -> Result<usize, CodecError> {
        let len = self.usize()?;
        // Every element of every collection costs at least one byte.
        if len > self.buf.len().saturating_sub(self.pos) {
            return Err(CodecError::UnexpectedEof);
        }
        Ok(len)
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the whole buffer was consumed.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_primitives() {
        let mut e = Encoder::new();
        e.u8(7);
        e.u64(u64::MAX);
        e.usize(123_456);
        e.i64(-42);
        e.f64(-0.0);
        e.bool(true);
        e.bytes(&[1, 2, 3]);
        e.usize_slice(&[9, 8]);
        e.opt_usize(Some(5));
        e.opt_usize(None);
        let buf = e.into_bytes();

        let mut d = Decoder::new(&buf);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.usize().unwrap(), 123_456);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(d.bool().unwrap());
        assert_eq!(d.bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(d.usize_vec().unwrap(), vec![9, 8]);
        assert_eq!(d.opt_usize().unwrap(), Some(5));
        assert_eq!(d.opt_usize().unwrap(), None);
        d.finish().unwrap();
    }

    #[test]
    fn eof_and_trailing_are_errors() {
        let mut e = Encoder::new();
        e.u64(1);
        let buf = e.into_bytes();
        let mut d = Decoder::new(&buf[..4]);
        assert_eq!(d.u64(), Err(CodecError::UnexpectedEof));
        let mut d = Decoder::new(&buf);
        d.u8().unwrap();
        assert_eq!(d.clone().finish(), Err(CodecError::TrailingBytes));
    }

    #[test]
    fn corrupt_length_is_rejected_without_allocation() {
        let mut e = Encoder::new();
        e.usize(usize::MAX / 2);
        let buf = e.into_bytes();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.len_hint(), Err(CodecError::UnexpectedEof));
        let mut d = Decoder::new(&buf);
        assert!(d.usize_vec().is_err());
    }

    #[test]
    fn bad_bool_byte_is_invalid() {
        let mut d = Decoder::new(&[3]);
        assert_eq!(d.bool(), Err(CodecError::Invalid("bool byte")));
    }
}
