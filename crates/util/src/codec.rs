//! A minimal hand-rolled binary codec.
//!
//! The build environment is offline (no serde), so the stage-artifact
//! persistence of `mbqc-service` uses this fixed-width little-endian
//! format instead: each crate encodes its own types with [`Encoder`] and
//! decodes them with [`Decoder`]. The format is deliberately boring —
//! no varints, no compression — because the artifacts it carries must
//! round-trip *bit-identically* (cache-restored compilations are
//! property-tested equal to fresh ones) and a simple format is easy to
//! audit for that property.
//!
//! # Examples
//!
//! ```
//! use mbqc_util::codec::{Decoder, Encoder};
//!
//! let mut e = Encoder::new();
//! e.usize(3);
//! e.f64(0.25);
//! e.bytes(b"abc");
//! let buf = e.into_bytes();
//!
//! let mut d = Decoder::new(&buf);
//! assert_eq!(d.usize().unwrap(), 3);
//! assert_eq!(d.f64().unwrap(), 0.25);
//! assert_eq!(d.bytes().unwrap(), b"abc");
//! assert!(d.finish().is_ok());
//! ```

use std::fmt;

/// Decoding failure: the buffer does not hold what the caller expects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before the requested value.
    UnexpectedEof,
    /// A decoded value violates an invariant of the target type.
    Invalid(&'static str),
    /// [`Decoder::finish`] found unread bytes.
    TrailingBytes,
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of buffer"),
            CodecError::Invalid(what) => write!(f, "invalid encoding: {what}"),
            CodecError::TrailingBytes => write!(f, "trailing bytes after decode"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Append-only binary writer.
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// An empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty encoder whose buffer is pre-allocated for `capacity`
    /// bytes. Encoders for large artifacts (patterns, schedules, wire
    /// frames) know their encoded size up front — reserving it skips
    /// the doubling-growth copies, which are measurable on the network
    /// submit path.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            buf: Vec::with_capacity(capacity),
        }
    }

    /// The encoded bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Current encoded length in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// `true` when nothing has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Writes one byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64` (portable across word sizes).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// Writes a little-endian `i64`.
    pub fn i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `f64` by bit pattern (exact round trip, NaN included).
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// Writes a `bool` as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Writes a length-prefixed byte string.
    pub fn bytes(&mut self, v: &[u8]) {
        self.usize(v.len());
        self.buf.extend_from_slice(v);
    }

    /// Writes a length-prefixed `usize` slice.
    pub fn usize_slice(&mut self, v: &[usize]) {
        self.usize(v.len());
        for &x in v {
            self.usize(x);
        }
    }

    /// Writes an `Option<usize>` as a presence byte plus the value.
    pub fn opt_usize(&mut self, v: Option<usize>) {
        match v {
            Some(x) => {
                self.bool(true);
                self.usize(x);
            }
            None => self.bool(false),
        }
    }
}

/// Sequential binary reader over a borrowed buffer.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// A decoder positioned at the start of `buf`.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        let end = self.pos.checked_add(n).ok_or(CodecError::UnexpectedEof)?;
        if end > self.buf.len() {
            return Err(CodecError::UnexpectedEof);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    /// Reads exactly `n` raw bytes with no length prefix — for fixed-
    /// stride batch decoding, where the caller walks the returned slice
    /// in `chunks_exact` instead of paying per-field decoder calls.
    ///
    /// # Errors
    ///
    /// [`CodecError::UnexpectedEof`] when fewer than `n` bytes remain.
    pub fn raw(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        self.take(n)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Reads a `usize` (encoded as `u64`; errors if it does not fit).
    pub fn usize(&mut self) -> Result<usize, CodecError> {
        usize::try_from(self.u64()?).map_err(|_| CodecError::Invalid("usize overflow"))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, CodecError> {
        let b = self.take(8)?;
        Ok(i64::from_le_bytes(b.try_into().expect("8-byte slice")))
    }

    /// Reads an `f64` by bit pattern.
    pub fn f64(&mut self) -> Result<f64, CodecError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a `bool`; any byte other than 0/1 is invalid.
    pub fn bool(&mut self) -> Result<bool, CodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            _ => Err(CodecError::Invalid("bool byte")),
        }
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], CodecError> {
        let len = self.usize()?;
        self.take(len)
    }

    /// Reads a length-prefixed `usize` vector.
    pub fn usize_vec(&mut self) -> Result<Vec<usize>, CodecError> {
        let len = self.len_hint()?;
        let mut v = Vec::with_capacity(len);
        for _ in 0..len {
            v.push(self.usize()?);
        }
        Ok(v)
    }

    /// Reads a length-prefixed `usize` slice *lazily*: the returned view
    /// borrows the raw 8-byte little-endian words without allocating.
    /// Validation up front covers exactly what [`Decoder::usize_vec`]
    /// checks structurally (the prefixed length fits the remaining
    /// bytes); the per-element `usize` range check is deferred to
    /// [`UsizeSliceView::get`] / [`UsizeSliceView::to_vec`], which on
    /// 64-bit targets can never fail.
    pub fn usize_slice_view(&mut self) -> Result<UsizeSliceView<'a>, CodecError> {
        let len = self.usize()?;
        let byte_len = len
            .checked_mul(8)
            .ok_or(CodecError::UnexpectedEof)
            .and_then(|n| {
                if n > self.buf.len().saturating_sub(self.pos) {
                    Err(CodecError::UnexpectedEof)
                } else {
                    Ok(n)
                }
            })?;
        let raw = self.take(byte_len)?;
        Ok(UsizeSliceView { raw, len })
    }

    /// Reads an `Option<usize>` written by [`Encoder::opt_usize`].
    pub fn opt_usize(&mut self) -> Result<Option<usize>, CodecError> {
        if self.bool()? {
            Ok(Some(self.usize()?))
        } else {
            Ok(None)
        }
    }

    /// Reads a collection length, bounded by the bytes actually left so
    /// a corrupt length cannot trigger a huge allocation.
    pub fn len_hint(&mut self) -> Result<usize, CodecError> {
        let len = self.usize()?;
        // Every element of every collection costs at least one byte.
        if len > self.buf.len().saturating_sub(self.pos) {
            return Err(CodecError::UnexpectedEof);
        }
        Ok(len)
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Asserts the whole buffer was consumed.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes)
        }
    }
}

/// A validated, zero-allocation view over a length-prefixed `usize`
/// slice written by [`Encoder::usize_slice`]. The raw region's size was
/// checked when the view was produced; element access decodes on demand.
#[derive(Debug, Clone, Copy)]
pub struct UsizeSliceView<'a> {
    raw: &'a [u8],
    len: usize,
}

impl<'a> UsizeSliceView<'a> {
    /// Number of elements.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the slice is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Decodes element `i` (`None` out of range).
    ///
    /// # Errors
    ///
    /// [`CodecError::Invalid`] when the stored `u64` does not fit a
    /// `usize` (impossible on 64-bit targets).
    pub fn get(&self, i: usize) -> Option<Result<usize, CodecError>> {
        if i >= self.len {
            return None;
        }
        let b: [u8; 8] = self.raw[i * 8..i * 8 + 8].try_into().expect("8-byte slot");
        Some(
            usize::try_from(u64::from_le_bytes(b))
                .map_err(|_| CodecError::Invalid("usize overflow")),
        )
    }

    /// Materializes the whole slice.
    ///
    /// # Errors
    ///
    /// [`CodecError::Invalid`] when any element overflows `usize` —
    /// exactly the classification [`Decoder::usize_vec`] gives the same
    /// bytes.
    pub fn to_vec(&self) -> Result<Vec<usize>, CodecError> {
        (0..self.len)
            .map(|i| self.get(i).expect("index in range"))
            .collect()
    }

    /// Compares against an eager slice without allocating.
    #[must_use]
    pub fn eq_slice(&self, other: &[usize]) -> bool {
        self.len == other.len()
            && other
                .iter()
                .enumerate()
                .all(|(i, &x)| matches!(self.get(i), Some(Ok(v)) if v == x))
    }

    /// The borrowed raw little-endian words (8 bytes per element).
    #[must_use]
    pub fn raw_bytes(&self) -> &'a [u8] {
        self.raw
    }

    /// Checks every element fits a `usize`, matching the classification
    /// an eager [`Decoder::usize_vec`] would give the same bytes. On
    /// 64-bit targets a `u64` always fits, so this compiles to `Ok(())`.
    ///
    /// # Errors
    ///
    /// [`CodecError::Invalid`] on the first overflowing element
    /// (32-bit targets only).
    pub fn validate_elements(&self) -> Result<(), CodecError> {
        #[cfg(not(target_pointer_width = "64"))]
        for i in 0..self.len {
            self.get(i).expect("index in range")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_primitives() {
        let mut e = Encoder::new();
        e.u8(7);
        e.u64(u64::MAX);
        e.usize(123_456);
        e.i64(-42);
        e.f64(-0.0);
        e.bool(true);
        e.bytes(&[1, 2, 3]);
        e.usize_slice(&[9, 8]);
        e.opt_usize(Some(5));
        e.opt_usize(None);
        let buf = e.into_bytes();

        let mut d = Decoder::new(&buf);
        assert_eq!(d.u8().unwrap(), 7);
        assert_eq!(d.u64().unwrap(), u64::MAX);
        assert_eq!(d.usize().unwrap(), 123_456);
        assert_eq!(d.i64().unwrap(), -42);
        assert_eq!(d.f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert!(d.bool().unwrap());
        assert_eq!(d.bytes().unwrap(), &[1, 2, 3]);
        assert_eq!(d.usize_vec().unwrap(), vec![9, 8]);
        assert_eq!(d.opt_usize().unwrap(), Some(5));
        assert_eq!(d.opt_usize().unwrap(), None);
        d.finish().unwrap();
    }

    #[test]
    fn eof_and_trailing_are_errors() {
        let mut e = Encoder::new();
        e.u64(1);
        let buf = e.into_bytes();
        let mut d = Decoder::new(&buf[..4]);
        assert_eq!(d.u64(), Err(CodecError::UnexpectedEof));
        let mut d = Decoder::new(&buf);
        d.u8().unwrap();
        assert_eq!(d.clone().finish(), Err(CodecError::TrailingBytes));
    }

    #[test]
    fn corrupt_length_is_rejected_without_allocation() {
        let mut e = Encoder::new();
        e.usize(usize::MAX / 2);
        let buf = e.into_bytes();
        let mut d = Decoder::new(&buf);
        assert_eq!(d.len_hint(), Err(CodecError::UnexpectedEof));
        let mut d = Decoder::new(&buf);
        assert!(d.usize_vec().is_err());
    }

    #[test]
    fn bad_bool_byte_is_invalid() {
        let mut d = Decoder::new(&[3]);
        assert_eq!(d.bool(), Err(CodecError::Invalid("bool byte")));
    }

    #[test]
    fn usize_slice_view_matches_eager_vec() {
        let xs = [0usize, 1, 7, usize::MAX / 3, 42];
        let mut e = Encoder::new();
        e.usize_slice(&xs);
        e.u8(0xEE);
        let buf = e.into_bytes();

        let mut d = Decoder::new(&buf);
        let view = d.usize_slice_view().unwrap();
        assert_eq!(d.u8().unwrap(), 0xEE);
        d.finish().unwrap();

        assert_eq!(view.len(), xs.len());
        assert!(!view.is_empty());
        assert_eq!(view.to_vec().unwrap(), xs.to_vec());
        assert!(view.eq_slice(&xs));
        assert!(!view.eq_slice(&xs[..4]));
        assert_eq!(view.get(2), Some(Ok(7)));
        assert!(view.get(xs.len()).is_none());
        assert_eq!(view.raw_bytes().len(), xs.len() * 8);
    }

    #[test]
    fn usize_slice_view_rejects_truncated_payloads() {
        let mut e = Encoder::new();
        e.usize_slice(&[1, 2, 3]);
        let buf = e.into_bytes();
        // Cut into the last element: eager and lazy agree on the error.
        let cut = &buf[..buf.len() - 3];
        assert_eq!(
            Decoder::new(cut).usize_vec().unwrap_err(),
            CodecError::UnexpectedEof
        );
        assert_eq!(
            Decoder::new(cut).usize_slice_view().unwrap_err(),
            CodecError::UnexpectedEof
        );
        // A huge length prefix is rejected without allocating.
        let mut e = Encoder::new();
        e.usize(usize::MAX / 2);
        let buf = e.into_bytes();
        assert_eq!(
            Decoder::new(&buf).usize_slice_view().unwrap_err(),
            CodecError::UnexpectedEof
        );
    }
}
