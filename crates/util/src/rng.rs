//! Deterministic pseudo-random number generation.
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — a tiny 64-bit state generator, used for seeding.
//! * [`Xoshiro256StarStar`] — the workhorse generator (Blackman/Vigna's
//!   xoshiro256\*\*), re-exported as [`Rng`].
//!
//! Everything stochastic in the workspace (simulated annealing in the BDIR
//! scheduler, random QAOA instances, greedy tie-breaking) takes one of
//! these explicitly, so experiments are reproducible from a single seed.
//!
//! # Examples
//!
//! ```
//! use mbqc_util::rng::Rng;
//!
//! let mut a = Rng::seed_from_u64(7);
//! let mut b = Rng::seed_from_u64(7);
//! assert_eq!(a.next_u64(), b.next_u64());
//! ```

/// SplitMix64 generator (Steele, Lea, Flood 2014).
///
/// Primarily used to expand a single `u64` seed into the 256-bit state of
/// [`Xoshiro256StarStar`]; it is also a fine standalone generator for
/// non-critical uses.
///
/// # Examples
///
/// ```
/// use mbqc_util::rng::SplitMix64;
///
/// let mut sm = SplitMix64::new(123);
/// let x = sm.next_u64();
/// let y = sm.next_u64();
/// assert_ne!(x, y);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Xoshiro256\*\* generator (Blackman & Vigna, 2018).
///
/// 256 bits of state, period 2^256 − 1, excellent statistical quality for
/// simulation workloads. This is the default generator for the workspace
/// and is re-exported as [`Rng`].
///
/// # Examples
///
/// ```
/// use mbqc_util::rng::Rng;
///
/// let mut rng = Rng::seed_from_u64(42);
/// let v: Vec<usize> = (0..5).map(|_| rng.range(100)).collect();
/// assert!(v.iter().all(|&x| x < 100));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Xoshiro256StarStar {
    s: [u64; 4],
}

/// The workspace-default random number generator.
pub type Rng = Xoshiro256StarStar;

impl Xoshiro256StarStar {
    /// Creates a generator by expanding `seed` with [`SplitMix64`].
    ///
    /// Two generators created from the same seed produce identical
    /// sequences.
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        let s = [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()];
        // All-zero state is the one invalid state; SplitMix64 cannot
        // produce four consecutive zeros for any seed, but guard anyway.
        if s == [0, 0, 0, 0] {
            return Self { s: [1, 2, 3, 4] };
        }
        Self { s }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of entropy.
    pub fn next_f64(&mut self) -> f64 {
        // Take the high 53 bits; scale by 2^-53.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform integer in `[0, n)`.
    ///
    /// Uses Lemire's nearly-divisionless rejection method, so results are
    /// unbiased.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn range(&mut self, n: usize) -> usize {
        assert!(n > 0, "range bound must be positive");
        let n = n as u64;
        let mut x = self.next_u64();
        let mut m = (x as u128) * (n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next_u64();
                m = (x as u128) * (n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as usize
    }

    /// Returns a uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_between(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range");
        lo + self.range(hi - lo)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn bernoulli(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Shuffles `slice` in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.range(i + 1);
            slice.swap(i, j);
        }
    }

    /// Returns a reference to a uniformly chosen element, or `None` if the
    /// slice is empty.
    pub fn choose<'a, T>(&mut self, slice: &'a [T]) -> Option<&'a T> {
        if slice.is_empty() {
            None
        } else {
            Some(&slice[self.range(slice.len())])
        }
    }

    /// Samples `k` distinct indices from `[0, n)` (reservoir sampling).
    ///
    /// The returned indices are in random order. If `k >= n`, all indices
    /// are returned (shuffled).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        if k >= n {
            let mut all: Vec<usize> = (0..n).collect();
            self.shuffle(&mut all);
            return all;
        }
        let mut reservoir: Vec<usize> = (0..k).collect();
        for i in k..n {
            let j = self.range(i + 1);
            if j < k {
                reservoir[j] = i;
            }
        }
        self.shuffle(&mut reservoir);
        reservoir
    }

    /// Derives an independent child generator; useful for giving each
    /// parallel worker its own stream.
    #[must_use]
    pub fn fork(&mut self) -> Self {
        Self::seed_from_u64(self.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_values() {
        // Reference outputs for seed 0 from the public-domain C source.
        let mut sm = SplitMix64::new(0);
        assert_eq!(sm.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(sm.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        assert_eq!(sm.next_u64(), 0x06C4_5D18_8009_454F);
    }

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng::seed_from_u64(999);
        let mut b = Rng::seed_from_u64(999);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::seed_from_u64(1);
        let mut b = Rng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = Rng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_mean_is_near_half() {
        let mut rng = Rng::seed_from_u64(4);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = Rng::seed_from_u64(5);
        for n in [1usize, 2, 3, 7, 100, 1_000_000] {
            for _ in 0..100 {
                assert!(rng.range(n) < n);
            }
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut rng = Rng::seed_from_u64(6);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[rng.range(8)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "range bound must be positive")]
    fn range_zero_panics() {
        Rng::seed_from_u64(0).range(0);
    }

    #[test]
    fn range_between_bounds() {
        let mut rng = Rng::seed_from_u64(7);
        for _ in 0..200 {
            let x = rng.range_between(10, 20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::seed_from_u64(8);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn choose_empty_is_none() {
        let mut rng = Rng::seed_from_u64(9);
        let empty: [u8; 0] = [];
        assert!(rng.choose(&empty).is_none());
    }

    #[test]
    fn choose_single_element() {
        let mut rng = Rng::seed_from_u64(10);
        assert_eq!(rng.choose(&[42]), Some(&42));
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = Rng::seed_from_u64(11);
        let sample = rng.sample_indices(100, 30);
        assert_eq!(sample.len(), 30);
        let mut sorted = sample.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 30);
        assert!(sorted.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_indices_k_exceeds_n() {
        let mut rng = Rng::seed_from_u64(12);
        let mut sample = rng.sample_indices(5, 10);
        sample.sort_unstable();
        assert_eq!(sample, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn bernoulli_extremes() {
        let mut rng = Rng::seed_from_u64(13);
        assert!(!(0..100).any(|_| rng.bernoulli(0.0)));
        assert!((0..100).all(|_| rng.bernoulli(1.1)));
    }

    #[test]
    fn fork_streams_are_independent() {
        let mut parent = Rng::seed_from_u64(14);
        let mut child = parent.fork();
        let a: Vec<u64> = (0..8).map(|_| parent.next_u64()).collect();
        let b: Vec<u64> = (0..8).map(|_| child.next_u64()).collect();
        assert_ne!(a, b);
    }
}
