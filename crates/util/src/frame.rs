//! Checksummed, length-prefixed message frames over byte streams.
//!
//! The network front door of `mbqc-net` speaks a framed request/response
//! protocol over TCP. This module owns the *transport* layer of that
//! protocol: how one logical message is delimited on a byte stream and
//! how corruption is detected. The *meaning* of a frame (verbs, status
//! codes, payload encodings) lives with the protocol crate; here a frame
//! is just `(kind, payload)`.
//!
//! # Wire layout
//!
//! Every frame is a fixed 17-byte header followed by the payload:
//!
//! ```text
//! offset  size  field     encoding
//! ------  ----  --------  ------------------------------------------
//!      0     4  magic     0x4D 0x42 0x51 0x31  (b"MBQ1")
//!      4     1  kind      opaque message tag (protocol-defined)
//!      5     4  len       payload length, little-endian u32
//!      9     8  checksum  frame_checksum(payload), little-endian u64
//!     17   len  payload   opaque bytes
//! ```
//!
//! The magic makes a desynchronized or non-protocol peer fail fast with
//! [`FrameError::BadMagic`] instead of misreading garbage as a length.
//! The length is bounded by a caller-supplied ceiling *before* any
//! allocation, so a corrupt or hostile prefix cannot trigger a huge
//! allocation ([`FrameError::Oversized`]). The checksum is verified on
//! every read ([`FrameError::BadChecksum`]). Unlike the store's
//! [`Fingerprint`](crate::fingerprint::Fingerprint) — computed once per
//! artifact — the frame checksum sits on the latency path of every
//! round trip (twice per direction: once to write, once to verify), so
//! [`frame_checksum`] is a wider four-lane multiply–rotate hash that
//! absorbs 32 bytes per step and shares only the SplitMix64 finalizer
//! with the fingerprint.
//!
//! Truncation — the stream ending mid-header or mid-payload — is
//! reported as [`FrameError::Truncated`], distinct from transport-level
//! I/O failures ([`FrameError::Io`]). None of the error paths panic and
//! none block past the underlying stream's own timeout configuration.
//!
//! # Examples
//!
//! ```
//! use mbqc_util::frame::{read_frame, write_frame, Frame, MAX_FRAME_PAYLOAD};
//!
//! let mut wire = Vec::new();
//! write_frame(&mut wire, 0x42, b"hello").unwrap();
//! let frame = read_frame(&mut wire.as_slice(), MAX_FRAME_PAYLOAD).unwrap();
//! assert_eq!(frame.kind, 0x42);
//! assert_eq!(frame.payload, b"hello");
//! ```

use std::fmt;
use std::io::{self, IoSlice, Read, Write};

use crate::fingerprint::mix;

/// Frame magic: the first four bytes of every frame.
pub const FRAME_MAGIC: [u8; 4] = *b"MBQ1";

/// Fixed header size: magic (4) + kind (1) + len (4) + checksum (8).
pub const FRAME_HEADER_LEN: usize = 17;

/// Default payload ceiling (64 MiB) — far above any real compilation
/// request, far below anything that could pressure the heap.
pub const MAX_FRAME_PAYLOAD: u32 = 64 * 1024 * 1024;

/// One decoded frame: an opaque message tag plus its payload bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Protocol-defined message tag (verb or response kind).
    pub kind: u8,
    /// Opaque payload bytes; interpretation belongs to the protocol.
    pub payload: Vec<u8>,
}

/// Why a frame could not be read or written.
#[derive(Debug)]
pub enum FrameError {
    /// Transport-level failure from the underlying stream.
    Io(io::Error),
    /// The stream ended mid-header or mid-payload.
    Truncated,
    /// The first four bytes were not [`FRAME_MAGIC`]: the peer is not
    /// speaking this protocol or the stream lost sync.
    BadMagic([u8; 4]),
    /// The length prefix exceeds the caller's ceiling; rejected before
    /// any allocation.
    Oversized {
        /// Length the header claimed.
        len: u32,
        /// Ceiling the reader imposed.
        max: u32,
    },
    /// The payload bytes do not match the header checksum.
    BadChecksum {
        /// Checksum carried by the header.
        expected: u64,
        /// Checksum of the bytes actually received.
        actual: u64,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "frame i/o: {e}"),
            FrameError::Truncated => write!(f, "stream ended mid-frame"),
            FrameError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            FrameError::Oversized { len, max } => {
                write!(f, "frame payload length {len} exceeds ceiling {max}")
            }
            FrameError::BadChecksum { expected, actual } => write!(
                f,
                "frame checksum mismatch: header {expected:#018x}, payload {actual:#018x}"
            ),
        }
    }
}

impl std::error::Error for FrameError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            FrameError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            FrameError::Truncated
        } else {
            FrameError::Io(e)
        }
    }
}

/// Checksum of a payload as carried in the frame header.
///
/// Four independent lanes each absorb one 8-byte word per 32-byte step
/// (`xor` → odd-multiplier `wrapping_mul` → rotate, a bijection of the
/// lane state, so any single corrupted word is guaranteed to change
/// the result); the payload length is folded in at the end so a frame
/// cannot collide with its zero-padded extension. Error detection
/// only — collision resistance is the store fingerprint's job — but it
/// runs several times faster than the fingerprint, which matters
/// because every frame is hashed twice per hop.
#[must_use]
pub fn frame_checksum(payload: &[u8]) -> u64 {
    const M0: u64 = 0xA076_1D64_78BD_642F;
    const M1: u64 = 0xE703_7ED1_A0B4_28DB;
    const M2: u64 = 0x8EBC_6AF0_9C88_C6E3;
    const M3: u64 = 0x2545_F491_4F6C_DD1D;
    let mut a = 0x9E37_79B9_7F4A_7C15u64;
    let mut b = 0xC2B2_AE3D_27D4_EB4Fu64;
    let mut c = 0x1656_67B1_9E37_79F9u64;
    let mut d = 0x94D0_49BB_1331_11EBu64;
    let word = |s: &[u8]| u64::from_le_bytes(s.try_into().expect("8-byte word"));
    let mut chunks = payload.chunks_exact(32);
    for ch in &mut chunks {
        a = (a ^ word(&ch[0..8])).wrapping_mul(M0).rotate_left(29);
        b = (b ^ word(&ch[8..16])).wrapping_mul(M1).rotate_left(31);
        c = (c ^ word(&ch[16..24])).wrapping_mul(M2).rotate_left(33);
        d = (d ^ word(&ch[24..32])).wrapping_mul(M3).rotate_left(37);
    }
    let mut rest = chunks.remainder();
    while rest.len() >= 8 {
        a = (a ^ word(&rest[..8])).wrapping_mul(M0).rotate_left(29);
        rest = &rest[8..];
    }
    if !rest.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rest.len()].copy_from_slice(rest);
        b = (b ^ u64::from_le_bytes(tail))
            .wrapping_mul(M1)
            .rotate_left(31);
    }
    mix(mix(a ^ c.rotate_left(17)) ^ mix(b ^ d.rotate_left(13)) ^ payload.len() as u64)
}

/// Encodes a frame into a standalone byte vector (header + payload).
#[must_use]
pub fn encode_frame(kind: u8, payload: &[u8]) -> Vec<u8> {
    let mut buf = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    buf.extend_from_slice(&FRAME_MAGIC);
    buf.push(kind);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&frame_checksum(payload).to_le_bytes());
    buf.extend_from_slice(payload);
    buf
}

/// Writes one frame to `w` as one gather write (header + payload in a
/// single `write_vectored` call, so a frame is never interleaved by a
/// same-thread writer and the payload is not copied into a staging
/// buffer — request payloads run to tens of kilobytes, and the
/// alloc+copy of [`encode_frame`] was measurable on the submit path).
/// A short gather write falls back to plain `write_all` of whatever
/// remains.
///
/// # Errors
///
/// [`FrameError::Io`] on transport failure, [`FrameError::Oversized`]
/// when the payload exceeds [`MAX_FRAME_PAYLOAD`].
pub fn write_frame<W: Write>(w: &mut W, kind: u8, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() > MAX_FRAME_PAYLOAD as usize {
        return Err(FrameError::Oversized {
            len: u32::try_from(payload.len()).unwrap_or(u32::MAX),
            max: MAX_FRAME_PAYLOAD,
        });
    }
    let mut header = [0u8; FRAME_HEADER_LEN];
    header[0..4].copy_from_slice(&FRAME_MAGIC);
    header[4] = kind;
    header[5..9].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[9..17].copy_from_slice(&frame_checksum(payload).to_le_bytes());
    let mut wrote = 0usize;
    while wrote < FRAME_HEADER_LEN {
        match w.write_vectored(&[IoSlice::new(&header[wrote..]), IoSlice::new(payload)]) {
            Ok(0) => {
                return Err(FrameError::Io(io::Error::new(
                    io::ErrorKind::WriteZero,
                    "failed to write whole frame",
                )))
            }
            Ok(n) => wrote += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    if wrote < FRAME_HEADER_LEN + payload.len() {
        w.write_all(&payload[wrote - FRAME_HEADER_LEN..])?;
    }
    w.flush()?;
    Ok(())
}

/// Reads one frame from `r`, enforcing `max_payload` before allocating
/// and verifying the checksum after the payload arrives.
///
/// # Errors
///
/// Every corruption mode maps to a distinct [`FrameError`] variant —
/// truncation, bad magic, oversized length, checksum mismatch — and
/// transport failures surface as [`FrameError::Io`]. No error path
/// panics.
pub fn read_frame<R: Read>(r: &mut R, max_payload: u32) -> Result<Frame, FrameError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    r.read_exact(&mut header)?;
    let magic: [u8; 4] = header[0..4].try_into().expect("4-byte slice");
    if magic != FRAME_MAGIC {
        return Err(FrameError::BadMagic(magic));
    }
    let kind = header[4];
    let len = u32::from_le_bytes(header[5..9].try_into().expect("4-byte slice"));
    if len > max_payload {
        return Err(FrameError::Oversized {
            len,
            max: max_payload,
        });
    }
    let expected = u64::from_le_bytes(header[9..17].try_into().expect("8-byte slice"));
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let actual = frame_checksum(&payload);
    if actual != expected {
        return Err(FrameError::BadChecksum { expected, actual });
    }
    Ok(Frame { kind, payload })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_frames() {
        let mut wire = Vec::new();
        write_frame(&mut wire, 1, b"").unwrap();
        write_frame(&mut wire, 0xFF, b"payload bytes").unwrap();
        let mut r = wire.as_slice();
        let a = read_frame(&mut r, MAX_FRAME_PAYLOAD).unwrap();
        let b = read_frame(&mut r, MAX_FRAME_PAYLOAD).unwrap();
        assert_eq!((a.kind, a.payload.as_slice()), (1, &b""[..]));
        assert_eq!(
            (b.kind, b.payload.as_slice()),
            (0xFF, &b"payload bytes"[..])
        );
        assert!(r.is_empty());
    }

    #[test]
    fn truncation_is_typed_at_every_prefix() {
        let wire = encode_frame(7, b"abcdef");
        for cut in 0..wire.len() {
            let err = read_frame(&mut &wire[..cut], MAX_FRAME_PAYLOAD).unwrap_err();
            assert!(
                matches!(err, FrameError::Truncated),
                "cut {cut}: got {err:?}"
            );
        }
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut wire = encode_frame(7, b"abc");
        wire[0] ^= 0x01;
        assert!(matches!(
            read_frame(&mut wire.as_slice(), MAX_FRAME_PAYLOAD),
            Err(FrameError::BadMagic(_))
        ));
    }

    #[test]
    fn oversized_length_is_rejected_before_allocation() {
        let mut wire = encode_frame(7, b"abc");
        wire[5..9].copy_from_slice(&u32::MAX.to_le_bytes());
        match read_frame(&mut wire.as_slice(), MAX_FRAME_PAYLOAD) {
            Err(FrameError::Oversized { len, max }) => {
                assert_eq!(len, u32::MAX);
                assert_eq!(max, MAX_FRAME_PAYLOAD);
            }
            other => panic!("expected Oversized, got {other:?}"),
        }
        // A small reader-side ceiling rejects honest-but-large frames too.
        let wire = encode_frame(7, &[0u8; 64]);
        assert!(matches!(
            read_frame(&mut wire.as_slice(), 16),
            Err(FrameError::Oversized { len: 64, max: 16 })
        ));
    }

    #[test]
    fn corrupted_payload_fails_checksum() {
        let mut wire = encode_frame(7, b"abcdef");
        let last = wire.len() - 1;
        wire[last] ^= 0x80;
        assert!(matches!(
            read_frame(&mut wire.as_slice(), MAX_FRAME_PAYLOAD),
            Err(FrameError::BadChecksum { .. })
        ));
        // Corrupting the stored checksum itself is equally typed.
        let mut wire = encode_frame(7, b"abcdef");
        wire[9] ^= 0x01;
        assert!(matches!(
            read_frame(&mut wire.as_slice(), MAX_FRAME_PAYLOAD),
            Err(FrameError::BadChecksum { .. })
        ));
    }
}
