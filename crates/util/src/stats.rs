//! Small summary-statistics helpers used by the evaluation harness.
//!
//! # Examples
//!
//! ```
//! use mbqc_util::stats::Summary;
//!
//! let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]);
//! assert_eq!(s.mean, 2.5);
//! assert_eq!(s.min, 1.0);
//! assert_eq!(s.max, 4.0);
//! ```

/// Summary statistics over a slice of `f64` samples.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Summary {
    /// Number of samples.
    pub n: usize,
    /// Arithmetic mean (0 for empty input).
    pub mean: f64,
    /// Population standard deviation (0 for fewer than 2 samples).
    pub std_dev: f64,
    /// Minimum (0 for empty input).
    pub min: f64,
    /// Maximum (0 for empty input).
    pub max: f64,
}

impl Summary {
    /// Computes summary statistics of `samples`.
    ///
    /// Empty input produces an all-zero summary rather than NaN, which is
    /// more convenient for table rendering.
    #[must_use]
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Self::default();
        }
        let n = samples.len();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        let min = samples.iter().copied().fold(f64::INFINITY, f64::min);
        let max = samples.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        Self {
            n,
            mean,
            std_dev: var.sqrt(),
            min,
            max,
        }
    }
}

/// Geometric mean of positive samples.
///
/// Returns 0 for empty input. Non-positive samples are skipped (they have
/// no geometric-mean contribution and would otherwise produce NaN).
///
/// # Examples
///
/// ```
/// let g = mbqc_util::stats::geometric_mean(&[1.0, 4.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn geometric_mean(samples: &[f64]) -> f64 {
    let logs: Vec<f64> = samples
        .iter()
        .filter(|&&x| x > 0.0)
        .map(|&x| x.ln())
        .collect();
    if logs.is_empty() {
        return 0.0;
    }
    (logs.iter().sum::<f64>() / logs.len() as f64).exp()
}

/// Least-squares linear fit `y ≈ a + b·x`; returns `(a, b)`.
///
/// Used by the scalability experiment (Figure 10) to characterize runtime
/// growth. Returns `(0, 0)` for fewer than two points or degenerate x.
///
/// # Examples
///
/// ```
/// let (a, b) = mbqc_util::stats::linear_fit(&[(0.0, 1.0), (1.0, 3.0), (2.0, 5.0)]);
/// assert!((a - 1.0).abs() < 1e-9);
/// assert!((b - 2.0).abs() < 1e-9);
/// ```
#[must_use]
pub fn linear_fit(points: &[(f64, f64)]) -> (f64, f64) {
    if points.len() < 2 {
        return (0.0, 0.0);
    }
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    if denom.abs() < 1e-12 {
        return (0.0, 0.0);
    }
    let b = (n * sxy - sx * sy) / denom;
    let a = (sy - b * sx) / n;
    (a, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic() {
        let s = Summary::of(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert_eq!(s.n, 8);
        assert!((s.mean - 5.0).abs() < 1e-12);
        assert!((s.std_dev - 2.0).abs() < 1e-12);
        assert_eq!(s.min, 2.0);
        assert_eq!(s.max, 9.0);
    }

    #[test]
    fn summary_empty_is_zeroed() {
        let s = Summary::of(&[]);
        assert_eq!(s.n, 0);
        assert_eq!(s.mean, 0.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn summary_single_sample() {
        let s = Summary::of(&[3.5]);
        assert_eq!(s.mean, 3.5);
        assert_eq!(s.std_dev, 0.0);
        assert_eq!(s.min, 3.5);
        assert_eq!(s.max, 3.5);
    }

    #[test]
    fn geometric_mean_matches_identity() {
        assert_eq!(geometric_mean(&[]), 0.0);
        assert!((geometric_mean(&[8.0]) - 8.0).abs() < 1e-12);
        assert!((geometric_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn geometric_mean_skips_nonpositive() {
        let g = geometric_mean(&[0.0, -5.0, 2.0, 8.0]);
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    fn linear_fit_exact_line() {
        let pts: Vec<(f64, f64)> = (0..10).map(|i| (i as f64, 3.0 + 0.5 * i as f64)).collect();
        let (a, b) = linear_fit(&pts);
        assert!((a - 3.0).abs() < 1e-9);
        assert!((b - 0.5).abs() < 1e-9);
    }

    #[test]
    fn linear_fit_degenerate() {
        assert_eq!(linear_fit(&[(1.0, 2.0)]), (0.0, 0.0));
        assert_eq!(linear_fit(&[(1.0, 2.0), (1.0, 3.0)]), (0.0, 0.0));
    }
}
