//! Hand-rolled, allocation-free metrics primitives: atomic counters and
//! fixed-size log-bucketed histograms.
//!
//! The build box is offline, so there is no `prometheus`/`hdrhistogram`;
//! this module provides the minimal production shapes the service layer
//! needs for latency attribution:
//!
//! * [`Counter`] — a relaxed atomic monotonic counter.
//! * [`Histogram`] — a fixed-size (496-bucket) logarithmic histogram of
//!   `u64` samples with **8 sub-buckets per octave**, so every recorded
//!   value lands in a bucket whose width is at most 1/8th of its lower
//!   bound. Quantile estimates are therefore within ~12.5% relative
//!   error for any value range, with no configuration and no allocation
//!   after construction. Recording is one relaxed `fetch_add` per
//!   sample (plus a sum add and a max CAS loop), so it is safe on hot
//!   paths and from any number of threads.
//! * [`Summary`] — a `Copy` snapshot (count / p50 / p95 / p99 / max /
//!   mean) taken from a histogram at a point in time.
//! * [`Registry`] — a named collection of histograms built once at
//!   startup and then accessed by cheap integer [`HistogramId`]s, so
//!   call sites never pay a name lookup.
//!
//! # Example
//!
//! ```
//! use mbqc_util::metrics::{Histogram, Registry};
//!
//! let mut reg = Registry::new();
//! let lat = reg.histogram("stage_latency_ns");
//! for v in [100u64, 200, 400, 800] {
//!     reg.get(lat).record(v);
//! }
//! let s = reg.get(lat).summary();
//! assert_eq!(s.count, 4);
//! assert!(s.p50 >= 100 && s.max >= 800);
//! // Log-bucketing keeps every quantile within ~12.5% of the true value.
//! assert!(s.p99 <= 900);
//! let _ = Histogram::new(); // histograms also work standalone
//! ```

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing atomic counter.
///
/// All operations are `Ordering::Relaxed`: counters are statistics, not
/// synchronization.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A fresh counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// log2 of the number of sub-buckets per octave.
const SUB_BITS: u32 = 3;
/// Sub-buckets per octave (8): bucket width ≤ 1/8 of the bucket's lower
/// bound, i.e. ≤ 12.5% relative quantile error.
const SUB: u64 = 1 << SUB_BITS;
/// Total bucket count covering the full `u64` range: values `0..8` get
/// exact buckets, then 61 octaves (`msb = 3..=63`) × 8 sub-buckets each.
const BUCKETS: usize = (SUB + (64 - SUB_BITS as u64) * SUB) as usize;

/// Map a sample to its bucket index. Exact for `v < 8`; above that, the
/// top `SUB_BITS + 1` significant bits select the bucket.
#[inline]
fn bucket_index(v: u64) -> usize {
    if v < SUB {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros(); // >= SUB_BITS
        let sub = (v >> (msb - SUB_BITS)) - SUB; // 0..SUB
        ((msb as u64 - SUB_BITS as u64 + 1) * SUB + sub) as usize
    }
}

/// Inclusive lower bound of bucket `idx` (the smallest value that maps
/// to it).
#[inline]
fn bucket_lower(idx: usize) -> u64 {
    if idx < SUB as usize {
        idx as u64
    } else {
        let octave = idx as u64 / SUB - 1; // 0-based octave above the exact range
        let sub = idx as u64 % SUB;
        (SUB + sub) << octave
    }
}

/// Representative value reported for bucket `idx`: the midpoint of the
/// bucket's value range, which halves the worst-case quantile error
/// versus reporting either edge.
#[inline]
fn bucket_mid(idx: usize) -> u64 {
    let lo = bucket_lower(idx);
    if idx < SUB as usize {
        lo
    } else {
        let width = 1u64 << (idx as u64 / SUB - 1);
        lo + (width - 1) / 2
    }
}

/// A fixed-size log-bucketed histogram of `u64` samples.
///
/// Thread-safe: `record` is lock-free and callable concurrently;
/// `summary` takes a relaxed snapshot (counts recorded concurrently with
/// the snapshot may or may not be included — fine for statistics).
#[derive(Debug)]
pub struct Histogram {
    buckets: Box<[AtomicU64]>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// A fresh, empty histogram (one 496-slot allocation).
    pub fn new() -> Self {
        Histogram {
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Record one sample.
    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of samples recorded so far.
    #[inline]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Snapshot the histogram into a [`Summary`].
    pub fn summary(&self) -> Summary {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return Summary::default();
        }
        // Rank r(q) = the ceil(q * total)-th sample (1-based); walk the
        // cumulative counts once for all three quantiles.
        let rank = |q: f64| -> u64 { ((q * total as f64).ceil() as u64).clamp(1, total) };
        let (r50, r95, r99) = (rank(0.50), rank(0.95), rank(0.99));
        let (mut p50, mut p95, mut p99) = (0u64, 0u64, 0u64);
        let mut cum = 0u64;
        for (idx, &c) in counts.iter().enumerate() {
            if c == 0 {
                continue;
            }
            let prev = cum;
            cum += c;
            let mid = bucket_mid(idx);
            if prev < r50 && r50 <= cum {
                p50 = mid;
            }
            if prev < r95 && r95 <= cum {
                p95 = mid;
            }
            if prev < r99 && r99 <= cum {
                p99 = mid;
                break;
            }
        }
        let max = self.max.load(Ordering::Relaxed);
        Summary {
            count: total,
            sum: self.sum.load(Ordering::Relaxed),
            p50: p50.min(max),
            p95: p95.min(max),
            p99: p99.min(max),
            max,
        }
    }
}

/// A point-in-time quantile snapshot of a [`Histogram`].
///
/// Quantiles are bucket midpoints, accurate to ~12.5% relative error
/// (and clamped to the observed maximum, so `p99 <= max` always holds).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct Summary {
    /// Number of samples.
    pub count: u64,
    /// Sum of all samples (wrapping on overflow; use for means).
    pub sum: u64,
    /// Estimated median.
    pub p50: u64,
    /// Estimated 95th percentile.
    pub p95: u64,
    /// Estimated 99th percentile.
    pub p99: u64,
    /// Exact maximum sample.
    pub max: u64,
}

impl Summary {
    /// Exact arithmetic mean of the recorded samples, or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

/// Integer handle into a [`Registry`], returned at registration time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A named set of histograms: register by name once at startup, record
/// through [`HistogramId`]s with no lookup cost afterwards.
#[derive(Debug, Default)]
pub struct Registry {
    histograms: Vec<(&'static str, Histogram)>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// Register (or create) the histogram `name` and return its handle.
    /// Registering the same name twice returns the existing histogram.
    pub fn histogram(&mut self, name: &'static str) -> HistogramId {
        if let Some(i) = self.histograms.iter().position(|(n, _)| *n == name) {
            return HistogramId(i);
        }
        self.histograms.push((name, Histogram::new()));
        HistogramId(self.histograms.len() - 1)
    }

    /// The histogram behind `id`.
    #[inline]
    pub fn get(&self, id: HistogramId) -> &Histogram {
        &self.histograms[id.0].1
    }

    /// Snapshot every registered histogram as `(name, summary)` pairs,
    /// in registration order.
    pub fn summaries(&self) -> Vec<(&'static str, Summary)> {
        self.histograms
            .iter()
            .map(|(n, h)| (*n, h.summary()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_is_monotonic_and_total() {
        // Exact buckets below SUB, then every boundary transition.
        let mut prev = 0usize;
        for shift in 0..64u32 {
            for off in [0u64, 1, 2] {
                let v = (1u64 << shift).saturating_add(off).saturating_sub(1);
                let idx = bucket_index(v);
                assert!(idx < BUCKETS, "v={v} idx={idx}");
                assert!(
                    idx >= prev || v < bucket_lower(prev),
                    "not monotonic at {v}"
                );
                prev = prev.max(idx);
            }
        }
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    }

    #[test]
    fn bucket_lower_inverts_index() {
        for idx in 0..BUCKETS {
            let lo = bucket_lower(idx);
            assert_eq!(bucket_index(lo), idx, "idx={idx} lo={lo}");
            if lo > 0 {
                assert!(bucket_index(lo - 1) == idx - 1, "idx={idx} lo={lo}");
            }
            let mid = bucket_mid(idx);
            assert_eq!(bucket_index(mid), idx, "midpoint must stay in bucket");
        }
    }

    #[test]
    fn quantiles_within_relative_error() {
        let h = Histogram::new();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.summary();
        assert_eq!(s.count, 10_000);
        assert_eq!(s.max, 10_000);
        for (q, est) in [(0.50, s.p50), (0.95, s.p95), (0.99, s.p99)] {
            let truth = (q * 10_000f64) as u64;
            let err = (est as f64 - truth as f64).abs() / truth as f64;
            assert!(err < 0.125, "q={q} est={est} truth={truth} err={err}");
        }
        assert_eq!(s.mean(), s.sum / s.count);
    }

    #[test]
    fn empty_and_single_sample() {
        let h = Histogram::new();
        assert_eq!(h.summary(), Summary::default());
        h.record(7);
        let s = h.summary();
        assert_eq!((s.count, s.p50, s.p99, s.max), (1, 7, 7, 7));
        h.record(0);
        assert_eq!(h.summary().count, 2);
    }

    #[test]
    fn extreme_values_do_not_panic() {
        let h = Histogram::new();
        h.record(u64::MAX);
        h.record(0);
        let s = h.summary();
        assert_eq!(s.count, 2);
        assert_eq!(s.max, u64::MAX);
        assert!(s.p50 <= s.p99);
    }

    #[test]
    fn registry_dedupes_names() {
        let mut reg = Registry::new();
        let a = reg.histogram("x");
        let b = reg.histogram("x");
        let c = reg.histogram("y");
        assert_eq!(a, b);
        assert_ne!(a, c);
        reg.get(a).record(3);
        let sums = reg.summaries();
        assert_eq!(sums.len(), 2);
        assert_eq!(sums[0].0, "x");
        assert_eq!(sums[0].1.count, 1);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        use std::sync::Arc;
        let h = Arc::new(Histogram::new());
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        assert_eq!(h.summary().count, 4000);
    }
}
