//! Plain-text, markdown, and CSV table rendering.
//!
//! The `repro` binary in `mbqc-bench` uses [`TextTable`] to print every
//! table and figure series from the paper in a terminal-friendly format.
//!
//! # Examples
//!
//! ```
//! use mbqc_util::table::TextTable;
//!
//! let mut t = TextTable::new(vec!["Program", "Exec", "Lifetime"]);
//! t.row(vec!["QFT-16".into(), "35".into(), "28".into()]);
//! let rendered = t.render();
//! assert!(rendered.contains("QFT-16"));
//! ```

use std::fmt::Write as _;

/// Column alignment for [`TextTable`] rendering.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Align {
    /// Left-aligned (default for the first column).
    Left,
    /// Right-aligned (default for all other columns — most cells are
    /// numeric).
    #[default]
    Right,
}

/// A simple table builder that renders to aligned plain text, markdown, or
/// CSV.
///
/// # Examples
///
/// ```
/// use mbqc_util::table::TextTable;
///
/// let mut t = TextTable::new(vec!["a", "b"]);
/// t.row(vec!["1".into(), "2".into()]);
/// assert!(t.render_csv().starts_with("a,b\n"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
    aligns: Vec<Align>,
    title: Option<String>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    ///
    /// The first column defaults to left alignment, the rest to right.
    #[must_use]
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Self {
        let headers: Vec<String> = headers.into_iter().map(Into::into).collect();
        let aligns = (0..headers.len())
            .map(|i| if i == 0 { Align::Left } else { Align::Right })
            .collect();
        Self {
            headers,
            rows: Vec::new(),
            aligns,
            title: None,
        }
    }

    /// Sets a title rendered above the table.
    pub fn title<S: Into<String>>(&mut self, title: S) -> &mut Self {
        self.title = Some(title.into());
        self
    }

    /// Overrides per-column alignments.
    ///
    /// # Panics
    ///
    /// Panics if `aligns.len()` differs from the number of headers.
    pub fn aligns(&mut self, aligns: Vec<Align>) -> &mut Self {
        assert_eq!(aligns.len(), self.headers.len(), "alignment count mismatch");
        self.aligns = aligns;
        self
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count differs from the header count.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.headers.len(), "cell count mismatch");
        self.rows.push(cells);
        self
    }

    /// Number of data rows currently in the table.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Returns `true` if the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    fn widths(&self) -> Vec<usize> {
        let mut w: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                w[i] = w[i].max(cell.len());
            }
        }
        w
    }

    /// Renders the table as aligned plain text with a header rule.
    #[must_use]
    pub fn render(&self) -> String {
        let w = self.widths();
        let mut out = String::new();
        if let Some(t) = &self.title {
            let _ = writeln!(out, "== {t} ==");
        }
        let fmt_row = |cells: &[String], w: &[usize], aligns: &[Align]| -> String {
            let mut line = String::new();
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                match aligns[i] {
                    Align::Left => {
                        let _ = write!(line, "{:<width$}", cell, width = w[i]);
                    }
                    Align::Right => {
                        let _ = write!(line, "{:>width$}", cell, width = w[i]);
                    }
                }
            }
            line
        };
        let _ = writeln!(out, "{}", fmt_row(&self.headers, &w, &self.aligns));
        let total: usize = w.iter().sum::<usize>() + 2 * (w.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &w, &self.aligns));
        }
        out
    }

    /// Renders the table as GitHub-flavored markdown.
    #[must_use]
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        if let Some(t) = &self.title {
            let _ = writeln!(out, "### {t}\n");
        }
        let _ = writeln!(out, "| {} |", self.headers.join(" | "));
        let seps: Vec<&str> = self
            .aligns
            .iter()
            .map(|a| match a {
                Align::Left => ":---",
                Align::Right => "---:",
            })
            .collect();
        let _ = writeln!(out, "| {} |", seps.join(" | "));
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders the table as CSV (RFC-4180-style quoting for cells
    /// containing commas, quotes, or newlines).
    #[must_use]
    pub fn render_csv(&self) -> String {
        fn esc(cell: &str) -> String {
            if cell.contains([',', '"', '\n']) {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_owned()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }
}

/// Formats a float with `prec` decimal places (helper for table cells).
///
/// # Examples
///
/// ```
/// assert_eq!(mbqc_util::table::fmt_f64(3.14159, 2), "3.14");
/// ```
#[must_use]
pub fn fmt_f64(x: f64, prec: usize) -> String {
    format!("{x:.prec$}")
}

/// Formats an improvement factor like the paper (`3.97` or `15.12%`).
///
/// # Examples
///
/// ```
/// assert_eq!(mbqc_util::table::fmt_factor(3.9651), "3.97");
/// ```
#[must_use]
pub fn fmt_factor(x: f64) -> String {
    format!("{x:.2}")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> TextTable {
        let mut t = TextTable::new(vec!["Program", "Exec", "Lifetime"]);
        t.row(vec!["QFT-16".into(), "35".into(), "28".into()]);
        t.row(vec!["VQE-144".into(), "278".into(), "258".into()]);
        t
    }

    #[test]
    fn render_contains_all_cells() {
        let r = sample().render();
        for needle in ["Program", "QFT-16", "VQE-144", "278", "28"] {
            assert!(r.contains(needle), "missing {needle} in:\n{r}");
        }
    }

    #[test]
    fn render_aligns_columns() {
        let r = sample().render();
        let lines: Vec<&str> = r.lines().collect();
        // All lines the same width (alignment pads uniformly).
        let w = lines[0].len();
        assert!(lines.iter().all(|l| l.len() == w), "{r}");
    }

    #[test]
    fn title_is_rendered() {
        let mut t = sample();
        t.title("Table III");
        assert!(t.render().starts_with("== Table III =="));
        assert!(t.render_markdown().starts_with("### Table III"));
    }

    #[test]
    fn markdown_has_separator() {
        let md = sample().render_markdown();
        assert!(md.contains("| :--- | ---: | ---: |"));
    }

    #[test]
    fn csv_quotes_special_cells() {
        let mut t = TextTable::new(vec!["a"]);
        t.row(vec!["x,y".into()]);
        t.row(vec!["he said \"hi\"".into()]);
        let csv = t.render_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"he said \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "cell count mismatch")]
    fn row_width_mismatch_panics() {
        let mut t = TextTable::new(vec!["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn empty_and_len() {
        let t = TextTable::new(vec!["a"]);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(sample().len(), 2);
    }

    #[test]
    fn fmt_helpers() {
        assert_eq!(fmt_f64(1.0 / 3.0, 3), "0.333");
        assert_eq!(fmt_factor(7.456), "7.46");
    }
}
