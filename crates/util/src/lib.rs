//! Shared utilities for the DC-MBQC workspace.
//!
//! This crate has no external dependencies and provides three things used
//! across every other crate in the workspace:
//!
//! * [`rng`] — deterministic, seedable pseudo-random number generation
//!   (SplitMix64 and Xoshiro256\*\*). All stochastic components of the
//!   compiler (simulated annealing, random benchmark instances, tie
//!   breaking) draw from these generators so that every experiment in the
//!   paper reproduction is bit-for-bit repeatable from a seed.
//! * [`table`] — plain-text / markdown / CSV table rendering used by the
//!   `repro` binary to print the paper's tables and figure series.
//! * [`stats`] — small summary-statistics helpers (mean, geometric mean,
//!   min/max, linear fit) used by the evaluation harness.
//! * [`codec`] — the hand-rolled binary encoder/decoder behind every
//!   stage-artifact `to_bytes`/`from_bytes` pair (the build box is
//!   offline, so there is no serde).
//! * [`fingerprint`] — stable 128-bit content hashing for the
//!   content-addressed artifact store of `mbqc-service`.
//! * [`frame`] — checksummed, length-prefixed message frames over byte
//!   streams: the transport layer under the `mbqc-net` wire protocol.
//! * [`mmap`] — read-only memory-mapped byte buffers (with a heap
//!   fallback), the zero-copy substrate under the store's lazy artifact
//!   views.
//! * [`metrics`] — atomic counters and fixed-size log-bucketed
//!   histograms with p50/p95/p99 summaries, the offline-box stand-in
//!   for a metrics crate; `mbqc-service` records per-stage latency,
//!   queue wait, and warm-hit latency through them.
//! * [`sync`] — poison-recovering lock/condvar helpers, so one
//!   panicking worker degrades to its own failure instead of
//!   cascading a poisoned mutex through every other worker.
//!
//! # Examples
//!
//! ```
//! use mbqc_util::rng::Rng;
//!
//! let mut rng = Rng::seed_from_u64(42);
//! let x = rng.next_f64();
//! assert!((0.0..1.0).contains(&x));
//! let i = rng.range(10);
//! assert!(i < 10);
//! ```

pub mod codec;
pub mod fingerprint;
pub mod frame;
pub mod metrics;
pub mod mmap;
pub mod rng;
pub mod stats;
pub mod sync;
pub mod table;

pub use codec::{CodecError, Decoder, Encoder, UsizeSliceView};
pub use fingerprint::Fingerprint;
pub use mmap::MappedBytes;
pub use rng::Rng;
pub use table::TextTable;
