//! Mid-pipeline re-entry on degenerate inputs: the re-entry
//! constructors ([`Transpiled::from_parts`],
//! [`Partitioned::with_partition`], [`Partitioned::with_partition_cached`])
//! and the full pipeline must **error or compile cleanly — never
//! panic** on the edge shapes a service meets in the wild: the empty
//! pattern, a single-qubit pattern, a `k = 1` partition, and more QPUs
//! than nodes. Contract *violations* (mismatched table sizes) stay
//! documented panics — those are executor bugs, not inputs.

use dc_mbqc::{
    CompileSession, DcMbqcCompiler, DcMbqcConfig, DcMbqcError, DistributedSchedule, Partitioned,
    Transpiled,
};
use mbqc_graph::{Graph, NodeId};
use mbqc_hardware::{DistributedHardware, ResourceStateKind};
use mbqc_partition::Partition;
use mbqc_pattern::Pattern;

fn hw(qpus: usize, width: usize) -> DistributedHardware {
    DistributedHardware::builder()
        .num_qpus(qpus)
        .grid_width(width)
        .resource_state(ResourceStateKind::FIVE_STAR)
        .kmax(4)
        .build()
}

fn empty_pattern() -> Pattern {
    Pattern::from_parts(Graph::new(), vec![], vec![], vec![], vec![], vec![], vec![])
}

/// One unmeasured output photon: the smallest valid pattern.
fn single_node_pattern() -> Pattern {
    let mut g = Graph::new();
    let a = g.add_node();
    Pattern::from_parts(
        g,
        vec![0.0],
        vec![false],
        vec![None],
        vec![0],
        vec![a],
        vec![a],
    )
}

/// One measured input flowing into one output: two nodes, one edge.
fn two_node_pattern() -> Pattern {
    let mut g = Graph::new();
    let a = g.add_node();
    let b = g.add_node();
    g.add_edge(a, b);
    Pattern::from_parts(
        g,
        vec![0.0, 0.0],
        vec![true, false],
        vec![Some(b), None],
        vec![0, 0],
        vec![a],
        vec![b],
    )
}

/// Two measured nodes whose flow successors form a cycle: structurally
/// a valid pattern, but without causal flow.
fn cyclic_flow_pattern() -> Pattern {
    let mut g = Graph::new();
    let a = g.add_node();
    let b = g.add_node();
    g.add_edge(a, b);
    Pattern::from_parts(
        g,
        vec![0.0, 0.0],
        vec![true, true],
        vec![Some(b), Some(a)],
        vec![0, 0],
        vec![],
        vec![],
    )
}

/// Every degenerate `(pattern, qpus)` shape, with the invariants a
/// clean compile must satisfy.
fn degenerate_cases() -> Vec<(&'static str, Pattern, usize)> {
    vec![
        ("empty on 2 QPUs", empty_pattern(), 2),
        ("single node on 2 QPUs", single_node_pattern(), 2),
        ("single node on k=1", single_node_pattern(), 1),
        ("two nodes on k=1", two_node_pattern(), 1),
        ("two nodes on 4 QPUs (QPUs > nodes)", two_node_pattern(), 4),
        ("empty on 4 QPUs", empty_pattern(), 4),
    ]
}

fn check_result(what: &str, dist: &DistributedSchedule, qpus: usize, nodes: usize) {
    assert_eq!(dist.partition().k(), qpus, "{what}: partition arity");
    assert_eq!(dist.partition().len(), nodes, "{what}: partition coverage");
    assert_eq!(dist.per_qpu_layers().len(), qpus, "{what}: per-QPU layers");
    assert!(
        dist.problem().is_feasible(dist.schedule()),
        "{what}: schedule feasible"
    );
}

/// The full pipeline compiles every degenerate shape cleanly.
#[test]
fn pipeline_compiles_degenerate_shapes() {
    for (what, pattern, qpus) in degenerate_cases() {
        let compiler = DcMbqcCompiler::new(DcMbqcConfig::new(hw(qpus, 4)));
        let dist = compiler
            .compile_pattern(&pattern)
            .unwrap_or_else(|e| panic!("{what}: {e}"));
        check_result(what, &dist, qpus, pattern.node_count());
        // The full artifact codec round-trips on degenerate shapes too
        // (an empty schedule is still a valid `Scheduled` artifact).
        let back = DistributedSchedule::from_bytes(&dist.to_bytes())
            .unwrap_or_else(|e| panic!("{what}: codec: {e}"));
        assert_eq!(back, dist, "{what}: codec round trip");
    }
}

/// Re-entry through `Transpiled::from_parts` +
/// `Partitioned::with_partition` (+ the cached variant) reproduces the
/// direct compilation bit for bit on every degenerate shape.
#[test]
fn reentry_matches_direct_on_degenerate_shapes() {
    for (what, pattern, qpus) in degenerate_cases() {
        let config = DcMbqcConfig::new(hw(qpus, 4));
        let direct = DcMbqcCompiler::new(config.clone())
            .compile_pattern(&pattern)
            .unwrap_or_else(|e| panic!("{what}: direct: {e}"));
        let order = Transpiled::new(&pattern)
            .unwrap_or_else(|e| panic!("{what}: transpile: {e}"))
            .placement_order()
            .to_vec();

        // Plain re-entry: retained order + stored partition.
        let mut session = CompileSession::new(config.clone());
        let transpiled = Transpiled::from_parts(&pattern, order.clone());
        let partitioned = Partitioned::with_partition(transpiled, direct.partition().clone());
        let cache = partitioned.cache();
        let mapped = session
            .map(partitioned)
            .unwrap_or_else(|e| panic!("{what}: map: {e}"));
        let scheduled = session.schedule(mapped);
        assert_eq!(scheduled, direct, "{what}: with_partition re-entry");

        // Cached re-entry: the executor's per-task rebuild path.
        let transpiled = Transpiled::from_parts(&pattern, order);
        let partitioned =
            Partitioned::with_partition_cached(transpiled, direct.partition().clone(), cache);
        let mapped = session
            .map(partitioned)
            .unwrap_or_else(|e| panic!("{what}: cached map: {e}"));
        let scheduled = session.schedule(mapped);
        assert_eq!(scheduled, direct, "{what}: with_partition_cached re-entry");
    }
}

/// A structurally valid pattern without causal flow is an *error*
/// (`NoFlow`), not a panic — for the empty-adjacent shapes too.
#[test]
fn flowless_pattern_errors_cleanly() {
    let pattern = cyclic_flow_pattern();
    assert!(matches!(
        Transpiled::new(&pattern).map(|_| ()),
        Err(DcMbqcError::NoFlow)
    ));
    let compiler = DcMbqcCompiler::new(DcMbqcConfig::new(hw(2, 4)));
    assert!(matches!(
        compiler.compile_pattern(&pattern),
        Err(DcMbqcError::NoFlow)
    ));
}

/// Contract violations stay loud: the re-entry constructors panic on
/// mismatched shapes rather than silently compiling garbage.
#[test]
fn reentry_contract_violations_panic() {
    let single = single_node_pattern();
    // Placement order not covering the pattern.
    assert!(std::panic::catch_unwind(|| {
        Transpiled::from_parts(&single, vec![NodeId::new(0), NodeId::new(0)])
    })
    .is_err());
    // Partition not covering the pattern.
    assert!(std::panic::catch_unwind(|| {
        let t = Transpiled::new(&single).unwrap();
        Partitioned::with_partition(t, Partition::new(vec![0, 1], 2))
    })
    .is_err());
    // Cache from a different pattern.
    assert!(std::panic::catch_unwind(|| {
        let two = two_node_pattern();
        let t2 = Transpiled::new(&two).unwrap();
        let cache = Partitioned::with_partition(t2, Partition::new(vec![0, 1], 2)).cache();
        let t1 = Transpiled::new(&single).unwrap();
        Partitioned::with_partition_cached(t1, Partition::new(vec![0], 1), cache)
    })
    .is_err());
}
