//! Property-based pins for the staged pipeline rearchitecture:
//!
//! * the staged path (`Transpiled` → `Partitioned` → `Mapped` →
//!   `Scheduled`, driven by hand) is bit-identical to the single-call
//!   `compile_pattern` driver;
//! * `compile_batch` equals a sequential loop of `compile_pattern`
//!   per element, for every worker count;
//! * the whole pipeline is seed-deterministic independent of the
//!   partitioner's probe worker count (1, 2, and 8 workers).

use dc_mbqc::{CompileSession, DcMbqcCompiler, DcMbqcConfig, DistributedSchedule, Transpiled};
use mbqc_circuit::bench::{self, BenchmarkKind};
use mbqc_hardware::{DistributedHardware, ResourceStateKind};
use mbqc_pattern::{transpile::transpile, Pattern};
use proptest::prelude::*;

fn hardware(
    qpus: usize,
    qubits: usize,
    kind: ResourceStateKind,
    kmax: usize,
) -> DistributedHardware {
    DistributedHardware::builder()
        .num_qpus(qpus)
        .grid_width(bench::grid_size_for(qubits))
        .resource_state(kind)
        .kmax(kmax)
        .build()
}

fn pattern_for(kind_idx: usize, qubits: usize) -> Pattern {
    let kinds = BenchmarkKind::all();
    let kind = kinds[kind_idx % kinds.len()];
    transpile(&kind.generate(qubits, 1))
}

/// Field-wise bit-identity of two compilation outcomes (schedules,
/// partitions, problems, and every reported metric — or equal errors).
fn assert_identical(
    a: &Result<DistributedSchedule, dc_mbqc::DcMbqcError>,
    b: &Result<DistributedSchedule, dc_mbqc::DcMbqcError>,
) -> Result<(), TestCaseError> {
    match (a, b) {
        (Ok(x), Ok(y)) => {
            prop_assert_eq!(x.execution_time(), y.execution_time());
            prop_assert_eq!(x.required_photon_lifetime(), y.required_photon_lifetime());
            prop_assert_eq!(x.tau_local(), y.tau_local());
            prop_assert_eq!(x.tau_remote(), y.tau_remote());
            prop_assert_eq!(x.cut_edges(), y.cut_edges());
            prop_assert_eq!(x.refresh_events(), y.refresh_events());
            prop_assert_eq!(x.per_qpu_layers(), y.per_qpu_layers());
            prop_assert_eq!(x.partition(), y.partition());
            prop_assert_eq!(x.schedule(), y.schedule());
            prop_assert!((x.modularity() - y.modularity()).abs() < 1e-15);
        }
        (Err(x), Err(y)) => prop_assert_eq!(x, y),
        (x, y) => prop_assert!(false, "one path failed: {:?} vs {:?}", x.is_ok(), y.is_ok()),
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn staged_path_identical_to_single_call(
        kind_idx in 0usize..8,
        qubits in 6usize..14,
        qpus in 2usize..5,
        seed in 0u64..1000,
        with_bdir in 0usize..2,
        refresh in 0usize..2,
    ) {
        let pattern = pattern_for(kind_idx, qubits);
        let mut config = DcMbqcConfig::new(hardware(qpus, qubits, ResourceStateKind::FIVE_STAR, 4))
            .with_seed(seed);
        if with_bdir == 0 {
            config = config.without_bdir();
        }
        if refresh == 1 {
            config = config.with_refresh(4);
        }
        let single = DcMbqcCompiler::new(config.clone()).compile_pattern(&pattern);
        let staged = {
            let mut session = CompileSession::new(config);
            Transpiled::new(&pattern)
                .map(|t| session.partition(t))
                .and_then(|p| session.map(p))
                .map(|m| session.schedule(m))
        };
        assert_identical(&single, &staged)?;
    }

    #[test]
    fn batch_equals_sequential_loop(
        qubits in 6usize..12,
        qpus in 2usize..5,
        seed in 0u64..1000,
        batch_size in 1usize..5,
        workers in 0usize..5,
    ) {
        let patterns: Vec<Pattern> = (0..batch_size)
            .map(|i| pattern_for(i, qubits + (i % 3)))
            .collect();
        let config = DcMbqcConfig::new(hardware(qpus, qubits + 2, ResourceStateKind::FIVE_STAR, 4))
            .with_seed(seed)
            .with_batch_workers(workers);
        let compiler = DcMbqcCompiler::new(config);
        let batch = compiler.compile_batch(&patterns);
        prop_assert_eq!(batch.len(), patterns.len());
        for (pattern, batched) in patterns.iter().zip(&batch) {
            let sequential = compiler.compile_pattern(pattern);
            assert_identical(&sequential, batched)?;
        }
    }

    #[test]
    fn pipeline_deterministic_across_probe_workers(
        kind_idx in 0usize..8,
        qubits in 6usize..12,
        qpus in 2usize..5,
        seed in 0u64..1000,
    ) {
        let pattern = pattern_for(kind_idx, qubits);
        let base = DcMbqcConfig::new(hardware(qpus, qubits, ResourceStateKind::FIVE_STAR, 4))
            .with_seed(seed);
        let one = DcMbqcCompiler::new(base.clone().with_probe_workers(1)).compile_pattern(&pattern);
        for workers in [2usize, 8] {
            let parallel = DcMbqcCompiler::new(base.clone().with_probe_workers(workers))
                .compile_pattern(&pattern);
            assert_identical(&one, &parallel)?;
        }
    }
}

/// Session reuse across many compilations must not leak state: the
/// same session compiling a sequence of different patterns matches
/// fresh-compiler results for each (the workspace-reuse guarantee at
/// the whole-pipeline level).
#[test]
fn session_reuse_matches_fresh_compilers() {
    let config = DcMbqcConfig::new(hardware(4, 12, ResourceStateKind::FIVE_STAR, 4)).with_seed(3);
    let compiler = DcMbqcCompiler::new(config.clone());
    let mut session = CompileSession::new(config);
    for (i, kind) in BenchmarkKind::all().iter().enumerate() {
        let pattern = transpile(&kind.generate(10 + (i % 3), 1));
        let fresh = compiler.compile_pattern(&pattern);
        let reused = session.compile_pattern(&pattern);
        match (fresh, reused) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.schedule(), b.schedule(), "{kind}");
                assert_eq!(a.partition(), b.partition(), "{kind}");
                assert_eq!(
                    a.required_photon_lifetime(),
                    b.required_photon_lifetime(),
                    "{kind}"
                );
            }
            (Err(a), Err(b)) => assert_eq!(a, b, "{kind}"),
            _ => panic!("fresh and reused disagree on success for {kind}"),
        }
    }
}
