//! The end-to-end DC-MBQC pipeline (Figure 2 of the paper).
//!
//! [`DcMbqcCompiler`] is the single-call façade: every compilation is
//! driven through the staged pipeline of [`crate::session`]
//! ([`Transpiled`] → [`Partitioned`] → [`Mapped`] → [`Scheduled`]) and
//! the two paths are pinned bit-identical by property tests.
//! [`DcMbqcCompiler::compile_batch`] compiles many patterns
//! concurrently over the shared hardware configuration.
//!
//! [`Transpiled`]: crate::session::Transpiled
//! [`Partitioned`]: crate::session::Partitioned
//! [`Mapped`]: crate::session::Mapped
//! [`Scheduled`]: crate::session::Scheduled

use mbqc_circuit::Circuit;
use mbqc_partition::{resolve_workers, Partition, PartitionView};
use mbqc_pattern::{transpile::transpile, Pattern};
use mbqc_schedule::{LayerScheduleProblem, Schedule, ScheduleCost};
use mbqc_util::codec::{CodecError, Decoder, Encoder, UsizeSliceView};

use crate::baseline::{placement_order, BaselineResult};
use crate::config::{DcMbqcConfig, DcMbqcError};
use crate::session::CompileSession;

/// The result of distributed compilation: a feasible schedule of
/// execution layers and connection layers across all QPUs, with the
/// paper's two headline metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct DistributedSchedule {
    cost: ScheduleCost,
    schedule: Schedule,
    problem: LayerScheduleProblem,
    partition: Partition,
    modularity: f64,
    cut_edges: usize,
    per_qpu_layers: Vec<usize>,
    refresh_events: usize,
}

impl DistributedSchedule {
    /// Assembles the artifact from its parts (the scheduling stage's
    /// constructor).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn from_parts(
        cost: ScheduleCost,
        schedule: Schedule,
        problem: LayerScheduleProblem,
        partition: Partition,
        modularity: f64,
        cut_edges: usize,
        per_qpu_layers: Vec<usize>,
        refresh_events: usize,
    ) -> Self {
        Self {
            cost,
            schedule,
            problem,
            partition,
            modularity,
            cut_edges,
            per_qpu_layers,
            refresh_events,
        }
    }

    /// Distributed execution time: the schedule makespan in logical
    /// layers.
    #[must_use]
    pub fn execution_time(&self) -> usize {
        self.cost.makespan
    }

    /// Required photon lifetime: `max(τ_local, τ_remote)`
    /// (Definition IV.1).
    #[must_use]
    pub fn required_photon_lifetime(&self) -> usize {
        self.cost.objective()
    }

    /// Local-computation lifetime component.
    #[must_use]
    pub fn tau_local(&self) -> usize {
        self.cost.tau_local
    }

    /// Remote-communication lifetime component.
    #[must_use]
    pub fn tau_remote(&self) -> usize {
        self.cost.tau_remote
    }

    /// The graph partition used.
    #[must_use]
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Modularity of the partition.
    #[must_use]
    pub fn modularity(&self) -> f64 {
        self.modularity
    }

    /// Number of cut edges (= synchronization tasks).
    #[must_use]
    pub fn cut_edges(&self) -> usize {
        self.cut_edges
    }

    /// Execution layers per QPU.
    #[must_use]
    pub fn per_qpu_layers(&self) -> &[usize] {
        &self.per_qpu_layers
    }

    /// Dynamic-refresh events across all QPUs (0 unless enabled).
    #[must_use]
    pub fn refresh_events(&self) -> usize {
        self.refresh_events
    }

    /// The final task schedule.
    #[must_use]
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The scheduling problem instance (for analysis / re-scheduling).
    #[must_use]
    pub fn problem(&self) -> &LayerScheduleProblem {
        &self.problem
    }

    /// Serializes the full artifact — schedule, problem instance,
    /// partition, and every headline metric — with the hand-rolled
    /// binary codec. This is the `Scheduled` stage artifact of
    /// `mbqc-service`: a cache hit on it skips partitioning, mapping,
    /// and scheduling entirely, and the decoded value is bit-identical
    /// to the freshly compiled one (property-tested).
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let schedule = self.schedule.to_bytes();
        let problem = self.problem.to_bytes();
        let partition = self.partition.to_bytes();
        // Three nested blobs (with length prefixes) plus the scalar
        // fields and the per-QPU table; reserving the exact size skips
        // the doubling-growth copies on the wire reply path.
        let cap =
            schedule.len() + problem.len() + partition.len() + 8 * (8 + self.per_qpu_layers.len());
        let mut e = Encoder::with_capacity(cap);
        e.usize(self.cost.tau_local);
        e.usize(self.cost.tau_remote);
        e.usize(self.cost.makespan);
        e.bytes(&schedule);
        e.bytes(&problem);
        e.bytes(&partition);
        e.f64(self.modularity);
        e.usize(self.cut_edges);
        e.usize_slice(&self.per_qpu_layers);
        e.usize(self.refresh_events);
        e.into_bytes()
    }

    /// Decodes an artifact written by [`DistributedSchedule::to_bytes`].
    ///
    /// Every derivable field is cross-checked, not trusted: the
    /// schedule must be feasible for the problem, the stored cost must
    /// equal `problem.evaluate(schedule)`, and the cut-edge count and
    /// per-QPU layer list must match the problem's sync tasks and main
    /// counts — a corrupt artifact must never masquerade as a valid
    /// compilation. (Only `modularity` and `refresh_events` cannot be
    /// recomputed without the pattern and are taken as stored.)
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncated input or any failed
    /// cross-check.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        Self::decode(bytes, true)
    }

    /// Decodes an artifact from a *trusted, integrity-checked* source:
    /// bytes produced by [`DistributedSchedule::to_bytes`] on the far
    /// side of a checksummed transport whose producer already ran the
    /// full validation — concretely, the framed wire replies of the
    /// network front door, where the frame checksum covers transport
    /// corruption and the server materialized (and thereby validated)
    /// the artifact before encoding it. Skips the semantic
    /// cross-checks of [`DistributedSchedule::from_bytes`]
    /// (feasibility, cost re-evaluation, metric agreement, dependency
    /// mirror audit) but none of the structural or range checks, so
    /// arbitrary bytes still decode to a typed [`CodecError`] rather
    /// than a panic. The artifact store and anything reading durable
    /// bytes must keep using `from_bytes`: a lying producer is exactly
    /// what bit-rot looks like.
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncated or structurally invalid
    /// input.
    pub fn from_bytes_trusted(bytes: &[u8]) -> Result<Self, CodecError> {
        Self::decode(bytes, false)
    }

    fn decode(bytes: &[u8], verify: bool) -> Result<Self, CodecError> {
        let mut d = Decoder::new(bytes);
        let cost = ScheduleCost {
            tau_local: d.usize()?,
            tau_remote: d.usize()?,
            makespan: d.usize()?,
        };
        let schedule = Schedule::from_bytes(d.bytes()?)?;
        let problem = if verify {
            LayerScheduleProblem::from_bytes(d.bytes()?)?
        } else {
            LayerScheduleProblem::from_bytes_trusted(d.bytes()?)?
        };
        let partition = Partition::from_bytes(d.bytes()?)?;
        let modularity = d.f64()?;
        let cut_edges = d.usize()?;
        let per_qpu_layers = d.usize_vec()?;
        let refresh_events = d.usize()?;
        d.finish()?;
        if verify {
            if !problem.is_feasible(&schedule) {
                return Err(CodecError::Invalid("schedule infeasible for problem"));
            }
            if problem.evaluate(&schedule) != cost {
                return Err(CodecError::Invalid("stored cost disagrees with schedule"));
            }
            if cut_edges != problem.sync_tasks.len() || per_qpu_layers != problem.main_counts {
                return Err(CodecError::Invalid("stored metrics disagree with problem"));
            }
        }
        Ok(Self {
            cost,
            schedule,
            problem,
            partition,
            modularity,
            cut_edges,
            per_qpu_layers,
            refresh_events,
        })
    }

    /// Validates `bytes` structurally and returns a lazy
    /// [`ScheduledView`] over them. See the view's docs for exactly
    /// what is (and is not) checked up front.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on any structural violation — a strict subset of
    /// the errors [`DistributedSchedule::from_bytes`] reports.
    pub fn view(bytes: &[u8]) -> Result<ScheduledView<'_>, CodecError> {
        ScheduledView::new(bytes)
    }
}

/// A lazy, zero-allocation view over [`DistributedSchedule::to_bytes`]
/// output — the `Scheduled` warm-hit fast path of `mbqc-service`.
///
/// [`ScheduledView::new`] validates the artifact's *structure* in one
/// pass without allocating: the three cost scalars, the three
/// length-prefixed nested blobs (schedule, problem, partition), the
/// headline metrics, the per-QPU layer table, and the absence of
/// trailing bytes. The headline scalars and the per-QPU table are then
/// readable straight off the borrowed bytes — on a memory-mapped
/// artifact a warm hit costs the store checksum plus these pointer
/// fixups, not a full materialization.
///
/// What the view does **not** do up front is decode the nested
/// schedule/problem/partition blobs or run the semantic cross-checks
/// (`is_feasible`, cost re-evaluation, metric agreement) — those
/// require materialized values, so they run in
/// [`materialize`](ScheduledView::materialize), which is exactly
/// [`DistributedSchedule::from_bytes`]. The pinned contract
/// (property-tested against the corruption corpus) is one-directional
/// per layer: whenever `from_bytes` accepts, `new` accepts with
/// bit-identical scalar fields and `materialize` decodes the same
/// value; whenever `new` rejects, `from_bytes` rejects too; and
/// whenever `new` accepts bytes that `from_bytes` rejects, the
/// rejection surfaces from `materialize` with exactly `from_bytes`'s
/// [`CodecError`]. When *both* paths reject, the classifications may
/// differ: the view finishes the outer frame (including the
/// trailing-bytes check) before any nested decode, while the eager
/// decoder interleaves nested blob decodes with the outer walk, so
/// multi-site corruption can surface a different first error on each
/// path.
#[derive(Debug, Clone, Copy)]
pub struct ScheduledView<'a> {
    bytes: &'a [u8],
    cost: ScheduleCost,
    schedule_bytes: &'a [u8],
    problem_bytes: &'a [u8],
    partition_bytes: &'a [u8],
    modularity: f64,
    cut_edges: usize,
    per_qpu_layers: UsizeSliceView<'a>,
    refresh_events: usize,
}

impl<'a> ScheduledView<'a> {
    /// Structurally validates `bytes` and returns the lazy view.
    ///
    /// # Errors
    ///
    /// [`CodecError`] on truncation, corrupt length prefixes, or
    /// trailing bytes.
    pub fn new(bytes: &'a [u8]) -> Result<Self, CodecError> {
        let mut d = Decoder::new(bytes);
        let cost = ScheduleCost {
            tau_local: d.usize()?,
            tau_remote: d.usize()?,
            makespan: d.usize()?,
        };
        let schedule_bytes = d.bytes()?;
        let problem_bytes = d.bytes()?;
        let partition_bytes = d.bytes()?;
        let modularity = d.f64()?;
        let cut_edges = d.usize()?;
        let per_qpu_layers = d.usize_slice_view()?;
        per_qpu_layers.validate_elements()?;
        let refresh_events = d.usize()?;
        d.finish()?;
        Ok(Self {
            bytes,
            cost,
            schedule_bytes,
            problem_bytes,
            partition_bytes,
            modularity,
            cut_edges,
            per_qpu_layers,
            refresh_events,
        })
    }

    /// Local-computation lifetime component.
    #[must_use]
    pub fn tau_local(&self) -> usize {
        self.cost.tau_local
    }

    /// Remote-communication lifetime component.
    #[must_use]
    pub fn tau_remote(&self) -> usize {
        self.cost.tau_remote
    }

    /// Schedule makespan (execution time in logical layers).
    #[must_use]
    pub fn makespan(&self) -> usize {
        self.cost.makespan
    }

    /// Required photon lifetime: `max(τ_local, τ_remote)`.
    #[must_use]
    pub fn required_photon_lifetime(&self) -> usize {
        self.cost.objective()
    }

    /// Modularity of the partition (as stored).
    #[must_use]
    pub fn modularity(&self) -> f64 {
        self.modularity
    }

    /// Number of cut edges (as stored).
    #[must_use]
    pub fn cut_edges(&self) -> usize {
        self.cut_edges
    }

    /// Execution layers per QPU (lazy).
    #[must_use]
    pub fn per_qpu_layers(&self) -> UsizeSliceView<'a> {
        self.per_qpu_layers
    }

    /// Dynamic-refresh events (as stored).
    #[must_use]
    pub fn refresh_events(&self) -> usize {
        self.refresh_events
    }

    /// The nested schedule blob (undecoded).
    #[must_use]
    pub fn schedule_bytes(&self) -> &'a [u8] {
        self.schedule_bytes
    }

    /// The nested problem blob (undecoded).
    #[must_use]
    pub fn problem_bytes(&self) -> &'a [u8] {
        self.problem_bytes
    }

    /// The nested partition blob (undecoded).
    #[must_use]
    pub fn partition_bytes(&self) -> &'a [u8] {
        self.partition_bytes
    }

    /// A lazy [`PartitionView`] over the nested partition blob (this
    /// *does* fully validate the partition, still without allocating).
    ///
    /// # Errors
    ///
    /// The partition's own [`CodecError`] classification.
    pub fn partition_view(&self) -> Result<PartitionView<'a>, CodecError> {
        PartitionView::new(self.partition_bytes)
    }

    /// Fully decodes the artifact — nested blobs and all semantic
    /// cross-checks. Exactly [`DistributedSchedule::from_bytes`] on the
    /// original bytes.
    ///
    /// # Errors
    ///
    /// Whatever `from_bytes` reports for these bytes.
    pub fn materialize(&self) -> Result<DistributedSchedule, CodecError> {
        DistributedSchedule::from_bytes(self.bytes)
    }
}

/// The DC-MBQC compiler: partition → per-QPU compile → layer schedule.
///
/// See the [crate-level documentation](crate) for a quickstart.
#[derive(Debug, Clone)]
pub struct DcMbqcCompiler {
    config: DcMbqcConfig,
}

impl DcMbqcCompiler {
    /// Creates a compiler for the given configuration.
    #[must_use]
    pub fn new(config: DcMbqcConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &DcMbqcConfig {
        &self.config
    }

    /// Transpiles and compiles a circuit end to end.
    ///
    /// # Errors
    ///
    /// Propagates per-QPU compilation failures.
    pub fn compile_circuit(&self, circuit: &Circuit) -> Result<DistributedSchedule, DcMbqcError> {
        self.compile_pattern(&transpile(circuit))
    }

    /// Compiles an MBQC pattern across the configured QPUs.
    ///
    /// Drives a fresh [`CompileSession`] through the staged pipeline
    /// (`Transpiled` → `Partitioned` → `Mapped` → `Scheduled`); use a
    /// session directly to inspect intermediate artifacts or to reuse
    /// workspaces across many compilations.
    ///
    /// # Errors
    ///
    /// Returns [`DcMbqcError::NoFlow`] for patterns without causal flow
    /// and [`DcMbqcError::Compile`] when a QPU's grid cannot host its
    /// subprogram.
    pub fn compile_pattern(&self, pattern: &Pattern) -> Result<DistributedSchedule, DcMbqcError> {
        CompileSession::new(self.config.clone()).compile_pattern(pattern)
    }

    /// Compiles a batch of patterns concurrently over the shared
    /// hardware configuration — the building block of a sharded
    /// compilation service. Results are returned in input order and are
    /// identical to a sequential loop of
    /// [`compile_pattern`](Self::compile_pattern) per element, for
    /// every worker count (`config.batch_workers`; `0` = one per
    /// available core): each worker owns a [`CompileSession`] and
    /// patterns are assigned statically.
    #[must_use]
    pub fn compile_batch(
        &self,
        patterns: &[Pattern],
    ) -> Vec<Result<DistributedSchedule, DcMbqcError>> {
        let workers = resolve_workers(self.config.batch_workers, patterns.len());
        if workers <= 1 {
            let mut session = CompileSession::new(self.config.clone());
            return patterns
                .iter()
                .map(|p| session.compile_pattern(p))
                .collect();
        }
        let mut results: Vec<Option<Result<DistributedSchedule, DcMbqcError>>> =
            (0..patterns.len()).map(|_| None).collect();
        // Strided ownership: worker w compiles patterns w, w + W, …
        // with its own reusable session. Inner stage parallelism
        // (mapping workers, restart probes) is pinned to 1 — the batch
        // already saturates the cores, and nesting per-core pools per
        // worker would oversubscribe the machine. Worker counts never
        // change results, so this is a pure scheduling choice.
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for w in 0..workers {
                let mut config = self.config.clone();
                config.adaptive.probe_workers = 1;
                handles.push(scope.spawn(move || {
                    let mut session = CompileSession::new(config).with_map_workers(1);
                    patterns
                        .iter()
                        .enumerate()
                        .skip(w)
                        .step_by(workers)
                        .map(|(i, p)| (i, session.compile_pattern(p)))
                        .collect::<Vec<_>>()
                }));
            }
            for h in handles {
                for (i, r) in h.join().expect("batch worker panicked") {
                    results[i] = Some(r);
                }
            }
        });
        results
            .into_iter()
            .map(|r| r.expect("every pattern compiled"))
            .collect()
    }

    /// Compiles the whole circuit on a single QPU (the OneQ-style
    /// monolithic baseline) with the same grid and resource state.
    ///
    /// # Errors
    ///
    /// Propagates mapper failures.
    pub fn compile_baseline_circuit(
        &self,
        circuit: &Circuit,
    ) -> Result<BaselineResult, DcMbqcError> {
        self.compile_baseline_pattern(&transpile(circuit))
    }

    /// Single-QPU baseline compilation of a pattern.
    ///
    /// # Errors
    ///
    /// Propagates mapper failures.
    pub fn compile_baseline_pattern(
        &self,
        pattern: &Pattern,
    ) -> Result<BaselineResult, DcMbqcError> {
        let order = placement_order(pattern).ok_or(DcMbqcError::NoFlow)?;
        let mapper = mbqc_compiler::GridMapper::new(self.config.mapper_config(self.config.seed));
        let compiled = mapper
            .compile(pattern.graph(), &order)
            .map_err(|source| DcMbqcError::Compile { qpu: None, source })?;
        let lifetime = compiled.lifetime(pattern.dependency_graph().real_time());
        Ok(BaselineResult::new(compiled, lifetime))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbqc_circuit::bench;
    use mbqc_hardware::{DistributedHardware, ResourceStateKind};

    fn hw(qpus: usize, qubits: usize, kind: ResourceStateKind, kmax: usize) -> DistributedHardware {
        DistributedHardware::builder()
            .num_qpus(qpus)
            .grid_width(bench::grid_size_for(qubits))
            .resource_state(kind)
            .kmax(kmax)
            .build()
    }

    #[test]
    fn qft16_distributed_beats_baseline() {
        let circuit = bench::qft(16);
        let compiler = DcMbqcCompiler::new(DcMbqcConfig::new(hw(
            4,
            16,
            ResourceStateKind::FIVE_STAR,
            4,
        )));
        let dist = compiler.compile_circuit(&circuit).unwrap();
        let base = compiler.compile_baseline_circuit(&circuit).unwrap();
        assert!(dist.execution_time() < base.execution_time());
        assert!(dist.required_photon_lifetime() < base.required_photon_lifetime());
        assert_eq!(dist.partition().k(), 4);
        assert!(dist.cut_edges() > 0);
        assert!(dist.modularity() > 0.0);
    }

    #[test]
    fn eight_qpus_not_slower_than_four() {
        let circuit = bench::vqe(16, 1);
        let mk = |q| {
            DcMbqcCompiler::new(DcMbqcConfig::new(hw(
                q,
                16,
                ResourceStateKind::FOUR_RING,
                4,
            )))
        };
        let four = mk(4).compile_circuit(&circuit).unwrap();
        let eight = mk(8).compile_circuit(&circuit).unwrap();
        assert!(eight.execution_time() <= four.execution_time() + 2);
    }

    #[test]
    fn single_qpu_config_matches_baseline_metrics() {
        let circuit = bench::qft(9);
        let compiler =
            DcMbqcCompiler::new(DcMbqcConfig::new(hw(1, 9, ResourceStateKind::FIVE_STAR, 4)));
        let dist = compiler.compile_circuit(&circuit).unwrap();
        let base = compiler.compile_baseline_circuit(&circuit).unwrap();
        assert_eq!(dist.cut_edges(), 0);
        // The distributed path relabels nodes (induced subgraph), which
        // perturbs greedy tie-breaking; metrics must stay within a few
        // layers of the monolithic run.
        let (d, b) = (dist.execution_time() as f64, base.execution_time() as f64);
        assert!((d - b).abs() / b < 0.2, "single-QPU drift: {d} vs {b}");
    }

    #[test]
    fn schedule_is_feasible_and_consistent() {
        let circuit = bench::rca(8);
        let compiler =
            DcMbqcCompiler::new(DcMbqcConfig::new(hw(4, 8, ResourceStateKind::FIVE_STAR, 4)));
        let dist = compiler.compile_circuit(&circuit).unwrap();
        assert!(dist.problem().is_feasible(dist.schedule()));
        assert_eq!(dist.per_qpu_layers().len(), 4);
        let recomputed = dist.problem().evaluate(dist.schedule());
        assert_eq!(recomputed.objective(), dist.required_photon_lifetime());
    }

    #[test]
    fn bdir_no_worse_than_core_only() {
        let circuit = bench::qft(12);
        let hw4 = hw(4, 12, ResourceStateKind::FIVE_STAR, 4);
        let with_bdir = DcMbqcCompiler::new(DcMbqcConfig::new(hw4))
            .compile_circuit(&circuit)
            .unwrap();
        let core_only = DcMbqcCompiler::new(DcMbqcConfig::new(hw4).without_bdir())
            .compile_circuit(&circuit)
            .unwrap();
        assert!(with_bdir.required_photon_lifetime() <= core_only.required_photon_lifetime());
    }

    #[test]
    fn refresh_reduces_lifetime_reports_events() {
        let circuit = bench::qft(16);
        let hw4 = hw(4, 16, ResourceStateKind::FIVE_STAR, 4);
        let refreshed = DcMbqcCompiler::new(DcMbqcConfig::new(hw4).with_refresh(2))
            .compile_circuit(&circuit)
            .unwrap();
        assert!(refreshed.refresh_events() > 0);
    }

    #[test]
    fn codec_round_trips_full_artifact() {
        let circuit = bench::qft(12);
        let compiler = DcMbqcCompiler::new(DcMbqcConfig::new(hw(
            4,
            12,
            ResourceStateKind::FIVE_STAR,
            4,
        )));
        let dist = compiler.compile_circuit(&circuit).unwrap();
        let back = DistributedSchedule::from_bytes(&dist.to_bytes()).unwrap();
        assert_eq!(back, dist);
        assert!(back.problem().is_feasible(back.schedule()));
        let bytes = dist.to_bytes();
        assert!(DistributedSchedule::from_bytes(&bytes[..bytes.len() - 3]).is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let circuit = bench::vqe(9, 2);
        let hw4 = hw(4, 9, ResourceStateKind::FIVE_STAR, 4);
        let a = DcMbqcCompiler::new(DcMbqcConfig::new(hw4).with_seed(5))
            .compile_circuit(&circuit)
            .unwrap();
        let b = DcMbqcCompiler::new(DcMbqcConfig::new(hw4).with_seed(5))
            .compile_circuit(&circuit)
            .unwrap();
        assert_eq!(a.execution_time(), b.execution_time());
        assert_eq!(a.required_photon_lifetime(), b.required_photon_lifetime());
    }
}
