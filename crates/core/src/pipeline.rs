//! The end-to-end DC-MBQC pipeline (Figure 2 of the paper).

use mbqc_circuit::Circuit;
use mbqc_compiler::{CompiledProgram, CompilerConfig, GridMapper};
use mbqc_graph::NodeId;
use mbqc_partition::{adaptive_partition, modularity::modularity, Partition};
use mbqc_pattern::{transpile::transpile, Pattern};
use mbqc_schedule::{
    bdir, default_priorities, list_schedule, LayerScheduleProblem, LocalStructure, Schedule,
    ScheduleCost, SyncTask,
};

use crate::baseline::{placement_order, BaselineResult};
use crate::config::{DcMbqcConfig, DcMbqcError};

/// The result of distributed compilation: a feasible schedule of
/// execution layers and connection layers across all QPUs, with the
/// paper's two headline metrics.
#[derive(Debug, Clone)]
pub struct DistributedSchedule {
    cost: ScheduleCost,
    schedule: Schedule,
    problem: LayerScheduleProblem,
    partition: Partition,
    modularity: f64,
    cut_edges: usize,
    per_qpu_layers: Vec<usize>,
    refresh_events: usize,
}

impl DistributedSchedule {
    /// Distributed execution time: the schedule makespan in logical
    /// layers.
    #[must_use]
    pub fn execution_time(&self) -> usize {
        self.cost.makespan
    }

    /// Required photon lifetime: `max(τ_local, τ_remote)`
    /// (Definition IV.1).
    #[must_use]
    pub fn required_photon_lifetime(&self) -> usize {
        self.cost.objective()
    }

    /// Local-computation lifetime component.
    #[must_use]
    pub fn tau_local(&self) -> usize {
        self.cost.tau_local
    }

    /// Remote-communication lifetime component.
    #[must_use]
    pub fn tau_remote(&self) -> usize {
        self.cost.tau_remote
    }

    /// The graph partition used.
    #[must_use]
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Modularity of the partition.
    #[must_use]
    pub fn modularity(&self) -> f64 {
        self.modularity
    }

    /// Number of cut edges (= synchronization tasks).
    #[must_use]
    pub fn cut_edges(&self) -> usize {
        self.cut_edges
    }

    /// Execution layers per QPU.
    #[must_use]
    pub fn per_qpu_layers(&self) -> &[usize] {
        &self.per_qpu_layers
    }

    /// Dynamic-refresh events across all QPUs (0 unless enabled).
    #[must_use]
    pub fn refresh_events(&self) -> usize {
        self.refresh_events
    }

    /// The final task schedule.
    #[must_use]
    pub fn schedule(&self) -> &Schedule {
        &self.schedule
    }

    /// The scheduling problem instance (for analysis / re-scheduling).
    #[must_use]
    pub fn problem(&self) -> &LayerScheduleProblem {
        &self.problem
    }
}

/// The DC-MBQC compiler: partition → per-QPU compile → layer schedule.
///
/// See the [crate-level documentation](crate) for a quickstart.
#[derive(Debug, Clone)]
pub struct DcMbqcCompiler {
    config: DcMbqcConfig,
}

impl DcMbqcCompiler {
    /// Creates a compiler for the given configuration.
    #[must_use]
    pub fn new(config: DcMbqcConfig) -> Self {
        Self { config }
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &DcMbqcConfig {
        &self.config
    }

    fn mapper_config(&self, seed: u64) -> CompilerConfig {
        let mut cfg = CompilerConfig::new(
            self.config.hardware.grid_width(),
            self.config.hardware.resource_state(),
        )
        .with_seed(seed)
        .with_boundary_reservation(self.config.boundary_reservation);
        if let Some(d) = self.config.refresh_interval {
            cfg = cfg.with_refresh(d);
        }
        cfg
    }

    /// Transpiles and compiles a circuit end to end.
    ///
    /// # Errors
    ///
    /// Propagates per-QPU compilation failures.
    pub fn compile_circuit(&self, circuit: &Circuit) -> Result<DistributedSchedule, DcMbqcError> {
        self.compile_pattern(&transpile(circuit))
    }

    /// Compiles an MBQC pattern across the configured QPUs.
    ///
    /// # Errors
    ///
    /// Returns [`DcMbqcError::NoFlow`] for patterns without causal flow
    /// and [`DcMbqcError::Compile`] when a QPU's grid cannot host its
    /// subprogram.
    pub fn compile_pattern(&self, pattern: &Pattern) -> Result<DistributedSchedule, DcMbqcError> {
        let graph = pattern.graph();
        let order = placement_order(pattern).ok_or(DcMbqcError::NoFlow)?;
        let k = self.config.hardware.num_qpus();

        // --- Stage 1: adaptive graph partitioning (Algorithm 2) --------
        // Balance *workload*, not head-count: a photon's grid work is
        // one placement plus its share of fusions, so partitioning
        // weights each node by 2 + degree. (Plain node balance lets the
        // dense hub core of fully-entangled programs land on one QPU:
        // node-balanced, edge-starved everywhere else.)
        let mut weighted = graph.clone();
        for u in graph.nodes() {
            weighted.set_node_weight(u, 2 + graph.degree(u) as i64);
        }
        let mut adaptive_cfg = self.config.adaptive;
        adaptive_cfg.k = k;
        adaptive_cfg.seed = self.config.seed;
        let adaptive = adaptive_partition(&weighted, &adaptive_cfg);
        let partition = adaptive.partition;
        let q_mod = modularity(graph, &partition);

        // --- Stage 2: per-QPU compilation (parallel) -------------------
        // Per part: global nodes in placement order.
        let mut part_nodes: Vec<Vec<NodeId>> = vec![Vec::new(); k];
        for &u in &order {
            part_nodes[partition.part_of(u)].push(u);
        }
        let subproblems: Vec<(mbqc_graph::Graph, Vec<NodeId>)> = part_nodes
            .iter()
            .map(|nodes| {
                let (sub, _) = graph.induced_subgraph(nodes);
                (sub, nodes.clone())
            })
            .collect();

        let mut compiled: Vec<Option<CompiledProgram>> = (0..k).map(|_| None).collect();
        let mut errors: Vec<Option<DcMbqcError>> = (0..k).map(|_| None).collect();
        std::thread::scope(|scope| {
            let mut handles = Vec::new();
            for (qpu, (sub, _)) in subproblems.iter().enumerate() {
                let mapper = GridMapper::new(self.mapper_config(self.config.seed ^ (qpu as u64)));
                handles.push(scope.spawn(move || {
                    let local_order: Vec<NodeId> = sub.nodes().collect();
                    (qpu, mapper.compile(sub, &local_order))
                }));
            }
            for h in handles {
                let (qpu, result) = h.join().expect("compile worker panicked");
                match result {
                    Ok(c) => compiled[qpu] = Some(c),
                    Err(source) => {
                        errors[qpu] = Some(DcMbqcError::Compile {
                            qpu: Some(qpu),
                            source,
                        });
                    }
                }
            }
        });
        if let Some(e) = errors.into_iter().flatten().next() {
            return Err(e);
        }
        let compiled: Vec<CompiledProgram> = compiled
            .into_iter()
            .map(|c| c.expect("either compiled or errored"))
            .collect();

        // --- Stage 3: assemble the layer scheduling problem -------------
        // Global node → (qpu, storage-epoch layer).
        let n = graph.node_count();
        let mut node_slot = vec![(0usize, 0usize); n];
        for (qpu, (_, globals)) in subproblems.iter().enumerate() {
            for (local, &global) in globals.iter().enumerate() {
                node_slot[global.index()] = (qpu, compiled[qpu].effective_layer[local]);
            }
        }
        // Intra-QPU fusee pairs in global node ids.
        let mut fusee_pairs = Vec::new();
        for (qpu, (_, globals)) in subproblems.iter().enumerate() {
            for pair in &compiled[qpu].fusee_pairs {
                fusee_pairs.push((
                    globals[pair.a.index()].index(),
                    globals[pair.b.index()].index(),
                ));
            }
        }
        // Cut edges → synchronization tasks.
        let sync_tasks: Vec<SyncTask> = partition
            .cut_edges(graph)
            .map(|(u, v, _)| SyncTask {
                a: node_slot[u.index()],
                b: node_slot[v.index()],
            })
            .collect();
        let cut_edges = sync_tasks.len();
        let main_counts: Vec<usize> = compiled.iter().map(|c| c.num_layers).collect();
        let deps = pattern.dependency_graph().real_time().clone();
        let mut problem =
            LayerScheduleProblem::new(main_counts.clone(), sync_tasks, self.config.hardware.kmax())
                .with_local(LocalStructure {
                    node_slot,
                    fusee_pairs,
                    deps,
                });
        if let Some(d) = self.config.refresh_interval {
            // Refresh re-injects any photon (connectors included) after
            // at most `d` stored cycles, capping every lifetime term.
            problem = problem.with_refresh_bound(d);
        }

        // --- Stage 4: layer scheduling (list + BDIR) --------------------
        let init = list_schedule(&problem, &default_priorities(&problem), None);
        let schedule = match &self.config.bdir {
            Some(cfg) => {
                let mut bdir_cfg = *cfg;
                bdir_cfg.seed = self.config.seed;
                bdir(&problem, &init, &bdir_cfg)
            }
            None => init,
        };
        debug_assert!(problem.is_feasible(&schedule));
        let cost = problem.evaluate(&schedule);

        Ok(DistributedSchedule {
            cost,
            schedule,
            problem,
            partition,
            modularity: q_mod,
            cut_edges,
            per_qpu_layers: main_counts,
            refresh_events: compiled.iter().map(|c| c.refresh_events).sum(),
        })
    }

    /// Compiles the whole circuit on a single QPU (the OneQ-style
    /// monolithic baseline) with the same grid and resource state.
    ///
    /// # Errors
    ///
    /// Propagates mapper failures.
    pub fn compile_baseline_circuit(
        &self,
        circuit: &Circuit,
    ) -> Result<BaselineResult, DcMbqcError> {
        self.compile_baseline_pattern(&transpile(circuit))
    }

    /// Single-QPU baseline compilation of a pattern.
    ///
    /// # Errors
    ///
    /// Propagates mapper failures.
    pub fn compile_baseline_pattern(
        &self,
        pattern: &Pattern,
    ) -> Result<BaselineResult, DcMbqcError> {
        let order = placement_order(pattern).ok_or(DcMbqcError::NoFlow)?;
        let mapper = GridMapper::new(self.mapper_config(self.config.seed));
        let compiled = mapper
            .compile(pattern.graph(), &order)
            .map_err(|source| DcMbqcError::Compile { qpu: None, source })?;
        let lifetime = compiled.lifetime(pattern.dependency_graph().real_time());
        Ok(BaselineResult::new(compiled, lifetime))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbqc_circuit::bench;
    use mbqc_hardware::{DistributedHardware, ResourceStateKind};

    fn hw(qpus: usize, qubits: usize, kind: ResourceStateKind, kmax: usize) -> DistributedHardware {
        DistributedHardware::builder()
            .num_qpus(qpus)
            .grid_width(bench::grid_size_for(qubits))
            .resource_state(kind)
            .kmax(kmax)
            .build()
    }

    #[test]
    fn qft16_distributed_beats_baseline() {
        let circuit = bench::qft(16);
        let compiler = DcMbqcCompiler::new(DcMbqcConfig::new(hw(
            4,
            16,
            ResourceStateKind::FIVE_STAR,
            4,
        )));
        let dist = compiler.compile_circuit(&circuit).unwrap();
        let base = compiler.compile_baseline_circuit(&circuit).unwrap();
        assert!(dist.execution_time() < base.execution_time());
        assert!(dist.required_photon_lifetime() < base.required_photon_lifetime());
        assert_eq!(dist.partition().k(), 4);
        assert!(dist.cut_edges() > 0);
        assert!(dist.modularity() > 0.0);
    }

    #[test]
    fn eight_qpus_not_slower_than_four() {
        let circuit = bench::vqe(16, 1);
        let mk = |q| {
            DcMbqcCompiler::new(DcMbqcConfig::new(hw(
                q,
                16,
                ResourceStateKind::FOUR_RING,
                4,
            )))
        };
        let four = mk(4).compile_circuit(&circuit).unwrap();
        let eight = mk(8).compile_circuit(&circuit).unwrap();
        assert!(eight.execution_time() <= four.execution_time() + 2);
    }

    #[test]
    fn single_qpu_config_matches_baseline_metrics() {
        let circuit = bench::qft(9);
        let compiler =
            DcMbqcCompiler::new(DcMbqcConfig::new(hw(1, 9, ResourceStateKind::FIVE_STAR, 4)));
        let dist = compiler.compile_circuit(&circuit).unwrap();
        let base = compiler.compile_baseline_circuit(&circuit).unwrap();
        assert_eq!(dist.cut_edges(), 0);
        // The distributed path relabels nodes (induced subgraph), which
        // perturbs greedy tie-breaking; metrics must stay within a few
        // layers of the monolithic run.
        let (d, b) = (dist.execution_time() as f64, base.execution_time() as f64);
        assert!((d - b).abs() / b < 0.2, "single-QPU drift: {d} vs {b}");
    }

    #[test]
    fn schedule_is_feasible_and_consistent() {
        let circuit = bench::rca(8);
        let compiler =
            DcMbqcCompiler::new(DcMbqcConfig::new(hw(4, 8, ResourceStateKind::FIVE_STAR, 4)));
        let dist = compiler.compile_circuit(&circuit).unwrap();
        assert!(dist.problem().is_feasible(dist.schedule()));
        assert_eq!(dist.per_qpu_layers().len(), 4);
        let recomputed = dist.problem().evaluate(dist.schedule());
        assert_eq!(recomputed.objective(), dist.required_photon_lifetime());
    }

    #[test]
    fn bdir_no_worse_than_core_only() {
        let circuit = bench::qft(12);
        let hw4 = hw(4, 12, ResourceStateKind::FIVE_STAR, 4);
        let with_bdir = DcMbqcCompiler::new(DcMbqcConfig::new(hw4))
            .compile_circuit(&circuit)
            .unwrap();
        let core_only = DcMbqcCompiler::new(DcMbqcConfig::new(hw4).without_bdir())
            .compile_circuit(&circuit)
            .unwrap();
        assert!(with_bdir.required_photon_lifetime() <= core_only.required_photon_lifetime());
    }

    #[test]
    fn refresh_reduces_lifetime_reports_events() {
        let circuit = bench::qft(16);
        let hw4 = hw(4, 16, ResourceStateKind::FIVE_STAR, 4);
        let refreshed = DcMbqcCompiler::new(DcMbqcConfig::new(hw4).with_refresh(2))
            .compile_circuit(&circuit)
            .unwrap();
        assert!(refreshed.refresh_events() > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let circuit = bench::vqe(9, 2);
        let hw4 = hw(4, 9, ResourceStateKind::FIVE_STAR, 4);
        let a = DcMbqcCompiler::new(DcMbqcConfig::new(hw4).with_seed(5))
            .compile_circuit(&circuit)
            .unwrap();
        let b = DcMbqcCompiler::new(DcMbqcConfig::new(hw4).with_seed(5))
            .compile_circuit(&circuit)
            .unwrap();
        assert_eq!(a.execution_time(), b.execution_time());
        assert_eq!(a.required_photon_lifetime(), b.required_photon_lifetime());
    }
}
