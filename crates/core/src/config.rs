//! Framework configuration and errors.

use std::fmt;

use mbqc_compiler::{CompileError, CompilerConfig};
use mbqc_hardware::{DistributedHardware, InterconnectTopology, ResourceStateKind};
use mbqc_partition::AdaptiveConfig;
use mbqc_schedule::BdirConfig;
use mbqc_util::codec::{CodecError, Decoder};
use mbqc_util::Encoder;

/// The pipeline stage a configuration fingerprint is scoped to (see
/// [`DcMbqcConfig::stage_fingerprint_bytes`]).
///
/// Stages are cumulative: each one's fingerprint covers every
/// configuration field that can influence it *or any earlier stage*, so
/// equal fingerprints guarantee bit-identical artifacts up to that
/// stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum PipelineStage {
    /// Adaptive graph partitioning (Algorithm 2).
    Partition,
    /// Per-QPU grid mapping.
    Map,
    /// Layer scheduling (list scheduling + BDIR).
    Schedule,
}

impl PipelineStage {
    /// Human-readable stage name, used by telemetry events and trace
    /// export.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            PipelineStage::Partition => "partition",
            PipelineStage::Map => "map",
            PipelineStage::Schedule => "schedule",
        }
    }
}

/// Configuration of the full DC-MBQC pipeline.
///
/// Defaults follow the paper's evaluation setup (Section V-A):
/// adaptive partitioning with `ε_Q = 0.01`, `γ = 1.02`, `α_max = 1.5`;
/// BDIR with `T₀ = 10`, cooling `0.95`, `I_max = 20`.
///
/// # Examples
///
/// ```
/// use dc_mbqc::DcMbqcConfig;
/// use mbqc_hardware::DistributedHardware;
///
/// let hw = DistributedHardware::builder().num_qpus(8).build();
/// let cfg = DcMbqcConfig::new(hw).without_bdir();
/// assert!(cfg.bdir.is_none());
/// ```
#[derive(Debug, Clone)]
pub struct DcMbqcConfig {
    /// Target hardware.
    pub hardware: DistributedHardware,
    /// Adaptive partitioning parameters (Algorithm 2); `k` is always
    /// overridden with the hardware's QPU count.
    pub adaptive: AdaptiveConfig,
    /// BDIR parameters (Algorithm 3); `None` runs list scheduling only
    /// (the "DC-MBQC (Core)" configuration of Figure 10).
    pub bdir: Option<BdirConfig>,
    /// OneAdapt-style dynamic refresh bound for the per-QPU compiler.
    pub refresh_interval: Option<usize>,
    /// Reserve each QPU's grid perimeter as communication interface
    /// (Table V protocol).
    pub boundary_reservation: bool,
    /// Master seed: derives partitioning, mapping, and scheduling seeds.
    pub seed: u64,
    /// Worker threads for [`compile_batch`] (`0` = one per available
    /// core). Results are identical for every worker count.
    ///
    /// [`compile_batch`]: crate::DcMbqcCompiler::compile_batch
    pub batch_workers: usize,
}

impl DcMbqcConfig {
    /// Paper-default configuration for the given hardware.
    #[must_use]
    pub fn new(hardware: DistributedHardware) -> Self {
        Self {
            adaptive: AdaptiveConfig::new(hardware.num_qpus()),
            hardware,
            bdir: Some(BdirConfig::default()),
            refresh_interval: None,
            boundary_reservation: false,
            seed: 42,
            batch_workers: 0,
        }
    }

    /// The per-QPU grid-mapper configuration this pipeline config
    /// implies, for the given mapping seed.
    #[must_use]
    pub fn mapper_config(&self, seed: u64) -> CompilerConfig {
        let mut cfg =
            CompilerConfig::new(self.hardware.grid_width(), self.hardware.resource_state())
                .with_seed(seed)
                .with_boundary_reservation(self.boundary_reservation);
        if let Some(d) = self.refresh_interval {
            cfg = cfg.with_refresh(d);
        }
        cfg
    }

    /// Disables the BDIR pass (list scheduling only).
    #[must_use]
    pub fn without_bdir(mut self) -> Self {
        self.bdir = None;
        self
    }

    /// Sets the master seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Enables OneAdapt-style dynamic refresh in the per-QPU compiler.
    #[must_use]
    pub fn with_refresh(mut self, interval: usize) -> Self {
        self.refresh_interval = Some(interval);
        self
    }

    /// Enables boundary reservation on every QPU grid.
    #[must_use]
    pub fn with_boundary_reservation(mut self, on: bool) -> Self {
        self.boundary_reservation = on;
        self
    }

    /// Sets the maximum imbalance factor `α_max` of the partitioner
    /// (the Figure 9 sweep).
    #[must_use]
    pub fn with_alpha_max(mut self, alpha_max: f64) -> Self {
        self.adaptive.alpha_max = alpha_max;
        self
    }

    /// Sets the partitioner's restart-probe worker count (`0` = auto).
    /// Worker count never changes results — only wall-clock time.
    #[must_use]
    pub fn with_probe_workers(mut self, workers: usize) -> Self {
        self.adaptive.probe_workers = workers;
        self
    }

    /// Sets the batch-compilation worker count (`0` = auto). Worker
    /// count never changes results — only wall-clock time.
    #[must_use]
    pub fn with_batch_workers(mut self, workers: usize) -> Self {
        self.batch_workers = workers;
        self
    }

    /// A stable byte rendering of every configuration field that can
    /// influence the given stage (or an earlier one) — the
    /// configuration half of the content-addressed artifact keys in
    /// `mbqc-service`.
    ///
    /// Worker-count knobs (`batch_workers`, `adaptive.probe_workers`)
    /// are deliberately *excluded*: they never change results
    /// (property-tested), so artifacts cached under one worker count
    /// must be hits under every other. `adaptive.k` and `adaptive.seed`
    /// are excluded too — the pipeline overrides them with the
    /// hardware's QPU count and the master seed. Everything else,
    /// including fields the current stage implementations ignore (e.g.
    /// the interconnect topology for scheduling), is included so a
    /// future stage change cannot silently serve stale artifacts.
    #[must_use]
    pub fn stage_fingerprint_bytes(&self, stage: PipelineStage) -> Vec<u8> {
        let mut e = Encoder::new();
        e.u8(match stage {
            PipelineStage::Partition => 0,
            PipelineStage::Map => 1,
            PipelineStage::Schedule => 2,
        });
        // Partition-relevant fields (feed every stage).
        e.u64(self.seed);
        e.usize(self.hardware.num_qpus());
        e.f64(self.adaptive.epsilon_q);
        e.f64(self.adaptive.gamma);
        e.f64(self.adaptive.alpha_max);
        e.usize(self.adaptive.max_iters);
        if stage >= PipelineStage::Map {
            e.usize(self.hardware.grid_width());
            let (tag, photons) = match self.hardware.resource_state() {
                ResourceStateKind::Ring(p) => (0u8, p),
                ResourceStateKind::Star(p) => (1u8, p),
            };
            e.u8(tag);
            e.usize(photons);
            e.bool(self.boundary_reservation);
            e.opt_usize(self.refresh_interval);
        }
        if stage >= PipelineStage::Schedule {
            e.usize(self.hardware.kmax());
            e.u8(match self.hardware.topology() {
                InterconnectTopology::FullyConnected => 0,
                InterconnectTopology::Line => 1,
                InterconnectTopology::Ring => 2,
            });
            match &self.bdir {
                Some(b) => {
                    e.bool(true);
                    e.f64(b.t0);
                    e.f64(b.cooling);
                    e.usize(b.max_iters);
                    // b.seed is overridden with the master seed.
                }
                None => e.bool(false),
            }
        }
        e.into_bytes()
    }

    /// Serializes the complete configuration for the wire (see
    /// `mbqc-net`), covering *every* field — worker-count knobs
    /// included, because a remote client's request must reproduce the
    /// exact config an in-process caller would have passed.
    ///
    /// This is distinct from [`DcMbqcConfig::stage_fingerprint_bytes`],
    /// which deliberately omits result-neutral fields and stays frozen
    /// so cache keys never shift.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        // Hardware: the five builder fields determine the value.
        e.usize(self.hardware.num_qpus());
        e.usize(self.hardware.grid_width());
        let (tag, photons) = match self.hardware.resource_state() {
            ResourceStateKind::Ring(p) => (0u8, p),
            ResourceStateKind::Star(p) => (1u8, p),
        };
        e.u8(tag);
        e.usize(photons);
        e.usize(self.hardware.kmax());
        e.u8(match self.hardware.topology() {
            InterconnectTopology::FullyConnected => 0,
            InterconnectTopology::Line => 1,
            InterconnectTopology::Ring => 2,
        });
        // Adaptive partitioning.
        e.usize(self.adaptive.k);
        e.f64(self.adaptive.epsilon_q);
        e.f64(self.adaptive.gamma);
        e.f64(self.adaptive.alpha_max);
        e.u64(self.adaptive.seed);
        e.usize(self.adaptive.max_iters);
        e.usize(self.adaptive.probe_workers);
        // BDIR.
        match &self.bdir {
            Some(b) => {
                e.bool(true);
                e.f64(b.t0);
                e.f64(b.cooling);
                e.usize(b.max_iters);
                e.u64(b.seed);
            }
            None => e.bool(false),
        }
        // Pipeline scalars.
        e.opt_usize(self.refresh_interval);
        e.bool(self.boundary_reservation);
        e.u64(self.seed);
        e.usize(self.batch_workers);
        e.into_bytes()
    }

    /// Decodes a configuration written by [`DcMbqcConfig::to_bytes`].
    ///
    /// # Errors
    ///
    /// Returns [`CodecError`] on truncation or an unknown enum tag.
    /// Decoded values round-trip exactly: f64 fields by bit pattern,
    /// so stage fingerprints — and therefore cache keys — agree with
    /// the sender's.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, CodecError> {
        let mut d = Decoder::new(bytes);
        let num_qpus = d.usize()?;
        let grid_width = d.usize()?;
        let rs_tag = d.u8()?;
        let photons = d.usize()?;
        let resource_state = match rs_tag {
            0 => ResourceStateKind::Ring(photons),
            1 => ResourceStateKind::Star(photons),
            _ => return Err(CodecError::Invalid("resource state tag")),
        };
        let kmax = d.usize()?;
        let topology = match d.u8()? {
            0 => InterconnectTopology::FullyConnected,
            1 => InterconnectTopology::Line,
            2 => InterconnectTopology::Ring,
            _ => return Err(CodecError::Invalid("topology tag")),
        };
        // The builder panics on zero parameters; these bytes may come
        // from an untrusted peer, so pre-validate into a typed error.
        if num_qpus == 0 || grid_width == 0 || kmax == 0 || photons == 0 {
            return Err(CodecError::Invalid("hardware parameter must be positive"));
        }
        let hardware = DistributedHardware::builder()
            .num_qpus(num_qpus)
            .grid_width(grid_width)
            .resource_state(resource_state)
            .kmax(kmax)
            .topology(topology)
            .build();
        let adaptive = AdaptiveConfig {
            k: d.usize()?,
            epsilon_q: d.f64()?,
            gamma: d.f64()?,
            alpha_max: d.f64()?,
            seed: d.u64()?,
            max_iters: d.usize()?,
            probe_workers: d.usize()?,
        };
        let bdir = if d.bool()? {
            Some(BdirConfig {
                t0: d.f64()?,
                cooling: d.f64()?,
                max_iters: d.usize()?,
                seed: d.u64()?,
            })
        } else {
            None
        };
        let refresh_interval = d.opt_usize()?;
        let boundary_reservation = d.bool()?;
        let seed = d.u64()?;
        let batch_workers = d.usize()?;
        d.finish()?;
        Ok(Self {
            hardware,
            adaptive,
            bdir,
            refresh_interval,
            boundary_reservation,
            seed,
            batch_workers,
        })
    }
}

/// Errors of the DC-MBQC pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DcMbqcError {
    /// A per-QPU compilation failed.
    Compile {
        /// QPU whose subprogram failed (`None` for the baseline).
        qpu: Option<usize>,
        /// Underlying mapper error.
        source: CompileError,
    },
    /// The pattern has no causal flow (cannot order placements).
    NoFlow,
}

impl fmt::Display for DcMbqcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DcMbqcError::Compile {
                qpu: Some(q),
                source,
            } => {
                write!(f, "compilation failed on QPU {q}: {source}")
            }
            DcMbqcError::Compile { qpu: None, source } => {
                write!(f, "baseline compilation failed: {source}")
            }
            DcMbqcError::NoFlow => write!(f, "pattern has no causal flow"),
        }
    }
}

impl std::error::Error for DcMbqcError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DcMbqcError::Compile { source, .. } => Some(source),
            DcMbqcError::NoFlow => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let hw = DistributedHardware::builder().num_qpus(4).build();
        let cfg = DcMbqcConfig::new(hw);
        assert_eq!(cfg.adaptive.k, 4);
        assert!((cfg.adaptive.epsilon_q - 0.01).abs() < 1e-12);
        assert!((cfg.adaptive.gamma - 1.02).abs() < 1e-12);
        assert!((cfg.adaptive.alpha_max - 1.5).abs() < 1e-12);
        let b = cfg.bdir.unwrap();
        assert!((b.t0 - 10.0).abs() < 1e-12);
        assert!((b.cooling - 0.95).abs() < 1e-12);
        assert_eq!(b.max_iters, 20);
    }

    #[test]
    fn builder_methods() {
        let hw = DistributedHardware::builder().build();
        let cfg = DcMbqcConfig::new(hw)
            .with_seed(7)
            .with_refresh(20)
            .with_boundary_reservation(true)
            .with_alpha_max(2.0);
        assert_eq!(cfg.seed, 7);
        assert_eq!(cfg.refresh_interval, Some(20));
        assert!(cfg.boundary_reservation);
        assert!((cfg.adaptive.alpha_max - 2.0).abs() < 1e-12);
    }

    #[test]
    fn stage_fingerprints_scope_config_fields() {
        let hw = DistributedHardware::builder().num_qpus(4).build();
        let base = DcMbqcConfig::new(hw);
        // Worker counts never affect any stage's fingerprint.
        let workers = base.clone().with_batch_workers(7).with_probe_workers(3);
        for stage in [
            PipelineStage::Partition,
            PipelineStage::Map,
            PipelineStage::Schedule,
        ] {
            assert_eq!(
                base.stage_fingerprint_bytes(stage),
                workers.stage_fingerprint_bytes(stage),
                "{stage:?}"
            );
        }
        // BDIR only affects the scheduling stage.
        let no_bdir = base.clone().without_bdir();
        assert_eq!(
            base.stage_fingerprint_bytes(PipelineStage::Partition),
            no_bdir.stage_fingerprint_bytes(PipelineStage::Partition)
        );
        assert_eq!(
            base.stage_fingerprint_bytes(PipelineStage::Map),
            no_bdir.stage_fingerprint_bytes(PipelineStage::Map)
        );
        assert_ne!(
            base.stage_fingerprint_bytes(PipelineStage::Schedule),
            no_bdir.stage_fingerprint_bytes(PipelineStage::Schedule)
        );
        // Refresh reaches mapping but not partitioning; the seed
        // reaches everything.
        let refreshed = base.clone().with_refresh(4);
        assert_eq!(
            base.stage_fingerprint_bytes(PipelineStage::Partition),
            refreshed.stage_fingerprint_bytes(PipelineStage::Partition)
        );
        assert_ne!(
            base.stage_fingerprint_bytes(PipelineStage::Map),
            refreshed.stage_fingerprint_bytes(PipelineStage::Map)
        );
        let reseeded = base.clone().with_seed(7);
        assert_ne!(
            base.stage_fingerprint_bytes(PipelineStage::Partition),
            reseeded.stage_fingerprint_bytes(PipelineStage::Partition)
        );
        // Stages are distinguished even for identical configs.
        assert_ne!(
            base.stage_fingerprint_bytes(PipelineStage::Partition),
            base.stage_fingerprint_bytes(PipelineStage::Map)
        );
    }

    #[test]
    fn wire_codec_round_trips() {
        let hw = DistributedHardware::builder()
            .num_qpus(3)
            .grid_width(9)
            .resource_state(ResourceStateKind::Ring(6))
            .kmax(2)
            .topology(InterconnectTopology::Line)
            .build();
        let cfg = DcMbqcConfig::new(hw)
            .with_seed(99)
            .with_refresh(5)
            .with_boundary_reservation(true)
            .with_alpha_max(2.5)
            .with_probe_workers(3)
            .with_batch_workers(2);
        let back = DcMbqcConfig::from_bytes(&cfg.to_bytes()).unwrap();
        assert_eq!(back.seed, cfg.seed);
        assert_eq!(back.refresh_interval, cfg.refresh_interval);
        assert_eq!(back.boundary_reservation, cfg.boundary_reservation);
        assert_eq!(back.batch_workers, cfg.batch_workers);
        assert_eq!(back.hardware.num_qpus(), 3);
        assert_eq!(back.hardware.grid_width(), 9);
        assert_eq!(back.hardware.resource_state(), ResourceStateKind::Ring(6));
        assert_eq!(back.hardware.kmax(), 2);
        assert_eq!(back.hardware.topology(), InterconnectTopology::Line);
        // The decoded config keys into the same cache entries.
        for stage in [
            PipelineStage::Partition,
            PipelineStage::Map,
            PipelineStage::Schedule,
        ] {
            assert_eq!(
                back.stage_fingerprint_bytes(stage),
                cfg.stage_fingerprint_bytes(stage),
                "{stage:?}"
            );
        }
        // No-BDIR configurations round-trip too.
        let no_bdir = cfg.without_bdir();
        assert!(DcMbqcConfig::from_bytes(&no_bdir.to_bytes())
            .unwrap()
            .bdir
            .is_none());
    }

    #[test]
    fn wire_codec_rejects_hostile_bytes() {
        let hw = DistributedHardware::builder().build();
        let bytes = DcMbqcConfig::new(hw).to_bytes();
        assert!(DcMbqcConfig::from_bytes(&bytes[..bytes.len() - 1]).is_err());
        assert!(DcMbqcConfig::from_bytes(&[]).is_err());
        // Zeroed hardware parameters are a typed error, not a panic.
        let mut zeroed = bytes.clone();
        zeroed[..8].copy_from_slice(&0u64.to_le_bytes());
        assert_eq!(
            DcMbqcConfig::from_bytes(&zeroed).unwrap_err(),
            CodecError::Invalid("hardware parameter must be positive")
        );
        // An unknown enum tag is rejected.
        let mut bad_tag = bytes;
        bad_tag[16] = 9;
        assert!(DcMbqcConfig::from_bytes(&bad_tag).is_err());
    }

    #[test]
    fn error_display_and_source() {
        let e = DcMbqcError::Compile {
            qpu: Some(2),
            source: CompileError::EmptyGrid,
        };
        assert!(e.to_string().contains("QPU 2"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(DcMbqcError::NoFlow.to_string().contains("causal flow"));
    }
}
