//! The stage-task layer over the staged pipeline: per-job stage
//! decomposition and a checkout pool for stage workspaces.
//!
//! A [`CompileSession`](crate::CompileSession) runs one pattern's whole
//! pipeline on its own workspaces. A stage-task *executor* (the
//! `mbqc-service` crate) instead decomposes every job into
//! [`StageKind`] tasks with explicit data dependencies — tracked by a
//! [`StageGraph`] per job — and lets any worker run any ready task:
//! worker A can partition job 2 while worker B schedules job 1. The
//! per-stage workspaces that a session would own are checked out of a
//! shared [`WorkspacePool`] for the duration of one task and returned
//! afterwards, so the buffers still amortize across jobs without being
//! pinned to one worker.
//!
//! Neither layer affects results: stage functions are pure in
//! `(config, input artifact)` and workspaces are scratch only, so any
//! task interleaving over any worker count reproduces
//! [`compile_pattern`](crate::DcMbqcCompiler::compile_pattern) bit for
//! bit (property-tested in `mbqc-service`).

use std::sync::Mutex;

use mbqc_compiler::MapperWorkspace;
use mbqc_partition::KwayWorkspace;
use mbqc_schedule::ScheduleWorkspace;
use mbqc_util::sync::lock;

/// One stage task of a job, in pipeline order. `Transpile` also acts
/// as the job's planning step in executors: it probes the artifact
/// cache deepest-first and fast-forwards the job's [`StageGraph`] past
/// every stage a cached artifact already answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum StageKind {
    /// Flow verification + placement-order derivation.
    Transpile,
    /// Adaptive graph partitioning (Algorithm 2).
    Partition,
    /// Per-QPU grid compilation.
    Map,
    /// Layer scheduling (list scheduling + BDIR).
    Schedule,
}

impl StageKind {
    /// All stages in pipeline order.
    pub const ALL: [StageKind; 4] = [
        StageKind::Transpile,
        StageKind::Partition,
        StageKind::Map,
        StageKind::Schedule,
    ];

    /// The stage that consumes this stage's output (`None` after
    /// scheduling).
    #[must_use]
    pub fn next(self) -> Option<StageKind> {
        match self {
            StageKind::Transpile => Some(StageKind::Partition),
            StageKind::Partition => Some(StageKind::Map),
            StageKind::Map => Some(StageKind::Schedule),
            StageKind::Schedule => None,
        }
    }

    /// Human-readable stage name, used by telemetry events, trace
    /// export, and stats tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            StageKind::Transpile => "transpile",
            StageKind::Partition => "partition",
            StageKind::Map => "map",
            StageKind::Schedule => "schedule",
        }
    }

    /// Position of this stage in [`StageKind::ALL`] — the index used by
    /// per-stage stats arrays (e.g. `ServiceStats::stage_latency` in
    /// `mbqc-service`).
    #[must_use]
    pub fn index(self) -> usize {
        self as usize
    }
}

/// The dependency graph of one job's stage tasks.
///
/// The pipeline's data dependencies form a chain — each stage consumes
/// the previous stage's artifact — so at most one task per job is ever
/// ready. The graph still makes the dependency structure explicit:
/// tasks complete one at a time ([`complete`](StageGraph::complete)),
/// cache hits fast-forward past already-answered stages
/// ([`skip_to`](StageGraph::skip_to)), and a finished (or failed) job
/// has no ready task left.
///
/// # Examples
///
/// ```
/// use dc_mbqc::{StageGraph, StageKind};
///
/// let mut g = StageGraph::new();
/// assert_eq!(g.ready(), Some(StageKind::Transpile));
/// g.complete(StageKind::Transpile);
/// // A cached `Mapped` artifact answers partitioning and mapping:
/// g.skip_to(StageKind::Schedule);
/// assert_eq!(g.ready(), Some(StageKind::Schedule));
/// g.complete(StageKind::Schedule);
/// assert!(g.is_finished());
/// assert_eq!(g.completed(), 2); // only the executed tasks count
/// ```
#[derive(Debug, Clone)]
pub struct StageGraph {
    /// Per-stage completion flags (executed *or* skipped).
    done: [bool; 4],
    /// Tasks that actually executed (skips excluded).
    executed: u32,
    ready: Option<StageKind>,
    /// Set by [`StageGraph::abandon`]: the job was dropped between
    /// tasks instead of running to a result.
    abandoned: bool,
}

impl StageGraph {
    /// A fresh job: every stage pending, `Transpile` ready.
    #[must_use]
    pub fn new() -> Self {
        Self {
            done: [false; 4],
            executed: 0,
            ready: Some(StageKind::Transpile),
            abandoned: false,
        }
    }

    /// The job's unique ready task, if any.
    #[must_use]
    pub fn ready(&self) -> Option<StageKind> {
        self.ready
    }

    /// Marks the ready task as executed; its dependent becomes ready.
    ///
    /// # Panics
    ///
    /// Panics if `kind` is not the ready task (a task executed out of
    /// dependency order is an executor bug, never valid).
    pub fn complete(&mut self, kind: StageKind) {
        assert_eq!(self.ready, Some(kind), "stage task not ready");
        self.done[kind.index()] = true;
        self.executed += 1;
        self.ready = kind.next();
    }

    /// Fast-forwards to `kind`: every earlier pending stage is marked
    /// satisfied *without* counting as executed (a cached artifact
    /// answered it), and `kind` becomes the ready task.
    ///
    /// # Panics
    ///
    /// Panics when fast-forwarding backwards over an already-completed
    /// stage boundary (the chain never re-runs a completed stage).
    pub fn skip_to(&mut self, kind: StageKind) {
        let ready = self.ready.expect("job already finished");
        assert!(ready <= kind, "cannot fast-forward backwards");
        for earlier in StageKind::ALL {
            if earlier < kind {
                self.done[earlier.index()] = true;
            }
        }
        self.ready = Some(kind);
    }

    /// Ends the job early (a terminal cache hit or a failure): no task
    /// is ready any more.
    pub fn finish(&mut self) {
        self.ready = None;
    }

    /// Abandons the job between tasks (a cancellation or an expired
    /// deadline observed at a task boundary): no task is ready any
    /// more, and the remaining stages are left pending — they were
    /// *dropped*, not answered. Identical to [`finish`](Self::finish)
    /// in effect on the ready queue; kept distinct so executors state
    /// their intent and `is_abandoned` can tell a dropped job from a
    /// produced result.
    ///
    /// Abandonment only ever happens *between* tasks — a running stage
    /// is never interrupted (stages stay deterministic), so an
    /// abandoned job holds no checked-out workspace: everything it
    /// borrowed from the [`WorkspacePool`] was already returned when
    /// its last task finished.
    pub fn abandon(&mut self) {
        self.abandoned = self.abandoned || self.ready.is_some();
        self.ready = None;
    }

    /// `true` when the job was dropped between tasks by
    /// [`abandon`](Self::abandon) rather than running to a result.
    #[must_use]
    pub fn is_abandoned(&self) -> bool {
        self.abandoned
    }

    /// `true` when no task is ready (the job produced its result,
    /// failed, or was abandoned).
    #[must_use]
    pub fn is_finished(&self) -> bool {
        self.ready.is_none()
    }

    /// Number of tasks that actually executed (cache-skipped stages
    /// excluded).
    #[must_use]
    pub fn completed(&self) -> u32 {
        self.executed
    }

    /// Pipeline depth: how many of the four stages are already
    /// satisfied (executed *or* answered by a cached artifact). A
    /// deepest-stage-first queue policy orders ready jobs by this —
    /// draining work-in-progress before starting fresh jobs.
    #[must_use]
    pub fn depth(&self) -> u32 {
        self.done.iter().map(|&d| u32::from(d)).sum()
    }
}

impl Default for StageGraph {
    fn default() -> Self {
        Self::new()
    }
}

/// A checkout pool of stage workspaces, shared by every worker of a
/// stage-task executor.
///
/// Each task checks out the workspace its stage needs, runs, and
/// checks it back in; the pool grows to the peak number of concurrent
/// tasks per stage and then stops allocating. Workspaces are scratch
/// only — which one a task gets never influences its result — so the
/// pool needs no fairness or affinity, just a free list. A task that
/// panics must *not* return its workspace (the buffers may be
/// mid-update); instead it [`discard`](WorkspacePool::discard)s it —
/// the workspace is dropped, the accounting is balanced, and the pool
/// re-allocates on the next checkout.
///
/// Mapping workspaces are pooled as bundles (`Vec<MapperWorkspace>`,
/// one entry per mapping worker) because the map stage owns all its
/// workers' scratch for the duration of one task.
///
/// The pool counts outstanding checkouts
/// ([`outstanding`](WorkspacePool::outstanding)): a drained executor —
/// every job in a terminal state, no task running — must read 0, which
/// is exactly the "no workspace leaked on the cancellation/abandon
/// path" invariant the lifecycle property tests pin — and, because
/// panicking tasks discard rather than leak, the invariant holds even
/// under injected task panics (the chaos property tests pin that too).
#[derive(Debug, Default)]
pub struct WorkspacePool {
    kway: Mutex<Vec<KwayWorkspace>>,
    mapper: Mutex<Vec<Vec<MapperWorkspace>>>,
    schedule: Mutex<Vec<ScheduleWorkspace>>,
    /// Checkouts minus checkins, all workspace kinds together.
    outstanding: std::sync::atomic::AtomicUsize,
}

impl WorkspacePool {
    /// An empty pool; workspaces are created on first checkout.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    fn note_checkout(&self) {
        self.outstanding
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    fn note_checkin(&self) {
        let prev = self
            .outstanding
            .fetch_sub(1, std::sync::atomic::Ordering::Relaxed);
        debug_assert!(prev > 0, "workspace checked in twice");
    }

    /// Workspaces currently checked out (any kind). 0 on a drained
    /// executor — panicking tasks [`discard`](Self::discard) their
    /// workspace, so even a panic path balances the count.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.outstanding.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Balances the accounting for a checked-out workspace that will
    /// *not* be returned — its task panicked and the buffers may be
    /// mid-update, so the workspace is dropped by the caller and the
    /// pool re-allocates on the next checkout. Exactly one of
    /// `checkin_*` / `discard` must run per checkout.
    pub fn discard(&self) {
        self.note_checkin();
    }

    /// Checks out a partitioning workspace.
    #[must_use]
    pub fn checkout_kway(&self) -> KwayWorkspace {
        self.note_checkout();
        lock(&self.kway).pop().unwrap_or_default()
    }

    /// Returns a partitioning workspace to the pool.
    pub fn checkin_kway(&self, ws: KwayWorkspace) {
        lock(&self.kway).push(ws);
        self.note_checkin();
    }

    /// Checks out a mapping workspace bundle.
    #[must_use]
    pub fn checkout_mapper(&self) -> Vec<MapperWorkspace> {
        self.note_checkout();
        lock(&self.mapper).pop().unwrap_or_default()
    }

    /// Returns a mapping workspace bundle to the pool.
    pub fn checkin_mapper(&self, ws: Vec<MapperWorkspace>) {
        lock(&self.mapper).push(ws);
        self.note_checkin();
    }

    /// Checks out a scheduling workspace.
    #[must_use]
    pub fn checkout_schedule(&self) -> ScheduleWorkspace {
        self.note_checkout();
        lock(&self.schedule).pop().unwrap_or_default()
    }

    /// Returns a scheduling workspace to the pool.
    pub fn checkin_schedule(&self, ws: ScheduleWorkspace) {
        lock(&self.schedule).push(ws);
        self.note_checkin();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_runs_in_order() {
        let mut g = StageGraph::new();
        for kind in StageKind::ALL {
            assert_eq!(g.ready(), Some(kind));
            assert!(!g.is_finished());
            g.complete(kind);
        }
        assert!(g.is_finished());
        assert_eq!(g.completed(), 4);
    }

    #[test]
    fn skip_to_marks_earlier_stages_without_executing_them() {
        let mut g = StageGraph::new();
        g.complete(StageKind::Transpile);
        g.skip_to(StageKind::Map);
        assert_eq!(g.ready(), Some(StageKind::Map));
        g.complete(StageKind::Map);
        g.complete(StageKind::Schedule);
        assert!(g.is_finished());
        assert_eq!(g.completed(), 3, "partition was skipped, not executed");
    }

    #[test]
    fn finish_ends_the_job_early() {
        let mut g = StageGraph::new();
        g.complete(StageKind::Transpile);
        g.finish();
        assert!(g.is_finished());
        assert!(!g.is_abandoned(), "finish is not abandonment");
        assert_eq!(g.ready(), None);
    }

    #[test]
    fn abandon_drops_pending_stages() {
        let mut g = StageGraph::new();
        g.complete(StageKind::Transpile);
        g.complete(StageKind::Partition);
        assert_eq!(g.depth(), 2);
        g.abandon();
        assert!(g.is_finished());
        assert!(g.is_abandoned());
        assert_eq!(g.ready(), None);
        assert_eq!(g.completed(), 2, "executed tasks keep counting");
        assert_eq!(g.depth(), 2, "abandoned stages are not satisfied");
    }

    #[test]
    fn abandon_after_finish_is_not_abandonment() {
        // The job already produced its result; a late cancel must not
        // relabel it as dropped.
        let mut g = StageGraph::new();
        for kind in StageKind::ALL {
            g.complete(kind);
        }
        g.abandon();
        assert!(!g.is_abandoned());
    }

    #[test]
    fn depth_counts_skips_as_satisfied() {
        let mut g = StageGraph::new();
        assert_eq!(g.depth(), 0);
        g.complete(StageKind::Transpile);
        g.skip_to(StageKind::Schedule);
        assert_eq!(g.depth(), 3, "transpile + two cache-answered stages");
        g.complete(StageKind::Schedule);
        assert_eq!(g.depth(), 4);
    }

    #[test]
    #[should_panic(expected = "not ready")]
    fn out_of_order_completion_panics() {
        let mut g = StageGraph::new();
        g.complete(StageKind::Map);
    }

    #[test]
    fn pool_recycles_workspaces() {
        let pool = WorkspacePool::new();
        let a = pool.checkout_kway();
        pool.checkin_kway(a);
        let _b = pool.checkout_kway(); // recycled, not observable — just must not deadlock
        let m = pool.checkout_mapper();
        assert!(m.is_empty(), "fresh bundle starts empty");
        pool.checkin_mapper(m);
        let s = pool.checkout_schedule();
        pool.checkin_schedule(s);
    }

    #[test]
    fn pool_counts_outstanding_checkouts() {
        let pool = WorkspacePool::new();
        assert_eq!(pool.outstanding(), 0);
        let k = pool.checkout_kway();
        let m = pool.checkout_mapper();
        assert_eq!(pool.outstanding(), 2);
        pool.checkin_mapper(m);
        assert_eq!(pool.outstanding(), 1);
        pool.checkin_kway(k);
        assert_eq!(pool.outstanding(), 0);
        let s = pool.checkout_schedule();
        assert_eq!(pool.outstanding(), 1);
        pool.checkin_schedule(s);
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn discard_balances_a_panicked_checkout() {
        let pool = WorkspacePool::new();
        let ws = pool.checkout_kway();
        assert_eq!(pool.outstanding(), 1);
        // A panicking task drops its workspace instead of returning it…
        drop(ws);
        // …and discards the checkout so the accounting stays balanced.
        pool.discard();
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn pool_survives_a_poisoned_free_list() {
        // A panic while the free-list lock is held (e.g. an allocator
        // failure mid-push) must not wedge every later checkout.
        let pool = WorkspacePool::new();
        let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let _g = pool.kway.lock().unwrap();
            panic!("poison the free list");
        }));
        let ws = pool.checkout_kway();
        pool.checkin_kway(ws);
        assert_eq!(pool.outstanding(), 0);
    }
}
