//! # DC-MBQC
//!
//! A distributed compilation framework for measurement-based quantum
//! computing (MBQC) on photonic hardware — a from-scratch reproduction
//! of the HPCA 2026 paper *"DC-MBQC: A Distributed Compilation
//! Framework for Measurement-Based Quantum Computing"*.
//!
//! Photonic MBQC consumes a large entangled *graph state* with adaptive
//! single-qubit measurements; photons waiting in fiber delay lines are
//! lost at a rate that grows with storage time, so the paper introduces
//! the **required photon lifetime** as the metric a compiler must
//! minimize, and distributes the computation across QPUs to do so. The
//! pipeline implemented here:
//!
//! 1. **Transpile** a circuit to an MBQC pattern
//!    ([`mbqc_pattern::transpile`]) — validated against a statevector
//!    simulator in `mbqc-sim`.
//! 2. **Partition** the computation graph across QPUs with the adaptive
//!    algorithm ([`mbqc_partition::adaptive`], Algorithm 2) balancing
//!    workload against modularity.
//! 3. **Compile** each subgraph on its QPU's RSG grid
//!    ([`mbqc_compiler::GridMapper`]) into execution layers.
//! 4. **Schedule** execution layers and the synchronization tasks
//!    induced by cut edges ([`mbqc_schedule`]), with priority list
//!    scheduling plus BDIR refinement (Algorithm 3), minimizing
//!    `max(τ_local, τ_remote)`.
//!
//! # Quickstart
//!
//! ```
//! use dc_mbqc::{DcMbqcCompiler, DcMbqcConfig};
//! use mbqc_circuit::bench;
//! use mbqc_hardware::{DistributedHardware, ResourceStateKind};
//!
//! let circuit = bench::qft(16);
//! let hw = DistributedHardware::builder()
//!     .num_qpus(4)
//!     .grid_width(bench::grid_size_for(16))
//!     .resource_state(ResourceStateKind::FIVE_STAR)
//!     .kmax(4)
//!     .build();
//! let compiler = DcMbqcCompiler::new(DcMbqcConfig::new(hw));
//! let result = compiler.compile_circuit(&circuit).expect("compiles");
//! let baseline = compiler.compile_baseline_circuit(&circuit).expect("compiles");
//! assert!(result.execution_time() < baseline.execution_time());
//! assert!(result.required_photon_lifetime() < baseline.required_photon_lifetime());
//! ```
//!
//! # Stage artifacts and sessions
//!
//! The pipeline is staged: each step produces a first-class artifact
//! ([`Transpiled`] → [`Partitioned`] → [`Mapped`] → [`Scheduled`]) that
//! can be inspected, stored, or re-entered, and a [`CompileSession`]
//! owns the reusable workspaces of every stage so repeated compilations
//! stop re-allocating. `compile_pattern` is exactly this chain run end
//! to end (property-tested to be bit-identical).
//!
//! ```
//! use dc_mbqc::{CompileSession, DcMbqcConfig, Transpiled};
//! use mbqc_circuit::bench;
//! use mbqc_hardware::{DistributedHardware, ResourceStateKind};
//! use mbqc_pattern::transpile::transpile;
//!
//! let hw = DistributedHardware::builder()
//!     .num_qpus(4)
//!     .grid_width(bench::grid_size_for(16))
//!     .resource_state(ResourceStateKind::FIVE_STAR)
//!     .kmax(4)
//!     .build();
//! let mut session = CompileSession::new(DcMbqcConfig::new(hw));
//!
//! let pattern = transpile(&bench::qft(16));
//! let transpiled = Transpiled::new(&pattern).expect("has causal flow");
//! let partitioned = session.partition(transpiled);
//! // Every stage is inspectable before committing to the next one:
//! assert_eq!(partitioned.partition().k(), 4);
//! assert!(partitioned.modularity() > 0.0);
//! let mapped = session.map(partitioned).expect("QPU grids fit");
//! assert_eq!(mapped.programs().len(), 4);
//! let scheduled = session.schedule(mapped);
//! assert!(scheduled.problem().is_feasible(scheduled.schedule()));
//! ```
//!
//! # Batch compilation
//!
//! [`DcMbqcCompiler::compile_batch`] compiles many patterns
//! concurrently over the shared hardware configuration — the building
//! block of a compilation service. Results are in input order and
//! identical to a sequential `compile_pattern` loop for every worker
//! count. For finer-grained scheduling, [`crate::stage_graph`] exposes
//! the pipeline as *stage tasks*: a [`StageGraph`] tracks one job's
//! stage dependencies, a [`WorkspacePool`] lends out per-stage
//! workspaces, and the free stage functions ([`partition_stage`],
//! [`map_stage`], [`schedule_stage`]) run any stage on any worker.
//! (The `mbqc-service` crate builds the full service on top: a
//! priority-aware stage-task executor over a content-addressed
//! stage-artifact cache keyed by [`Pattern::content_bytes`] and
//! [`DcMbqcConfig::stage_fingerprint_bytes`].)
//!
//! [`Pattern::content_bytes`]: mbqc_pattern::Pattern::content_bytes
//!
//! ```
//! use dc_mbqc::{DcMbqcCompiler, DcMbqcConfig};
//! use mbqc_circuit::bench;
//! use mbqc_hardware::{DistributedHardware, ResourceStateKind};
//! use mbqc_pattern::transpile::transpile;
//!
//! let hw = DistributedHardware::builder()
//!     .num_qpus(2)
//!     .grid_width(bench::grid_size_for(10))
//!     .resource_state(ResourceStateKind::FIVE_STAR)
//!     .kmax(4)
//!     .build();
//! let compiler = DcMbqcCompiler::new(DcMbqcConfig::new(hw));
//! let patterns: Vec<_> = [8, 9, 10].map(|n| transpile(&bench::qft(n))).into_iter().collect();
//! let results = compiler.compile_batch(&patterns);
//! assert_eq!(results.len(), 3);
//! assert!(results.iter().all(Result::is_ok));
//! ```

pub mod baseline;
pub mod config;
pub mod pipeline;
pub mod report;
pub mod session;
pub mod stage_graph;

pub use baseline::BaselineResult;
pub use config::{DcMbqcConfig, DcMbqcError, PipelineStage};
pub use pipeline::{DcMbqcCompiler, DistributedSchedule, ScheduledView};
pub use report::ComparisonReport;
pub use session::{
    map_stage, partition_stage, schedule_stage, CompileSession, Mapped, Partitioned,
    PartitionedCache, Scheduled, Transpiled,
};
pub use stage_graph::{StageGraph, StageKind, WorkspacePool};
