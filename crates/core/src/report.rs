//! Baseline-vs-distributed comparison reports (the rows of
//! Tables III–V).

use crate::baseline::BaselineResult;
use crate::pipeline::DistributedSchedule;

/// One comparison row: a program compiled both monolithically and
/// distributed, with the paper's improvement factors.
#[derive(Debug, Clone, PartialEq)]
pub struct ComparisonReport {
    /// Program label, e.g. `"QFT-36"`.
    pub program: String,
    /// Baseline execution time (layers).
    pub baseline_exec: usize,
    /// Distributed execution time (layers).
    pub our_exec: usize,
    /// Baseline required photon lifetime.
    pub baseline_lifetime: usize,
    /// Distributed required photon lifetime.
    pub our_lifetime: usize,
}

impl ComparisonReport {
    /// Builds a report from the two compilation results.
    #[must_use]
    pub fn new(
        program: impl Into<String>,
        baseline: &BaselineResult,
        distributed: &DistributedSchedule,
    ) -> Self {
        Self {
            program: program.into(),
            baseline_exec: baseline.execution_time(),
            our_exec: distributed.execution_time(),
            baseline_lifetime: baseline.required_photon_lifetime(),
            our_lifetime: distributed.required_photon_lifetime(),
        }
    }

    /// Execution-time improvement factor `baseline / ours`.
    #[must_use]
    pub fn exec_factor(&self) -> f64 {
        ratio(self.baseline_exec, self.our_exec)
    }

    /// Lifetime improvement factor `baseline / ours`.
    #[must_use]
    pub fn lifetime_factor(&self) -> f64 {
        ratio(self.baseline_lifetime, self.our_lifetime)
    }

    /// Formats the row in Table III/IV order: program, baseline exec,
    /// our exec, factor, baseline lifetime, our lifetime, factor.
    #[must_use]
    pub fn table_row(&self) -> Vec<String> {
        vec![
            self.program.clone(),
            self.baseline_exec.to_string(),
            self.our_exec.to_string(),
            format!("{:.2}", self.exec_factor()),
            self.baseline_lifetime.to_string(),
            self.our_lifetime.to_string(),
            format!("{:.2}", self.lifetime_factor()),
        ]
    }
}

fn ratio(baseline: usize, ours: usize) -> f64 {
    if ours == 0 {
        if baseline == 0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        baseline as f64 / ours as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> ComparisonReport {
        ComparisonReport {
            program: "QFT-36".into(),
            baseline_exec: 364,
            our_exec: 101,
            baseline_lifetime: 333,
            our_lifetime: 81,
        }
    }

    #[test]
    fn factors() {
        let r = report();
        assert!((r.exec_factor() - 3.60).abs() < 0.01);
        assert!((r.lifetime_factor() - 4.11).abs() < 0.01);
    }

    #[test]
    fn zero_handling() {
        let mut r = report();
        r.our_exec = 0;
        assert!(r.exec_factor().is_infinite());
        r.baseline_exec = 0;
        assert_eq!(r.exec_factor(), 1.0);
    }

    #[test]
    fn row_format() {
        let row = report().table_row();
        assert_eq!(row.len(), 7);
        assert_eq!(row[0], "QFT-36");
        assert_eq!(row[3], "3.60");
        assert_eq!(row[6], "4.11");
    }
}
