//! The monolithic single-QPU baseline (OneQ-style compilation).

use mbqc_compiler::{CompiledProgram, LifetimeReport};
use mbqc_pattern::Pattern;

/// Result of compiling a whole program on one QPU.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    compiled: CompiledProgram,
    lifetime: LifetimeReport,
}

impl BaselineResult {
    /// Wraps a compiled program with its lifetime report.
    #[must_use]
    pub fn new(compiled: CompiledProgram, lifetime: LifetimeReport) -> Self {
        Self { compiled, lifetime }
    }

    /// Execution time in logical layers.
    #[must_use]
    pub fn execution_time(&self) -> usize {
        self.compiled.execution_time()
    }

    /// Required photon lifetime (Algorithm 1).
    #[must_use]
    pub fn required_photon_lifetime(&self) -> usize {
        self.lifetime.photon_lifetime()
    }

    /// Lifetime breakdown.
    #[must_use]
    pub fn lifetime(&self) -> LifetimeReport {
        self.lifetime
    }

    /// The underlying compiled program (layers, fusions, placements).
    #[must_use]
    pub fn compiled(&self) -> &CompiledProgram {
        &self.compiled
    }
}

/// Derives the placement order of a pattern: a topological order of its
/// flow constraints covering *all* nodes (outputs included).
///
/// Returns `None` when the pattern has no causal flow.
#[must_use]
pub fn placement_order(pattern: &Pattern) -> Option<Vec<mbqc_graph::NodeId>> {
    pattern.flow_constraints().topological_sort()
}

#[cfg(test)]
mod tests {
    use super::*;
    use mbqc_circuit::bench;
    use mbqc_pattern::transpile::transpile;

    #[test]
    fn placement_order_covers_all_nodes() {
        let p = transpile(&bench::qft(5));
        let order = placement_order(&p).unwrap();
        assert_eq!(order.len(), p.node_count());
    }
}
