//! The staged compilation pipeline: explicit stage artifacts driven by a
//! reusable [`CompileSession`].
//!
//! The Figure-2 pipeline is decomposed into first-class artifacts,
//!
//! > [`Transpiled`] → [`Partitioned`] → [`Mapped`] → [`Scheduled`]
//!
//! each independently constructible and inspectable: diagnostics can
//! stop after any stage, and re-entry (e.g. re-scheduling a mapped
//! program, or injecting an externally computed partition) starts from
//! the matching artifact instead of re-running the whole driver. The
//! session owns the reusable workspaces of every stage — the
//! partitioner's coarsening buffers, one mapper workspace per mapping
//! worker, and the scheduler's ready-queue scratch — so repeated
//! compilations stop re-allocating.
//!
//! [`DcMbqcCompiler::compile_pattern`](crate::DcMbqcCompiler::compile_pattern)
//! is a thin wrapper that drives a fresh session through all four
//! stages; the staged path is pinned bit-identical to it by property
//! tests.

use mbqc_compiler::{CompiledProgram, GridMapper, MapperWorkspace};
use mbqc_graph::{CsrGraph, Graph, NodeId};
use mbqc_partition::adaptive::AdaptiveResult;
use mbqc_partition::modularity::modularity_csr;
use mbqc_partition::{adaptive_partition_csr_with, resolve_workers, KwayWorkspace, Partition};
use mbqc_pattern::Pattern;
use mbqc_schedule::{
    bdir_with, default_priorities, list_schedule_with, LayerScheduleProblem, LocalStructure,
    ScheduleWorkspace, SyncTask,
};

use crate::baseline::placement_order;
use crate::config::{DcMbqcConfig, DcMbqcError};
use crate::pipeline::DistributedSchedule;

/// Stage-1 artifact: a pattern with a verified causal flow and the
/// placement order derived from it.
///
/// Construction is the only stage that can reject a pattern outright
/// ([`DcMbqcError::NoFlow`]); every later stage starts from a valid
/// order.
#[derive(Debug, Clone)]
pub struct Transpiled<'p> {
    pattern: &'p Pattern,
    order: Vec<NodeId>,
}

impl<'p> Transpiled<'p> {
    /// Verifies causal flow and derives the placement order.
    ///
    /// # Errors
    ///
    /// Returns [`DcMbqcError::NoFlow`] for patterns without causal flow.
    pub fn new(pattern: &'p Pattern) -> Result<Self, DcMbqcError> {
        let order = placement_order(pattern).ok_or(DcMbqcError::NoFlow)?;
        Ok(Self { pattern, order })
    }

    /// Re-enters the pipeline with an already-derived placement order
    /// (e.g. one retained by a stage-task executor between tasks of the
    /// same job). The order must be exactly what [`Transpiled::new`]
    /// would derive for this pattern — it is taken on trust beyond a
    /// length check, so the flow computation is not repeated.
    ///
    /// # Panics
    ///
    /// Panics if the order does not cover the pattern's nodes.
    #[must_use]
    pub fn from_parts(pattern: &'p Pattern, order: Vec<NodeId>) -> Self {
        assert_eq!(
            order.len(),
            pattern.node_count(),
            "placement order does not cover the pattern"
        );
        Self { pattern, order }
    }

    /// The underlying pattern.
    #[must_use]
    pub fn pattern(&self) -> &'p Pattern {
        self.pattern
    }

    /// The flow-respecting placement order (covers all nodes).
    #[must_use]
    pub fn placement_order(&self) -> &[NodeId] {
        &self.order
    }
}

/// Stage-2 artifact: the computation graph partitioned across QPUs
/// (Algorithm 2), with the workload-weighted CSR view and the full
/// probe history retained for diagnostics.
#[derive(Debug, Clone)]
pub struct Partitioned<'p> {
    transpiled: Transpiled<'p>,
    /// Workload-weighted frozen view (node weight = 2 + degree).
    csr: CsrGraph,
    adaptive: AdaptiveResult,
    modularity: f64,
}

impl<'p> Partitioned<'p> {
    /// Re-enters the pipeline with an externally supplied partition
    /// (e.g. a stored one, or an alternative partitioner), computing
    /// the derived metrics the later stages and reports need.
    ///
    /// # Panics
    ///
    /// Panics if the partition does not cover the pattern's nodes.
    #[must_use]
    pub fn with_partition(transpiled: Transpiled<'p>, partition: Partition) -> Self {
        let csr = workload_csr(transpiled.pattern.graph());
        assert_eq!(partition.len(), csr.node_count(), "partition size mismatch");
        let q = modularity_csr(&csr, &partition);
        let cut = partition.cut_weight_csr(&csr);
        let alpha = partition.imbalance_csr(&csr);
        Self {
            transpiled,
            csr,
            adaptive: AdaptiveResult {
                partition,
                modularity: q,
                cut,
                alpha,
                history: Vec::new(),
            },
            modularity: q,
        }
    }

    /// The transpiled artifact this stage consumed.
    #[must_use]
    pub fn transpiled(&self) -> &Transpiled<'p> {
        &self.transpiled
    }

    /// The chosen partition.
    #[must_use]
    pub fn partition(&self) -> &Partition {
        &self.adaptive.partition
    }

    /// Full adaptive-search result (winning α, probe history).
    #[must_use]
    pub fn adaptive(&self) -> &AdaptiveResult {
        &self.adaptive
    }

    /// Modularity `Q` of the chosen partition.
    #[must_use]
    pub fn modularity(&self) -> f64 {
        self.modularity
    }

    /// The workload-weighted CSR view the partitioner ran on.
    #[must_use]
    pub fn weighted_graph(&self) -> &CsrGraph {
        &self.csr
    }

    /// Snapshots the derived state [`Partitioned::with_partition`]
    /// would recompute — the workload CSR and the partition metrics —
    /// so an executor that rebuilds this artifact once per stage task
    /// can pay for the derivation once per *job* (see
    /// [`Partitioned::with_partition_cached`]).
    #[must_use]
    pub fn cache(&self) -> PartitionedCache {
        PartitionedCache {
            csr: self.csr.clone(),
            modularity: self.modularity,
            cut: self.adaptive.cut,
            alpha: self.adaptive.alpha,
        }
    }

    /// [`Partitioned::with_partition`] with the derived state supplied
    /// from a previous construction's [`Partitioned::cache`] — a plain
    /// memcpy instead of a workload-CSR rebuild plus modularity/cut
    /// recomputation. The cache must come from the same
    /// `(pattern, partition)` pair; sizes are checked, values are
    /// trusted (they are deterministic functions of the pair).
    ///
    /// # Panics
    ///
    /// Panics if the cache or partition does not cover the pattern's
    /// nodes.
    #[must_use]
    pub fn with_partition_cached(
        transpiled: Transpiled<'p>,
        partition: Partition,
        cache: PartitionedCache,
    ) -> Self {
        assert_eq!(
            cache.csr.node_count(),
            transpiled.pattern.node_count(),
            "cached CSR does not cover the pattern"
        );
        assert_eq!(
            partition.len(),
            cache.csr.node_count(),
            "partition size mismatch"
        );
        let modularity = cache.modularity;
        Self {
            transpiled,
            csr: cache.csr,
            adaptive: AdaptiveResult {
                partition,
                modularity: cache.modularity,
                cut: cache.cut,
                alpha: cache.alpha,
                history: Vec::new(),
            },
            modularity,
        }
    }
}

/// The derived state of a [`Partitioned`] artifact (workload CSR +
/// partition metrics), detached from the pattern borrow so it can be
/// carried between the stage tasks of one job. Produced by
/// [`Partitioned::cache`], consumed by
/// [`Partitioned::with_partition_cached`].
#[derive(Debug, Clone)]
pub struct PartitionedCache {
    csr: CsrGraph,
    modularity: f64,
    cut: i64,
    alpha: f64,
}

/// Stage-3 artifact: every QPU's subprogram compiled onto its RSG grid.
#[derive(Debug, Clone)]
pub struct Mapped<'p> {
    partitioned: Partitioned<'p>,
    /// Global node ids owned by each QPU, in placement order.
    part_nodes: Vec<Vec<NodeId>>,
    compiled: Vec<CompiledProgram>,
}

impl<'p> Mapped<'p> {
    /// Re-enters the pipeline with externally compiled per-QPU
    /// programs (paired with the per-QPU global node lists they were
    /// compiled from, in placement order).
    ///
    /// # Panics
    ///
    /// Panics if the shapes disagree with the partition.
    #[must_use]
    pub fn from_parts(
        partitioned: Partitioned<'p>,
        part_nodes: Vec<Vec<NodeId>>,
        compiled: Vec<CompiledProgram>,
    ) -> Self {
        let k = partitioned.partition().k();
        assert_eq!(part_nodes.len(), k, "per-QPU node lists disagree with k");
        assert_eq!(compiled.len(), k, "per-QPU programs disagree with k");
        let covered: usize = part_nodes.iter().map(Vec::len).sum();
        assert_eq!(covered, partitioned.partition().len(), "nodes not covered");
        for (qpu, (nodes, program)) in part_nodes.iter().zip(&compiled).enumerate() {
            assert_eq!(
                program.layer_of.len(),
                nodes.len(),
                "QPU {qpu}: compiled program covers {} nodes, partition assigns {}",
                program.layer_of.len(),
                nodes.len()
            );
        }
        Self {
            partitioned,
            part_nodes,
            compiled,
        }
    }

    /// The partitioned artifact this stage consumed.
    #[must_use]
    pub fn partitioned(&self) -> &Partitioned<'p> {
        &self.partitioned
    }

    /// Global node ids owned by each QPU, in placement order.
    #[must_use]
    pub fn part_nodes(&self) -> &[Vec<NodeId>] {
        &self.part_nodes
    }

    /// The compiled per-QPU programs.
    #[must_use]
    pub fn programs(&self) -> &[CompiledProgram] {
        &self.compiled
    }
}

/// Stage-4 artifact: the fully scheduled distributed program. The
/// schedule, problem instance, partition, and headline metrics are all
/// inspectable on it.
pub type Scheduled = DistributedSchedule;

/// Builds the workload-weighted CSR view of a computation graph: a
/// photon's grid work is one placement plus its share of fusions, so
/// each node weighs `2 + degree`. (Plain node balance lets the dense
/// hub core of fully-entangled programs land on one QPU: node-balanced,
/// edge-starved everywhere else.) The adjacency structure is shared,
/// not cloned — only the weight vector is new.
fn workload_csr(graph: &Graph) -> CsrGraph {
    let weights: Vec<i64> = (0..graph.node_count())
        .map(|i| 2 + graph.degree(NodeId::new(i)) as i64)
        .collect();
    CsrGraph::from_graph_with_node_weights(graph, weights)
}

/// A reusable compilation session: the configuration plus every
/// stage's workspace. Compiling many patterns through one session (or
/// through [`DcMbqcCompiler::compile_batch`]) reuses the partitioner's
/// coarsening buffers, the per-worker mapper state, and the scheduler
/// scratch across compilations.
///
/// Results are identical to fresh-session compilation; only allocation
/// traffic changes.
///
/// [`DcMbqcCompiler::compile_batch`]: crate::DcMbqcCompiler::compile_batch
#[derive(Debug)]
pub struct CompileSession {
    config: DcMbqcConfig,
    kway_ws: KwayWorkspace,
    schedule_ws: ScheduleWorkspace,
    mapper_ws: Vec<MapperWorkspace>,
    /// Mapping-stage worker count (`0` = one per available core).
    map_workers: usize,
}

impl CompileSession {
    /// Creates a session for the given configuration.
    #[must_use]
    pub fn new(config: DcMbqcConfig) -> Self {
        Self {
            config,
            kway_ws: KwayWorkspace::new(),
            schedule_ws: ScheduleWorkspace::new(),
            mapper_ws: Vec::new(),
            map_workers: 0,
        }
    }

    /// Sets the mapping-stage worker count (`0` = auto). Worker count
    /// never changes results; callers that already parallelize *across*
    /// sessions (e.g. a batch) pin this to 1 so nested stage
    /// parallelism does not oversubscribe the machine.
    #[must_use]
    pub fn with_map_workers(mut self, workers: usize) -> Self {
        self.map_workers = workers;
        self
    }

    /// The configuration in use.
    #[must_use]
    pub fn config(&self) -> &DcMbqcConfig {
        &self.config
    }

    /// Stage 2 — adaptive graph partitioning (Algorithm 2) on the
    /// workload-weighted graph.
    #[must_use]
    pub fn partition<'p>(&mut self, transpiled: Transpiled<'p>) -> Partitioned<'p> {
        partition_stage(&self.config, transpiled, &mut self.kway_ws)
    }

    /// Stage 3 — per-QPU grid compilation, in parallel across the
    /// session's mapping workers (results are identical for every
    /// worker count: each QPU's compilation is independent and seeded
    /// by `config.seed ^ qpu`).
    ///
    /// # Errors
    ///
    /// Returns [`DcMbqcError::Compile`] for the lowest-indexed QPU
    /// whose grid cannot host its subprogram.
    pub fn map<'p>(&mut self, partitioned: Partitioned<'p>) -> Result<Mapped<'p>, DcMbqcError> {
        map_stage(
            &self.config,
            partitioned,
            self.map_workers,
            &mut self.mapper_ws,
        )
    }

    /// Stage 4 — assembles the layer scheduling problem from the cut
    /// edges and runs list scheduling plus BDIR, producing the final
    /// [`Scheduled`] artifact.
    #[must_use]
    pub fn schedule(&mut self, mapped: Mapped<'_>) -> Scheduled {
        schedule_stage(&self.config, mapped, &mut self.schedule_ws)
    }

    /// Drives a pattern through all four stages.
    ///
    /// # Errors
    ///
    /// Returns [`DcMbqcError::NoFlow`] for patterns without causal flow
    /// and [`DcMbqcError::Compile`] when a QPU's grid cannot host its
    /// subprogram.
    pub fn compile_pattern(
        &mut self,
        pattern: &Pattern,
    ) -> Result<DistributedSchedule, DcMbqcError> {
        let transpiled = Transpiled::new(pattern)?;
        let partitioned = self.partition(transpiled);
        let mapped = self.map(partitioned)?;
        Ok(self.schedule(mapped))
    }
}

// ---------------------------------------------------------------------
// Free stage functions.
//
// Each stage of the pipeline is a pure function of `(config, input
// artifact, workspace)`. `CompileSession` binds them to its owned
// workspaces; executors that pool workspaces across many concurrent
// jobs (`mbqc-service`'s stage-graph executor) call them directly with
// a checked-out workspace instead. Workspaces never influence results
// (property-tested), so the two call styles are bit-identical.
// ---------------------------------------------------------------------

/// Stage 2 — adaptive graph partitioning (Algorithm 2) on the
/// workload-weighted graph, using the caller's coarsening scratch.
///
/// Identical to [`CompileSession::partition`]; the session delegates
/// here.
#[must_use]
pub fn partition_stage<'p>(
    config: &DcMbqcConfig,
    transpiled: Transpiled<'p>,
    ws: &mut KwayWorkspace,
) -> Partitioned<'p> {
    let csr = workload_csr(transpiled.pattern.graph());
    let mut adaptive_cfg = config.adaptive;
    adaptive_cfg.k = config.hardware.num_qpus();
    adaptive_cfg.seed = config.seed;
    let adaptive = adaptive_partition_csr_with(&csr, &adaptive_cfg, ws);
    let modularity = modularity_csr(&csr, &adaptive.partition);
    Partitioned {
        transpiled,
        csr,
        adaptive,
        modularity,
    }
}

/// Stage 3 — per-QPU grid compilation across `map_workers` threads
/// (`0` = one per available core), using the caller's mapper
/// workspaces (grown to the worker count on demand). Results are
/// identical for every worker count: each QPU's compilation is
/// independent and seeded by `config.seed ^ qpu`.
///
/// Identical to [`CompileSession::map`]; the session delegates here.
///
/// # Errors
///
/// Returns [`DcMbqcError::Compile`] for the lowest-indexed QPU whose
/// grid cannot host its subprogram.
pub fn map_stage<'p>(
    config: &DcMbqcConfig,
    partitioned: Partitioned<'p>,
    map_workers: usize,
    mapper_ws: &mut Vec<MapperWorkspace>,
) -> Result<Mapped<'p>, DcMbqcError> {
    let graph = partitioned.transpiled.pattern.graph();
    let k = config.hardware.num_qpus();
    // Guards externally injected partitions (`with_partition`): the
    // adaptive stage always produces exactly one part per QPU.
    assert_eq!(
        partitioned.partition().k(),
        k,
        "partition has {} parts for {k} QPUs",
        partitioned.partition().k()
    );
    // Per part: global nodes in placement order.
    let mut part_nodes: Vec<Vec<NodeId>> = vec![Vec::new(); k];
    for &u in &partitioned.transpiled.order {
        part_nodes[partitioned.adaptive.partition.part_of(u)].push(u);
    }
    let subgraphs: Vec<Graph> = part_nodes
        .iter()
        .map(|nodes| graph.induced_subgraph(nodes).0)
        .collect();

    let workers = resolve_workers(map_workers, k);
    if mapper_ws.len() < workers {
        mapper_ws.resize_with(workers, MapperWorkspace::new);
    }
    let mut results: Vec<Option<Result<CompiledProgram, DcMbqcError>>> =
        (0..k).map(|_| None).collect();
    let compile_one = |qpu: usize, sub: &Graph, ws: &mut MapperWorkspace| {
        let mapper = GridMapper::new(config.mapper_config(config.seed ^ (qpu as u64)));
        let local_order: Vec<NodeId> = sub.nodes().collect();
        mapper
            .compile_with(sub, &local_order, ws)
            .map_err(|source| DcMbqcError::Compile {
                qpu: Some(qpu),
                source,
            })
    };
    if workers <= 1 {
        let ws = &mut mapper_ws[0];
        for (qpu, sub) in subgraphs.iter().enumerate() {
            results[qpu] = Some(compile_one(qpu, sub, ws));
        }
    } else {
        // Strided ownership: worker w compiles QPUs w, w + W, …,
        // reusing its own persistent workspace. Assignment is
        // static, so no scheduling decision can reach the results.
        let subgraphs = &subgraphs;
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(workers);
            for (w, ws) in mapper_ws.iter_mut().take(workers).enumerate() {
                handles.push(scope.spawn(move || {
                    subgraphs
                        .iter()
                        .enumerate()
                        .skip(w)
                        .step_by(workers)
                        .map(|(qpu, sub)| (qpu, compile_one(qpu, sub, ws)))
                        .collect::<Vec<_>>()
                }));
            }
            for h in handles {
                for (qpu, r) in h.join().expect("mapping worker panicked") {
                    results[qpu] = Some(r);
                }
            }
        });
    }
    let compiled: Vec<CompiledProgram> = results
        .into_iter()
        .map(|r| r.expect("every QPU compiled"))
        .collect::<Result<_, _>>()?;
    Ok(Mapped {
        partitioned,
        part_nodes,
        compiled,
    })
}

/// Stage 4 — assembles the layer scheduling problem from the cut edges
/// and runs list scheduling plus BDIR, using the caller's scheduler
/// scratch.
///
/// Identical to [`CompileSession::schedule`]; the session delegates
/// here.
#[must_use]
pub fn schedule_stage(
    config: &DcMbqcConfig,
    mapped: Mapped<'_>,
    ws: &mut ScheduleWorkspace,
) -> Scheduled {
    let Mapped {
        partitioned,
        part_nodes,
        compiled,
    } = mapped;
    let pattern = partitioned.transpiled.pattern;
    let graph = pattern.graph();

    // Global node → (qpu, storage-epoch layer).
    let n = graph.node_count();
    let mut node_slot = vec![(0usize, 0usize); n];
    for (qpu, globals) in part_nodes.iter().enumerate() {
        for (local, &global) in globals.iter().enumerate() {
            node_slot[global.index()] = (qpu, compiled[qpu].effective_layer[local]);
        }
    }
    // Intra-QPU fusee pairs in global node ids.
    let mut fusee_pairs = Vec::new();
    for (qpu, globals) in part_nodes.iter().enumerate() {
        for pair in &compiled[qpu].fusee_pairs {
            fusee_pairs.push((
                globals[pair.a.index()].index(),
                globals[pair.b.index()].index(),
            ));
        }
    }
    // Cut edges → synchronization tasks.
    let sync_tasks: Vec<SyncTask> = partitioned
        .adaptive
        .partition
        .cut_edges(graph)
        .map(|(u, v, _)| SyncTask {
            a: node_slot[u.index()],
            b: node_slot[v.index()],
        })
        .collect();
    let cut_edges = sync_tasks.len();
    let main_counts: Vec<usize> = compiled.iter().map(|c| c.num_layers).collect();
    let deps = pattern.dependency_graph().real_time().clone();
    let mut problem =
        LayerScheduleProblem::new(main_counts.clone(), sync_tasks, config.hardware.kmax())
            .with_local(LocalStructure {
                node_slot,
                fusee_pairs,
                deps,
            });
    if let Some(d) = config.refresh_interval {
        // Refresh re-injects any photon (connectors included) after
        // at most `d` stored cycles, capping every lifetime term.
        problem = problem.with_refresh_bound(d);
    }

    // List scheduling + BDIR, on the caller's scheduler scratch.
    let init = list_schedule_with(&problem, &default_priorities(&problem), None, ws);
    let schedule = match &config.bdir {
        Some(cfg) => {
            let mut bdir_cfg = *cfg;
            bdir_cfg.seed = config.seed;
            bdir_with(&problem, &init, &bdir_cfg, ws)
        }
        None => init,
    };
    debug_assert!(problem.is_feasible(&schedule));
    let cost = problem.evaluate(&schedule);
    let refresh_events = compiled.iter().map(|c| c.refresh_events).sum();

    DistributedSchedule::from_parts(
        cost,
        schedule,
        problem,
        partitioned.adaptive.partition,
        partitioned.modularity,
        cut_edges,
        main_counts,
        refresh_events,
    )
}
