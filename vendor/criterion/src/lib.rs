//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no registry access, so this crate provides the
//! subset of the criterion 0.5 API the workspace benches use, with real
//! wall-clock measurement (warm-up, calibrated iteration counts, median of
//! samples) and the `--test` smoke mode CI relies on. Results print as
//! `name ... time: [median ns]` lines; there is no HTML report.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer value laundering, same contract as
/// `criterion::black_box`.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Benchmark identifier: a function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id rendered as `name/parameter`.
    pub fn new<P: std::fmt::Display>(name: &str, parameter: P) -> Self {
        Self {
            name: format!("{name}/{parameter}"),
        }
    }

    /// Creates an id from a parameter only.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

/// Per-iteration timing harness handed to benchmark closures.
pub struct Bencher {
    /// `true` when running in `--test` smoke mode (single iteration).
    smoke: bool,
    /// Median nanoseconds per iteration, filled by [`Bencher::iter`].
    result_ns: f64,
    sample_count: usize,
}

impl Bencher {
    /// Calls `f` repeatedly and records the median time per iteration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.smoke {
            black_box(f());
            self.result_ns = 0.0;
            return;
        }
        // Warm-up: run until 20 ms have elapsed (at least once).
        let warmup = Duration::from_millis(20);
        let start = Instant::now();
        let mut warm_iters = 0u64;
        while start.elapsed() < warmup || warm_iters == 0 {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = start.elapsed().as_nanos() as f64 / warm_iters as f64;
        // Choose a batch size so one sample takes ~10 ms, then take
        // `sample_count` samples and report the median.
        let batch = ((10_000_000.0 / per_iter.max(1.0)).ceil() as u64).max(1);
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_count);
        for _ in 0..self.sample_count {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            samples.push(t.elapsed().as_nanos() as f64 / batch as f64);
        }
        samples.sort_by(f64::total_cmp);
        self.result_ns = samples[samples.len() / 2];
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} µs", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// The benchmark manager: filters, runs, and reports benchmarks.
pub struct Criterion {
    filter: Option<String>,
    smoke: bool,
    sample_count: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self {
            filter: None,
            smoke: false,
            sample_count: 11,
        }
    }
}

impl Criterion {
    /// Builds a manager from `cargo bench` command-line arguments.
    ///
    /// Recognizes `--test` (smoke mode: every benchmark runs exactly once)
    /// and a positional substring filter; ignores harness flags criterion
    /// would accept.
    #[must_use]
    pub fn from_args() -> Self {
        let mut c = Self::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--test" => c.smoke = true,
                "--bench" | "--verbose" | "--quiet" | "--noplot" => {}
                other if other.starts_with("--") => {}
                other => c.filter = Some(other.to_string()),
            }
        }
        c
    }

    fn run_one(&mut self, name: &str, sample_count: usize, f: &mut dyn FnMut(&mut Bencher)) {
        if let Some(filter) = &self.filter {
            if !name.contains(filter.as_str()) {
                return;
            }
        }
        let mut b = Bencher {
            smoke: self.smoke,
            result_ns: 0.0,
            sample_count,
        };
        f(&mut b);
        if self.smoke {
            println!("{name}: test passed");
        } else {
            println!("{name:<40} time: [{}]", fmt_ns(b.result_ns));
        }
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let samples = self.sample_count;
        self.run_one(name, samples, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
            sample_count: None,
        }
    }

    /// Prints the trailing summary (no-op in the shim).
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing a name prefix and sample configuration.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_count: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = Some(n.clamp(2, 100));
        self
    }

    /// Runs a benchmark named `group/name`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, name);
        let samples = self.sample_count.unwrap_or(self.criterion.sample_count);
        self.criterion.run_one(&full, samples, &mut f);
        self
    }

    /// Runs a benchmark with an input value, named `group/id`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.name);
        let samples = self.sample_count.unwrap_or(self.criterion.sample_count);
        self.criterion.run_one(&full, samples, &mut |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Declares a benchmark group function, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the benchmark `main`, mirroring `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::Criterion::from_args();
            $( $group(&mut c); )+
            c.final_summary();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("qft", 36).name, "qft/36");
        assert_eq!(BenchmarkId::from_parameter(7).name, "7");
    }

    #[test]
    fn smoke_mode_runs_once() {
        let mut calls = 0u64;
        let mut b = Bencher {
            smoke: true,
            result_ns: 0.0,
            sample_count: 11,
        };
        b.iter(|| calls += 1);
        assert_eq!(calls, 1);
    }
}
