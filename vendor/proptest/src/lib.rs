//! Offline stand-in for the `proptest` property-testing framework.
//!
//! The build environment has no registry access, so this crate implements
//! the subset of the proptest API the workspace tests use: the `proptest!`
//! macro with `arg in strategy` bindings and `#![proptest_config(..)]`,
//! range and `prop::collection::vec` strategies, and the `prop_assert*`
//! macros. Case generation is deterministic (seeded from the test name) so
//! failures reproduce; there is no shrinking — the failing case's arguments
//! are printed instead.

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Error carried out of a failed property (what `prop_assert!` raises).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    /// Human-readable failure description.
    pub message: String,
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Runner configuration; only the case count is honored.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Deterministic case-generation RNG (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name, so each property sees a
    /// stable, reproducible case sequence.
    #[must_use]
    pub fn deterministic(name: &str) -> Self {
        let mut state = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            state ^= u64::from(b);
            state = state.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, n)`; `n` must be positive.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        // Multiply-shift; bias is irrelevant for test-case generation.
        ((u128::from(self.next_u64()) * u128::from(n)) >> 64) as u64
    }
}

/// A value generator. Ranges over the primitive integers and
/// [`collection::vec`](prop::collection::vec) implement it.
pub trait Strategy {
    /// The generated value type.
    type Value;
    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u64) - (self.start as u64);
                self.start + (rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u64) - (lo as u64) + 1;
                lo + (rng.below(span) as $t)
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = self.end.wrapping_sub(self.start) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi.wrapping_sub(lo) as u64).wrapping_add(1);
                if span == 0 {
                    // Whole-domain range: draw raw bits.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(rng.below(span) as $t)
            }
        }
    )*};
}

impl_signed_range_strategy!(i8, i16, i32, i64, isize);

/// Namespaced strategy constructors, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        /// Strategy producing `Vec`s of values from `element`, with length
        /// drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// `vec(element, 2..30)` — a vector strategy, as in proptest.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = self.size.generate(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a `use proptest::prelude::*;` consumer expects.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, TestCaseError, TestRng};
}

/// Asserts a condition inside a property, failing the case (not the whole
/// process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError {
                message: format!($($fmt)*),
            });
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l == r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, $($fmt)*);
    }};
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            l != r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

/// Declares property tests. Supports the subset of proptest syntax the
/// workspace uses:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(48))]
///     #[test]
///     fn my_prop(x in 0usize..10, v in prop::collection::vec(0u8..5, 1..4)) {
///         prop_assert!(x < 10);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( ($cfg:expr) ) => {};
    (
        ($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $( $arg:ident in $strat:expr ),* $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cfg.cases {
                $( let $arg = $crate::Strategy::generate(&($strat), &mut rng); )*
                let desc = {
                    let mut d = String::new();
                    $(
                        d.push_str(stringify!($arg));
                        d.push_str(" = ");
                        d.push_str(&format!("{:?}, ", $arg));
                    )*
                    d
                };
                let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body Ok(()) })();
                if let Err(e) = outcome {
                    panic!(
                        "proptest {} failed at case {}/{}:\n  {}\n  with {}",
                        stringify!($name), case + 1, cfg.cases, e, desc
                    );
                }
            }
        }
        $crate::__proptest_items! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::deterministic("bounds");
        for _ in 0..1000 {
            let a = (3usize..17).generate(&mut rng);
            assert!((3..17).contains(&a));
            let b = (0u8..=100).generate(&mut rng);
            assert!(b <= 100);
            let c = (-5i64..5).generate(&mut rng);
            assert!((-5..5).contains(&c));
        }
    }

    #[test]
    fn vec_strategy_respects_size() {
        let mut rng = TestRng::deterministic("vec");
        for _ in 0..200 {
            let v = prop::collection::vec(0usize..50, 2..30).generate(&mut rng);
            assert!((2..30).contains(&v.len()));
            assert!(v.iter().all(|&x| x < 50));
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = TestRng::deterministic("same");
        let mut b = TestRng::deterministic("same");
        assert_eq!(a.next_u64(), b.next_u64());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn macro_end_to_end(x in 0usize..10, v in prop::collection::vec(0u8..=3, 1..5)) {
            prop_assert!(x < 10);
            prop_assert_eq!(v.len(), v.len());
            prop_assert_ne!(v.len(), 0);
        }
    }

    proptest! {
        #[test]
        fn macro_without_config(x in 5u64..6) {
            prop_assert_eq!(x, 5);
        }
    }
}
