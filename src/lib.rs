//! Facade crate for the DC-MBQC reproduction workspace.
//!
//! Hosts the repository-level integration tests (`tests/`) and examples
//! (`examples/`); re-exports every workspace crate so downstream users can
//! depend on a single package.

pub use dc_mbqc as core;
pub use mbqc_bench as bench;
pub use mbqc_circuit as circuit;
pub use mbqc_compiler as compiler;
pub use mbqc_graph as graph;
pub use mbqc_hardware as hardware;
pub use mbqc_partition as partition;
pub use mbqc_pattern as pattern;
pub use mbqc_schedule as schedule;
pub use mbqc_sim as sim;
pub use mbqc_util as util;
